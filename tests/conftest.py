"""Shared fixtures for the test suite."""

import pytest

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.sim.machine import Machine
from repro.sim.specs import AMD_EPYC_7571, INTEL_E5_2690


@pytest.fixture
def l1_config() -> CacheConfig:
    """The paper's L1D geometry: 32 KiB, 8-way, 64 sets."""
    return CacheConfig(name="L1D", size=32 * 1024, ways=8, line_size=64)


@pytest.fixture
def small_config() -> CacheConfig:
    """A tiny cache for exhaustive white-box tests: 4 sets, 4 ways."""
    return CacheConfig(
        name="tiny", size=1024, ways=4, line_size=64, policy="lru"
    )


@pytest.fixture
def hierarchy() -> CacheHierarchy:
    """Default two-level hierarchy with deterministic seeding."""
    return CacheHierarchy(HierarchyConfig(), rng=1234)


@pytest.fixture
def intel_machine() -> Machine:
    return Machine(INTEL_E5_2690, rng=42)


@pytest.fixture
def amd_machine() -> Machine:
    return Machine(AMD_EPYC_7571, rng=42)
