"""Tests for the two-level cache hierarchy."""

import pytest

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.hierarchy import PREFETCH_THREAD, CacheHierarchy
from repro.cache.prefetcher import StridePrefetcher
from repro.common.types import AccessType, CacheLevel, MemoryAccess


class TestAccessPath:
    def test_cold_access_goes_to_memory(self, hierarchy):
        outcome = hierarchy.load(0)
        assert outcome.hit_level == CacheLevel.MEMORY
        assert outcome.latency == hierarchy.config.memory_latency

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.load(0)
        outcome = hierarchy.load(0)
        assert outcome.hit_level == CacheLevel.L1
        assert outcome.latency == hierarchy.config.l1.hit_latency

    def test_l1_eviction_leaves_l2_copy(self, hierarchy):
        target = 5 * 64
        hierarchy.load(target)
        stride = hierarchy.config.l1.num_sets * 64
        for i in range(1, hierarchy.config.l1.ways + 1):
            hierarchy.load(target + (1 << 24) + i * stride)
        assert not hierarchy.l1.probe(target)
        outcome = hierarchy.load(target)
        assert outcome.hit_level == CacheLevel.L2
        assert outcome.latency == hierarchy.config.l2.hit_latency

    def test_l2_hit_refills_l1(self, hierarchy):
        target = 5 * 64
        hierarchy.load(target)
        stride = hierarchy.config.l1.num_sets * 64
        for i in range(1, hierarchy.config.l1.ways + 1):
            hierarchy.load(target + (1 << 24) + i * stride)
        hierarchy.load(target)  # L2 hit, refill
        assert hierarchy.l1.probe(target)

    def test_flush_removes_from_all_levels(self, hierarchy):
        hierarchy.load(0)
        outcome = hierarchy.flush_address(0)
        assert outcome.latency == hierarchy.config.flush_latency
        assert not hierarchy.l1.probe(0)
        assert not hierarchy.l2.probe(0)
        assert hierarchy.load(0).hit_level == CacheLevel.MEMORY

    def test_eviction_reported(self, hierarchy):
        stride = hierarchy.config.l1.num_sets * 64
        for i in range(hierarchy.config.l1.ways):
            hierarchy.load(i * stride)
        outcome = hierarchy.load(hierarchy.config.l1.ways * stride)
        assert outcome.evicted_address == 0

    def test_warm_does_not_count(self, hierarchy):
        hierarchy.warm([0, 64, 128], thread_id=5)
        assert hierarchy.l1.counters.total_references(5) == 0
        assert hierarchy.l1.probe(0)


class TestCounters:
    def test_l2_references_are_l1_misses(self, hierarchy):
        hierarchy.load(0, thread_id=1)  # cold: L1 miss, L2 miss
        hierarchy.load(0, thread_id=1)  # L1 hit
        assert hierarchy.l1.counters.total_references(1) == 2
        assert hierarchy.l1.counters.total_misses(1) == 1
        assert hierarchy.l2.counters.total_references(1) == 1
        assert hierarchy.l2.counters.total_misses(1) == 1

    def test_counters_list_ordering(self, hierarchy):
        banks = hierarchy.counters()
        assert [b.level_name for b in banks] == ["L1D", "L2"]

    def test_reset(self, hierarchy):
        hierarchy.load(0)
        hierarchy.reset_counters()
        assert hierarchy.l1.counters.total_references(0) == 0


class TestInvisibleSpeculation:
    def test_speculative_access_leaves_no_trace(self):
        h = CacheHierarchy(HierarchyConfig(), invisible_speculation=True)
        outcome = h.load(0, speculative=True)
        assert outcome.hit_level == CacheLevel.MEMORY
        assert not h.l1.probe(0)
        assert not h.l2.probe(0)

    def test_speculative_latency_still_correct(self):
        h = CacheHierarchy(HierarchyConfig(), invisible_speculation=True)
        h.load(0)  # architectural fill
        outcome = h.load(0, speculative=True)
        assert outcome.latency == h.config.l1.hit_latency

    def test_speculative_hit_does_not_update_lru(self):
        h = CacheHierarchy(HierarchyConfig(), invisible_speculation=True)
        stride = h.config.l1.num_sets * 64
        for i in range(h.config.l1.ways):
            h.load(i * stride)
        snap = h.l1.set_for(0).policy.state_snapshot()
        h.load(0, speculative=True)
        assert h.l1.set_for(0).policy.state_snapshot() == snap

    def test_defense_off_speculative_fills(self):
        h = CacheHierarchy(HierarchyConfig(), invisible_speculation=False)
        h.load(0, speculative=True)
        assert h.l1.probe(0)


class TestPrefetcherIntegration:
    def test_stride_stream_triggers_prefetch(self):
        h = CacheHierarchy(
            HierarchyConfig(), prefetcher=StridePrefetcher(degree=1)
        )
        for i in range(5):
            h.load(i * 64, thread_id=2)
        assert h.prefetcher.issued > 0
        # The line after the last demand access should be prefetched.
        assert h.l1.probe(5 * 64)

    def test_prefetch_counts_to_prefetch_thread(self):
        h = CacheHierarchy(
            HierarchyConfig(), prefetcher=StridePrefetcher(degree=1)
        )
        for i in range(6):
            h.load(i * 64, thread_id=2)
        assert h.l1.counters.total_references(PREFETCH_THREAD) == 0  # fills only
        # Demand counters unpolluted: exactly 6 references for thread 2.
        assert h.l1.counters.total_references(2) == 6

    def test_prefetch_pollutes_lru_state(self):
        """Appendix C's noise source: prefetch fills touch LRU state."""
        h = CacheHierarchy(
            HierarchyConfig(), prefetcher=StridePrefetcher(degree=2)
        )
        snap = h.l1.set_for(5 * 64).policy.state_snapshot()
        for i in range(5):
            h.load(i * 64, thread_id=2)
        assert h.l1.set_for(5 * 64).policy.state_snapshot() != snap


class TestLatencyForLevel:
    def test_levels(self, hierarchy):
        assert hierarchy.latency_for_level(CacheLevel.L1) == 4.0
        assert hierarchy.latency_for_level(CacheLevel.L2) == 12.0
        assert hierarchy.latency_for_level(CacheLevel.MEMORY) == 200.0
