"""Tests for the shared-LLC multicore system."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.multicore import MultiCoreConfig, MultiCoreSystem
from repro.common.errors import ConfigurationError
from repro.common.types import CacheLevel


@pytest.fixture
def system():
    return MultiCoreSystem(MultiCoreConfig(), rng=3)


class TestConfig:
    def test_defaults_valid(self):
        config = MultiCoreConfig()
        assert config.cores == 2
        assert config.llc.ways == 16

    def test_core_count_validated(self):
        with pytest.raises(ConfigurationError):
            MultiCoreConfig(cores=0)

    def test_latency_ordering_validated(self):
        with pytest.raises(ConfigurationError):
            MultiCoreConfig(
                llc=CacheConfig(
                    name="LLC", size=2 * 1024 * 1024, ways=16,
                    hit_latency=2.0,  # below L1
                )
            )


class TestAccessPath:
    def test_cold_miss_reaches_memory(self, system):
        outcome = system.load(0, 0x1000)
        assert outcome.hit_level == CacheLevel.MEMORY

    def test_refill_hits_own_l1(self, system):
        system.load(0, 0x1000)
        assert system.load(0, 0x1000).hit_level == CacheLevel.L1

    def test_other_core_hits_shared_llc(self, system):
        """The cross-core property the LLC channel relies on."""
        system.load(0, 0x1000)
        outcome = system.load(1, 0x1000)
        assert outcome.hit_level == CacheLevel.LLC
        assert outcome.latency == system.config.llc.hit_latency

    def test_private_levels_are_private(self, system):
        system.load(0, 0x1000)
        assert system.cores[0].l1.probe(0x1000)
        assert not system.cores[1].l1.probe(0x1000)

    def test_core_id_validated(self, system):
        with pytest.raises(ConfigurationError):
            system.load(5, 0)

    def test_evict_private_keeps_llc_copy(self, system):
        system.load(0, 0x1000)
        system.evict_private(0, 0x1000)
        assert not system.cores[0].l1.probe(0x1000)
        assert not system.cores[0].l2.probe(0x1000)
        assert system.llc.probe(0x1000)
        assert system.load(0, 0x1000).hit_level == CacheLevel.LLC


class TestInclusion:
    def test_llc_eviction_back_invalidates(self, system):
        """Inclusive LLC: losing the LLC copy kills private copies."""
        llc = system.config.llc
        target = 3 * 64
        system.load(0, target)
        stride = llc.num_sets * llc.line_size
        # Overflow the LLC set from the other core.
        for i in range(1, llc.ways + 4):
            system.load(1, target + (1 << 28) + i * stride)
        if not system.llc.probe(target):
            assert not system.cores[0].l1.probe(target)
            assert not system.cores[0].l2.probe(target)

    def test_flush_clears_all_levels_all_cores(self, system):
        from repro.common.types import AccessType, MemoryAccess

        system.load(0, 0x2000)
        system.load(1, 0x2000)
        system.access(
            0,
            MemoryAccess(address=0x2000, access_type=AccessType.FLUSH),
        )
        assert not system.llc.probe(0x2000)
        for core in system.cores:
            assert not core.l1.probe(0x2000)
            assert not core.l2.probe(0x2000)


class TestCounters:
    def test_bank_layout(self, system):
        banks = system.counters()
        assert [b.level_name for b in banks] == [
            "L1D", "L2", "L1D", "L2", "LLC",
        ]

    def test_llc_counts_both_cores(self, system):
        system.load(0, 0x1000)   # LLC miss
        system.load(1, 0x1000)   # LLC hit (after core 1's L1/L2 misses)
        assert system.llc.counters.total_references(None) == 2
        assert system.llc.counters.total_misses(None) == 1
