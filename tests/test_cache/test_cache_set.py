"""Tests for the CacheSet container."""

import pytest

from repro.cache.cache_set import CacheSet
from repro.common.errors import SimulationError
from repro.replacement import FIFO, TreePLRU, TrueLRU


def make_set(ways=4, policy_cls=TrueLRU):
    return CacheSet(ways, policy_cls(ways))


class TestCacheSet:
    def test_policy_size_checked(self):
        with pytest.raises(SimulationError):
            CacheSet(4, TrueLRU(8))

    def test_lookup_miss_on_empty(self):
        assert make_set().lookup(5) is None

    def test_install_and_lookup(self):
        cs = make_set()
        cs.install(0, tag=5, address=5 * 4096)
        assert cs.lookup(5) == 0

    def test_install_returns_evicted_address(self):
        cs = make_set()
        cs.install(0, tag=1, address=100)
        evicted = cs.install(0, tag=2, address=200)
        assert evicted == 100

    def test_install_empty_way_returns_none(self):
        cs = make_set()
        assert cs.install(2, tag=1, address=1) is None

    def test_valid_mask(self):
        cs = make_set()
        cs.install(1, tag=9, address=9)
        assert cs.valid_mask() == [False, True, False, False]

    def test_touch_hit_vs_fill_for_fifo(self):
        """FIFO's on_fill must be used for fills, touch for hits."""
        cs = CacheSet(4, FIFO(4))
        cs.touch(0, is_fill=True)
        assert cs.policy.victim([True] * 4) == 1
        cs.touch(1, is_fill=False)  # hit: no pointer movement
        assert cs.policy.victim([True] * 4) == 1

    def test_touch_fill_for_lru_family_same_as_hit(self):
        cs = CacheSet(4, TreePLRU(4))
        cs.touch(2, is_fill=True)
        snapshot_fill = cs.policy.state_snapshot()
        cs2 = CacheSet(4, TreePLRU(4))
        cs2.touch(2, is_fill=False)
        assert cs2.policy.state_snapshot() == snapshot_fill

    def test_choose_victim_prefers_invalid(self):
        cs = make_set()
        cs.install(0, tag=1, address=1)
        assert cs.choose_victim() == 1

    def test_invalidate_tag(self):
        cs = make_set()
        cs.install(0, tag=7, address=7)
        assert cs.invalidate_tag(7) == 0
        assert cs.lookup(7) is None

    def test_invalidate_missing_tag(self):
        assert make_set().invalidate_tag(9) is None

    def test_resident_addresses(self):
        cs = make_set()
        cs.install(0, tag=1, address=111)
        cs.install(3, tag=2, address=222)
        assert sorted(cs.resident_addresses()) == [111, 222]

    def test_locked_ways(self):
        cs = make_set()
        cs.install(0, tag=1, address=1)
        cs.install(1, tag=2, address=2)
        cs.lines[1].locked = True
        assert cs.locked_ways() == [1]

    def test_install_clears_lock(self):
        cs = make_set()
        cs.install(0, tag=1, address=1)
        cs.lines[0].locked = True
        cs.install(0, tag=2, address=2)
        assert not cs.lines[0].locked

    def test_snapshot_shape(self):
        cs = make_set()
        cs.install(0, tag=1, address=1)
        tags, policy_state = cs.snapshot()
        assert tags == (1, None, None, None)
