"""Tests for the random-fill secure cache."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.random_fill import RandomFillCache
from repro.common.types import MemoryAccess


def make_cache(window=4):
    config = CacheConfig(size=4096, ways=4, line_size=64, policy="tree-plru")
    return RandomFillCache(config, window=window, rng=7)


class TestRandomFill:
    def test_demand_line_not_cached(self):
        """Random fill's defining property: the missing line itself is
        served uncached (most of the time a neighbour gets cached)."""
        cache = make_cache()
        demands = [i * 4096 * 8 for i in range(20)]  # far apart
        cached = 0
        for a in demands:
            result = cache.fill(MemoryAccess(address=a))
            assert result.uncached
            if cache.probe(a):
                cached += 1
        # The random offset occasionally lands on the demand line
        # (window includes 0): should be rare, not the norm.
        assert cached < len(demands) / 2

    def test_some_neighbour_gets_cached(self):
        cache = make_cache(window=2)
        base = 1 << 20
        cache.fill(MemoryAccess(address=base))
        neighbours = [base + k * 64 for k in range(-2, 3)]
        assert any(cache.probe(n) for n in neighbours)

    def test_window_validation(self):
        config = CacheConfig(size=4096, ways=4, line_size=64)
        with pytest.raises(ValueError):
            RandomFillCache(config, window=0)

    def test_hits_still_update_lru_state(self):
        """Section IX-B: 'on a cache hit, the replacement state will be
        updated, and the LRU channel could still work' against random
        fill."""
        cache = make_cache()
        # Install two same-set lines via the base-class path (simulating
        # earlier random fills that landed here).
        base = 1 << 20
        other = base + cache.config.num_sets * 64
        from repro.cache.cache import SetAssociativeCache

        SetAssociativeCache.fill(cache, MemoryAccess(address=base))
        SetAssociativeCache.fill(cache, MemoryAccess(address=other))
        target_set = cache.set_for(base)
        snap = target_set.policy.state_snapshot()
        result = cache.lookup(MemoryAccess(address=base))
        assert result.hit
        assert target_set.policy.state_snapshot() != snap

    def test_negative_target_clamped(self):
        cache = make_cache(window=8)
        for _ in range(20):
            result = cache.fill(MemoryAccess(address=0))
            assert result.uncached
        # Never raises, and never caches a negative address.
        for s in cache.sets:
            for line in s.lines:
                if line.valid:
                    assert line.address >= 0
