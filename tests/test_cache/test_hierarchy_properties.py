"""Property-based invariants of the cache hierarchy.

Random access/flush sequences must preserve structural invariants no
matter the interleaving — the guarantees every channel and experiment
silently relies on.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.common.types import CacheLevel

SMALL = HierarchyConfig(
    l1=CacheConfig(size=2 * 1024, ways=4, line_size=64, policy="lru"),
    l2=CacheConfig(name="L2", size=8 * 1024, ways=4, line_size=64,
                   policy="lru", hit_latency=12.0),
)

operations = st.lists(
    st.tuples(
        st.sampled_from(["load", "flush"]),
        st.integers(min_value=0, max_value=63).map(lambda i: i * 64),
        st.integers(min_value=0, max_value=2),  # thread
    ),
    max_size=80,
)


def run_ops(hierarchy, ops):
    for op, address, thread in ops:
        if op == "load":
            hierarchy.load(address, thread_id=thread)
        else:
            hierarchy.flush_address(address, thread_id=thread)


class TestHierarchyInvariants:
    @given(operations)
    @settings(max_examples=50, deadline=None)
    def test_latency_is_one_of_configured_levels(self, ops):
        hierarchy = CacheHierarchy(SMALL, rng=1)
        allowed = {
            SMALL.l1.hit_latency,
            SMALL.l2.hit_latency,
            SMALL.memory_latency,
            SMALL.flush_latency,
        }
        for op, address, thread in ops:
            if op == "load":
                outcome = hierarchy.load(address, thread_id=thread)
            else:
                outcome = hierarchy.flush_address(address, thread_id=thread)
            assert outcome.latency in allowed

    @given(operations)
    @settings(max_examples=50, deadline=None)
    def test_loaded_line_is_l1_resident(self, ops):
        """Immediately after any demand load, the line is in L1."""
        hierarchy = CacheHierarchy(SMALL, rng=1)
        for op, address, thread in ops:
            if op == "load":
                hierarchy.load(address, thread_id=thread)
                assert hierarchy.l1.probe(address)
            else:
                hierarchy.flush_address(address, thread_id=thread)
                assert not hierarchy.l1.probe(address)
                assert not hierarchy.l2.probe(address)

    @given(operations)
    @settings(max_examples=50, deadline=None)
    def test_second_load_never_slower(self, ops):
        """Re-loading an address immediately is always an L1 hit."""
        hierarchy = CacheHierarchy(SMALL, rng=1)
        run_ops(hierarchy, ops)
        for address in {a for op, a, _ in ops if op == "load"}:
            hierarchy.load(address)
            assert hierarchy.load(address).hit_level == CacheLevel.L1

    @given(operations)
    @settings(max_examples=50, deadline=None)
    def test_counters_consistent(self, ops):
        """Misses never exceed references, at any level, per thread."""
        hierarchy = CacheHierarchy(SMALL, rng=1)
        run_ops(hierarchy, ops)
        for bank in hierarchy.counters():
            for thread in (0, 1, 2):
                assert (
                    bank.total_misses(thread) <= bank.total_references(thread)
                )

    @given(operations)
    @settings(max_examples=50, deadline=None)
    def test_l1_occupancy_bounded(self, ops):
        hierarchy = CacheHierarchy(SMALL, rng=1)
        run_ops(hierarchy, ops)
        for cache_set in hierarchy.l1.sets:
            assert len(cache_set.resident_addresses()) <= SMALL.l1.ways

    @given(operations)
    @settings(max_examples=30, deadline=None)
    def test_deterministic_replay(self, ops):
        """Same seed + same operations = identical end state."""
        a = CacheHierarchy(SMALL, rng=7)
        b = CacheHierarchy(SMALL, rng=7)
        run_ops(a, ops)
        run_ops(b, ops)
        assert a.l1.contents() == b.l1.contents()
        assert a.l2.contents() == b.l2.contents()


class TestSenderStealthInvariant:
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_l1_hits_never_touch_deeper_levels(self, ways):
        """The paper's stealth property as an invariant: a sender whose
        accesses all hit L1 generates zero L2 references."""
        hierarchy = CacheHierarchy(SMALL, rng=1)
        stride = SMALL.l1.num_sets * 64
        addresses = [w * stride for w in range(4)]  # one set, fits
        hierarchy.warm(addresses)
        hierarchy.reset_counters()
        for w in ways:
            hierarchy.load(addresses[w % 4], thread_id=1)
        assert hierarchy.l2.counters.total_references(1) == 0

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_l1_hits_never_change_llc_state(self, ways):
        """Section III: 'the sender's accesses to L1 or L2 caches will
        not change the replacement state in the LLC'."""
        config = dataclasses.replace(
            SMALL,
            llc=CacheConfig(name="LLC", size=32 * 1024, ways=8,
                            line_size=64, policy="lru", hit_latency=40.0),
        )
        hierarchy = CacheHierarchy(config, rng=1)
        stride = config.l1.num_sets * 64
        addresses = [w * stride for w in range(4)]
        hierarchy.warm(addresses)
        snapshots = [
            s.policy.state_snapshot() for s in hierarchy.llc.sets
        ]
        for w in ways:
            hierarchy.load(addresses[w % 4], thread_id=1)
        assert snapshots == [
            s.policy.state_snapshot() for s in hierarchy.llc.sets
        ]
