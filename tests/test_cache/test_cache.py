"""Tests for the single-level set-associative cache."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cache.way_predictor import WayPredictor
from repro.common.types import AccessType, MemoryAccess


def tiny_cache(policy="lru", predictor=None):
    config = CacheConfig(
        name="L1D", size=2048, ways=4, line_size=64, policy=policy
    )
    return SetAssociativeCache(config, rng=1, way_predictor=predictor)


class TestLookupAndFill:
    def test_cold_miss(self):
        cache = tiny_cache()
        result = cache.lookup(MemoryAccess(address=0))
        assert not result.hit

    def test_fill_then_hit(self):
        cache = tiny_cache()
        access = MemoryAccess(address=0)
        cache.fill(access)
        assert cache.lookup(access).hit

    def test_line_granularity(self):
        cache = tiny_cache()
        cache.fill(MemoryAccess(address=0))
        assert cache.lookup(MemoryAccess(address=63)).hit
        assert not cache.lookup(MemoryAccess(address=64)).hit

    def test_conflict_eviction_after_ways_exhausted(self):
        cache = tiny_cache()
        stride = cache.config.num_sets * 64
        for i in range(5):  # 5 lines into a 4-way set
            cache.fill(MemoryAccess(address=i * stride))
            cache.lookup(MemoryAccess(address=i * stride), count=False)
        assert not cache.probe(0)

    def test_fill_reports_evicted_address(self):
        cache = tiny_cache()
        stride = cache.config.num_sets * 64
        for i in range(4):
            cache.fill(MemoryAccess(address=i * stride))
            cache.lookup(MemoryAccess(address=i * stride), count=False)
        result = cache.fill(MemoryAccess(address=4 * stride))
        assert result.evicted_address == 0

    def test_store_marks_dirty(self):
        cache = tiny_cache()
        cache.fill(MemoryAccess(address=0, access_type=AccessType.STORE))
        line = cache.set_for(0).lines[0]
        assert line.dirty

    def test_probe_has_no_side_effects(self):
        cache = tiny_cache(policy="tree-plru")
        for i in range(2):
            cache.fill(MemoryAccess(address=i * cache.config.num_sets * 64))
        snap = cache.set_for(0).policy.state_snapshot()
        cache.probe(0)
        assert cache.set_for(0).policy.state_snapshot() == snap

    def test_flush(self):
        cache = tiny_cache()
        cache.fill(MemoryAccess(address=0))
        assert cache.flush(0)
        assert not cache.probe(0)

    def test_flush_absent_line(self):
        assert not tiny_cache().flush(0)


class TestReplacementStateUpdates:
    def test_hit_updates_lru_state(self):
        """The leaking transition (paper's core observation)."""
        cache = tiny_cache(policy="lru")
        stride = cache.config.num_sets * 64
        for i in range(4):
            cache.fill(MemoryAccess(address=i * stride))
            cache.lookup(MemoryAccess(address=i * stride), count=False)
        # Way 0 is LRU; a *hit* on it must refresh it.
        cache.lookup(MemoryAccess(address=0))
        result = cache.fill(MemoryAccess(address=4 * stride))
        assert result.evicted_address == 1 * stride  # not line 0

    def test_update_lru_on_hit_flag(self):
        """The deferred-update defense: hits leave the state alone."""
        config = CacheConfig(
            size=2048, ways=4, line_size=64, policy="lru",
            update_lru_on_hit=False,
        )
        cache = SetAssociativeCache(config)
        stride = config.num_sets * 64
        for i in range(4):
            cache.fill(MemoryAccess(address=i * stride))
        snap = cache.set_for(0).policy.state_snapshot()
        cache.lookup(MemoryAccess(address=0))
        assert cache.set_for(0).policy.state_snapshot() == snap


class TestCounters:
    def test_miss_then_hit_counting(self):
        cache = tiny_cache()
        access = MemoryAccess(address=0, thread_id=3)
        cache.lookup(access)  # miss
        cache.fill(access)
        cache.lookup(access)  # hit
        assert cache.counters.total_references(3) == 2
        assert cache.counters.total_misses(3) == 1

    def test_uncounted_lookup(self):
        cache = tiny_cache()
        cache.lookup(MemoryAccess(address=0), count=False)
        assert cache.counters.total_references(0) == 0

    def test_reset_counters(self):
        cache = tiny_cache()
        cache.lookup(MemoryAccess(address=0))
        cache.reset_counters()
        assert cache.counters.total_references(0) == 0


class TestWayPredictorIntegration:
    def test_same_space_hits_normally(self):
        cache = tiny_cache(predictor=WayPredictor())
        access = MemoryAccess(address=0, address_space=1)
        cache.fill(access)
        result = cache.lookup(access)
        assert result.hit and not result.way_predictor_miss

    def test_cross_space_first_access_mispredicts(self):
        """Section VI-B: another process's load sees a miss latency even
        though the data is physically present."""
        cache = tiny_cache(predictor=WayPredictor())
        cache.fill(MemoryAccess(address=0, address_space=1))
        cache.lookup(MemoryAccess(address=0, address_space=1), count=False)
        result = cache.lookup(MemoryAccess(address=0, address_space=2))
        assert result.hit and result.way_predictor_miss

    def test_utag_retrains_after_mispredict(self):
        cache = tiny_cache(predictor=WayPredictor())
        cache.fill(MemoryAccess(address=0, address_space=1))
        cache.lookup(MemoryAccess(address=0, address_space=2), count=False)
        result = cache.lookup(MemoryAccess(address=0, address_space=2))
        assert result.hit and not result.way_predictor_miss

    def test_no_predictor_no_mispredict(self):
        cache = tiny_cache()
        cache.fill(MemoryAccess(address=0, address_space=1))
        result = cache.lookup(MemoryAccess(address=0, address_space=2))
        assert result.hit and not result.way_predictor_miss


class TestIntrospection:
    def test_contents(self):
        cache = tiny_cache()
        cache.fill(MemoryAccess(address=64))
        contents = cache.contents()
        assert contents == {1: [64]}

    def test_repr_mentions_geometry(self):
        text = repr(tiny_cache())
        assert "4-way" in text and "8 sets" in text
