"""Tests for the AMD way predictor and the stride prefetcher."""

import pytest

from repro.cache.prefetcher import StridePrefetcher
from repro.cache.way_predictor import WayPredictor


class TestWayPredictor:
    def test_same_inputs_same_utag(self):
        wp = WayPredictor()
        assert wp.utag(1, 0x1000) == wp.utag(1, 0x1000)

    def test_different_spaces_differ(self):
        wp = WayPredictor()
        assert wp.utag(1, 0x1000) != wp.utag(2, 0x1000)

    def test_same_page_same_utag(self):
        """Offsets within a 4 KiB page share the linear page number."""
        wp = WayPredictor()
        assert wp.utag(1, 0x1000) == wp.utag(1, 0x1FC0)

    def test_different_pages_differ(self):
        wp = WayPredictor()
        assert wp.utag(1, 0x1000) != wp.utag(1, 0x2000)

    def test_utag_width(self):
        wp = WayPredictor(utag_bits=8)
        for space in range(4):
            for page in range(64):
                assert 0 <= wp.utag(space, page << 12) < 256

    def test_predicts_hit_on_matching_utag(self):
        wp = WayPredictor()
        utag = wp.utag(1, 0x5000)
        assert wp.predicts_hit(utag, 1, 1, 0x5000)

    def test_predicts_miss_cross_space(self):
        wp = WayPredictor()
        utag = wp.utag(1, 0x5000)
        assert not wp.predicts_hit(utag, 1, 2, 0x5000)

    def test_hash_collisions_possible(self):
        """Section VI-B: 'unless the hash of two linear addresses
        conflicts' — a small utag must collide across some inputs."""
        wp = WayPredictor(utag_bits=8)
        seen = {}
        collision = False
        for space in range(8):
            for page in range(512):
                tag = wp.utag(space, page << 12)
                if tag in seen and seen[tag] != (space, page):
                    collision = True
                seen[tag] = (space, page)
        assert collision


class TestStridePrefetcher:
    def test_no_prefetch_before_training(self):
        pf = StridePrefetcher(threshold=2)
        assert pf.observe(0, 0) == []
        assert pf.observe(0, 64) == []

    def test_prefetch_after_confirmed_stride(self):
        pf = StridePrefetcher(degree=2, threshold=2)
        for a in (0, 64, 128):
            out = pf.observe(0, a)
        assert out == [192, 256]

    def test_stride_break_resets(self):
        pf = StridePrefetcher(degree=1, threshold=2)
        for a in (0, 64, 128):
            pf.observe(0, a)
        assert pf.observe(0, 1024) == []  # stride broken

    def test_negative_stride_supported(self):
        pf = StridePrefetcher(degree=1, threshold=2)
        out = []
        for a in (1024, 960, 896):
            out = pf.observe(0, a)
        assert out == [832]

    def test_streams_are_per_thread(self):
        pf = StridePrefetcher(degree=1, threshold=2)
        pf.observe(0, 0)
        pf.observe(1, 1000)
        pf.observe(0, 64)
        pf.observe(1, 2000)
        assert pf.observe(0, 128) != []

    def test_targets_are_line_aligned(self):
        pf = StridePrefetcher(degree=1, threshold=2, line_size=64)
        for a in (3, 67, 131):
            out = pf.observe(0, a)
        assert all(t % 64 == 0 for t in out)

    def test_negative_targets_dropped(self):
        pf = StridePrefetcher(degree=3, threshold=2)
        out = []
        for a in (256, 128, 0):
            out = pf.observe(0, a)
        assert all(t >= 0 for t in out)

    def test_issue_counter_and_reset(self):
        pf = StridePrefetcher(degree=2, threshold=2)
        for a in (0, 64, 128):
            pf.observe(0, a)
        assert pf.issued == 2
        pf.reset()
        assert pf.issued == 0
        assert pf.observe(0, 192) == []
