"""Differential testing: the cache against an independent reference model.

A stateful hypothesis test drives random access/flush sequences through
:class:`SetAssociativeCache` configured with true LRU and, in parallel,
through a 20-line reference model built directly on ``OrderedDict`` —
an implementation with no shared code.  Any divergence in residency or
eviction choice is a bug in one of them.
"""

from collections import OrderedDict

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.common.types import MemoryAccess

#: Tiny geometry so random sequences exercise conflicts constantly.
CONFIG = CacheConfig(size=1024, ways=4, line_size=64, policy="lru")  # 4 sets
NUM_SETS = CONFIG.num_sets
WAYS = CONFIG.ways

addresses = st.integers(min_value=0, max_value=64).map(lambda i: i * 64)


class ReferenceCache:
    """Independent LRU cache model: one OrderedDict per set."""

    def __init__(self):
        self.sets = [OrderedDict() for _ in range(NUM_SETS)]

    @staticmethod
    def _key(address):
        return address // 64

    def access(self, address) -> bool:
        """Returns True on hit; performs LRU replacement on miss."""
        line = self._key(address)
        bucket = self.sets[line % NUM_SETS]
        if line in bucket:
            bucket.move_to_end(line)
            return True
        if len(bucket) >= WAYS:
            bucket.popitem(last=False)  # least recently used
        bucket[line] = True
        return False

    def flush(self, address) -> None:
        line = self._key(address)
        self.sets[line % NUM_SETS].pop(line, None)

    def resident(self, address) -> bool:
        line = self._key(address)
        return line in self.sets[line % NUM_SETS]

    def all_resident(self):
        out = set()
        for index, bucket in enumerate(self.sets):
            out.update(bucket.keys())
        return out


class CacheVsReference(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = SetAssociativeCache(CONFIG)
        self.reference = ReferenceCache()

    @rule(address=addresses)
    def access(self, address):
        expected_hit = self.reference.access(address)
        result = self.cache.lookup(MemoryAccess(address=address))
        assert result.hit == expected_hit, (
            f"hit mismatch at {address:#x}: cache={result.hit} "
            f"reference={expected_hit}"
        )
        if not result.hit:
            self.cache.fill(MemoryAccess(address=address))

    @rule(address=addresses)
    def flush(self, address):
        self.reference.flush(address)
        self.cache.flush(address)

    @rule(address=addresses)
    def probe(self, address):
        assert self.cache.probe(address) == self.reference.resident(address)

    @invariant()
    def same_resident_set(self):
        cache_lines = {
            line.address // 64
            for cache_set in self.cache.sets
            for line in cache_set.lines
            if line.valid
        }
        assert cache_lines == self.reference.all_resident()


CacheVsReference.TestCase.settings = settings(
    max_examples=60, stateful_step_count=60, deadline=None
)
TestCacheVsReference = CacheVsReference.TestCase
