"""Tests for cache geometry configuration and address decomposition."""

import pytest

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.common.errors import ConfigurationError


class TestCacheConfig:
    def test_paper_l1_geometry(self):
        config = CacheConfig(size=32 * 1024, ways=8, line_size=64)
        assert config.num_sets == 64
        assert config.offset_bits == 6
        assert config.index_bits == 6

    def test_set_index_uses_bits_6_to_11(self):
        # Section IV-B: "bits 6-11 of the address decide the cache set".
        config = CacheConfig(size=32 * 1024, ways=8, line_size=64)
        assert config.set_index(0) == 0
        assert config.set_index(64) == 1
        assert config.set_index(63) == 0
        assert config.set_index(64 * 64) == 0  # wraps at 4 KiB

    def test_tag_above_index(self):
        config = CacheConfig(size=32 * 1024, ways=8, line_size=64)
        assert config.tag(0) == 0
        assert config.tag(64 * 64) == 1

    def test_line_address_rounds_down(self):
        config = CacheConfig()
        assert config.line_address(130) == 128

    def test_same_set_different_tags(self):
        config = CacheConfig(size=32 * 1024, ways=8, line_size=64)
        stride = config.num_sets * config.line_size
        a, b = 5 * 64, 5 * 64 + stride
        assert config.set_index(a) == config.set_index(b)
        assert config.tag(a) != config.tag(b)

    @pytest.mark.parametrize("size", [0, 100, 3 * 1024])
    def test_non_power_of_two_size_rejected(self, size):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=size)

    def test_non_power_of_two_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(ways=6)

    def test_bad_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(hit_latency=0)

    def test_size_divisibility(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=1024, ways=32, line_size=64)


class TestHierarchyConfig:
    def test_defaults_valid(self):
        config = HierarchyConfig()
        assert config.l1.hit_latency < config.l2.hit_latency < config.memory_latency

    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(
                l1=CacheConfig(line_size=64),
                l2=CacheConfig(name="L2", size=256 * 1024, line_size=128,
                               hit_latency=12.0),
            )

    def test_non_increasing_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(
                l1=CacheConfig(hit_latency=12.0),
                l2=CacheConfig(name="L2", size=256 * 1024, hit_latency=4.0),
            )
