"""Tests for the Partition-Locked cache, original and hardened."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.pl_cache import PLCache
from repro.common.types import MemoryAccess


def make_pl(lock_lru=False, ways=4):
    config = CacheConfig(
        size=ways * 8 * 64, ways=ways, line_size=64, policy="tree-plru"
    )
    return PLCache(config, lock_lru=lock_lru)


def fill_set(cache, count, base_tag=0):
    """Fill `count` lines into set 0; returns their addresses."""
    stride = cache.config.num_sets * 64
    addresses = [(base_tag + i) * stride for i in range(count)]
    for a in addresses:
        if not cache.lookup(MemoryAccess(address=a), count=False).hit:
            cache.fill(MemoryAccess(address=a))
    return addresses


class TestLocking:
    def test_lock_line_sets_bit(self):
        cache = make_pl()
        fill_set(cache, 1)
        cache.lock_line(0)
        assert cache.set_for(0).locked_ways() == [0]

    def test_unlock_line_clears_bit(self):
        cache = make_pl()
        fill_set(cache, 1)
        cache.lock_line(0)
        cache.unlock_line(0)
        assert cache.set_for(0).locked_ways() == []

    def test_lock_request_on_access(self):
        cache = make_pl()
        cache.fill(MemoryAccess(address=0, locked=True))
        assert cache.set_for(0).locked_ways() == [0]

    def test_locked_line_never_evicted(self):
        cache = make_pl(ways=4)
        addresses = fill_set(cache, 4)
        cache.lock_line(addresses[0])
        # Hammer the set with new lines; address 0 must survive.
        stride = cache.config.num_sets * 64
        for i in range(10, 30):
            cache.fill(MemoryAccess(address=i * stride))
        assert cache.probe(addresses[0])

    def test_locked_victim_served_uncached(self):
        cache = make_pl(ways=4)
        addresses = fill_set(cache, 4)
        # Lock everything: any further fill must be uncached.
        for a in addresses:
            cache.lock_line(a)
        stride = cache.config.num_sets * 64
        result = cache.fill(MemoryAccess(address=99 * stride))
        assert result.uncached
        assert not cache.probe(99 * stride)


class TestOriginalDesignLeak:
    def test_hit_on_locked_line_updates_lru(self):
        """The flaw of Figure 11 top: original PL updates PLRU on locked
        hits."""
        cache = make_pl(lock_lru=False)
        addresses = fill_set(cache, 4)
        cache.lock_line(addresses[3])
        # Make another way most-recent so the locked hit is not a no-op.
        cache.lookup(MemoryAccess(address=addresses[0]), count=False)
        snap = cache.set_for(0).policy.state_snapshot()
        cache.lookup(MemoryAccess(address=addresses[3]))
        assert cache.set_for(0).policy.state_snapshot() != snap

    def test_refused_replacement_updates_victim_state(self):
        cache = make_pl(lock_lru=False, ways=4)
        addresses = fill_set(cache, 4)
        # Lock addresses[0]'s way, then make it the PLRU victim via a
        # full sequential pass over the others.
        cache.lock_line(addresses[0])
        for a in addresses[1:]:
            cache.lookup(MemoryAccess(address=a), count=False)
        victim_way = cache.set_for(0).policy.victim()
        assert cache.set_for(0).lines[victim_way].locked
        snap = cache.set_for(0).policy.state_snapshot()
        stride = cache.config.num_sets * 64
        result = cache.fill(MemoryAccess(address=50 * stride))
        assert result.uncached
        assert cache.set_for(0).policy.state_snapshot() != snap


class TestHardenedDesign:
    def test_hit_on_locked_line_does_not_update_lru(self):
        """The fix (blue boxes in Figure 10)."""
        cache = make_pl(lock_lru=True)
        addresses = fill_set(cache, 4)
        cache.lock_line(addresses[3])
        snap = cache.set_for(0).policy.state_snapshot()
        cache.lookup(MemoryAccess(address=addresses[3]))
        assert cache.set_for(0).policy.state_snapshot() == snap

    def test_refused_replacement_does_not_update_state(self):
        cache = make_pl(lock_lru=True, ways=4)
        addresses = fill_set(cache, 4)
        cache.lock_line(addresses[0])
        for a in addresses[1:]:
            cache.lookup(MemoryAccess(address=a), count=False)
        snap = cache.set_for(0).policy.state_snapshot()
        stride = cache.config.num_sets * 64
        result = cache.fill(MemoryAccess(address=50 * stride))
        assert result.uncached
        assert cache.set_for(0).policy.state_snapshot() == snap

    def test_unlocked_lines_behave_normally(self):
        cache = make_pl(lock_lru=True)
        addresses = fill_set(cache, 2)
        snap = cache.set_for(0).policy.state_snapshot()
        cache.lookup(MemoryAccess(address=addresses[0]))
        assert cache.set_for(0).policy.state_snapshot() != snap
