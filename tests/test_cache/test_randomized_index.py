"""Tests for the CEASER-style randomized-index cache."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.randomized_index import RandomizedIndexCache
from repro.common.types import MemoryAccess


@pytest.fixture
def cache():
    return RandomizedIndexCache(
        CacheConfig(size=32 * 1024, ways=8, line_size=64), rng=9
    )


class TestRandomizedIndex:
    def test_basic_fill_and_hit(self, cache):
        cache.fill(MemoryAccess(address=0x1000))
        assert cache.lookup(MemoryAccess(address=0x1000)).hit

    def test_line_granularity_preserved(self, cache):
        cache.fill(MemoryAccess(address=0x1000))
        assert cache.probe(0x103F)
        assert not cache.probe(0x1040)

    def test_natural_same_set_lines_scatter(self, cache):
        """The defense: software's same-index lines no longer co-reside."""
        lines = [5 * 64 + i * 4096 for i in range(16)]
        sets = {cache._scrambled_index(a) for a in lines}
        assert len(sets) > 8  # far from all landing in one set

    def test_mapping_is_deterministic_within_epoch(self, cache):
        assert cache._scrambled_index(0x1000) == cache._scrambled_index(0x1000)

    def test_different_keys_different_mappings(self):
        config = CacheConfig(size=32 * 1024, ways=8, line_size=64)
        a = RandomizedIndexCache(config, rng=1)
        b = RandomizedIndexCache(config, rng=2)
        addresses = [i * 64 for i in range(256)]
        same = sum(
            1
            for addr in addresses
            if a._scrambled_index(addr) == b._scrambled_index(addr)
        )
        assert same < 32  # ~1/64 expected by chance

    def test_mapping_roughly_uniform(self, cache):
        from collections import Counter

        counts = Counter(
            cache._scrambled_index(i * 64) for i in range(6400)
        )
        assert len(counts) == 64
        assert max(counts.values()) < 3 * min(counts.values())

    def test_remap_changes_mapping_and_flushes(self, cache):
        cache.fill(MemoryAccess(address=0x1000))
        before = [cache._scrambled_index(i * 64) for i in range(128)]
        cache.remap()
        after = [cache._scrambled_index(i * 64) for i in range(128)]
        assert before != after
        assert not cache.probe(0x1000)

    def test_flush_uses_scrambled_index(self, cache):
        cache.fill(MemoryAccess(address=0x2000))
        assert cache.flush(0x2000)
        assert not cache.probe(0x2000)

    def test_channel_construction_fails_structurally(self, cache):
        """An Algorithm-2 eviction set built from plain indices cannot
        evict the victim line: its members don't share the real set."""
        victim = 5 * 64
        cache.fill(MemoryAccess(address=victim))
        # Attacker's classic eviction set for "set 5".
        for i in range(1, 9):
            cache.fill(MemoryAccess(address=victim + i * 4096))
            cache.lookup(MemoryAccess(address=victim + i * 4096), count=False)
        # With scattering, the victim survives with high probability
        # (deterministic for this key/seed).
        assert cache.probe(victim)
