"""Unit tests for durable atomic writes and artifact quarantine."""

import os

from repro.common.atomicio import (
    atomic_write_text,
    fsync_directory,
    quarantine_file,
)


class TestAtomicWriteText:
    def test_creates_file_with_exact_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), '{"a": 1}')
        assert path.read_text() == '{"a": 1}'

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("old")
        atomic_write_text(str(path), "new")
        assert path.read_text() == "new"

    def test_leaves_no_temp_file_behind(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "content")
        assert os.listdir(tmp_path) == ["out.json"]

    def test_relative_path_in_cwd(self, tmp_path, monkeypatch):
        # The directory fsync resolves a bare filename to the cwd
        # rather than fsyncing the empty string.
        monkeypatch.chdir(tmp_path)
        atomic_write_text("bare.json", "x")
        assert (tmp_path / "bare.json").read_text() == "x"


class TestQuarantineFile:
    def test_moves_to_corrupt_and_returns_path(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text("damaged bytes")
        corrupt = quarantine_file(str(path))
        assert corrupt == str(path) + ".corrupt"
        assert not path.exists()
        assert (tmp_path / "artifact.json.corrupt").read_text() == (
            "damaged bytes"
        )

    def test_missing_file_returns_none(self, tmp_path):
        assert quarantine_file(str(tmp_path / "never-existed")) is None

    def test_replaces_previous_quarantine(self, tmp_path):
        path = tmp_path / "artifact.json"
        (tmp_path / "artifact.json.corrupt").write_text("older corpse")
        path.write_text("newer corpse")
        quarantine_file(str(path))
        assert (tmp_path / "artifact.json.corrupt").read_text() == (
            "newer corpse"
        )


class TestFsyncDirectory:
    def test_tolerates_unsyncable_path(self):
        # Must degrade gracefully, never raise.
        fsync_directory("/definitely/not/a/real/directory")
        fsync_directory("")
