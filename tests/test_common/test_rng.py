"""Tests for deterministic RNG plumbing."""

import random

from repro.common.rng import make_rng, spawn_rng


class TestMakeRng:
    def test_default_is_deterministic(self):
        assert make_rng().random() == make_rng().random()

    def test_int_seed(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough(self):
        rng = random.Random(3)
        assert make_rng(rng) is rng


class TestSpawnRng:
    def test_children_are_independent_streams(self):
        parent = make_rng(1)
        a = spawn_rng(parent, "a")
        b = spawn_rng(parent, "b")
        assert a.random() != b.random()

    def test_label_salts_the_seed(self):
        a = spawn_rng(make_rng(1), "x")
        b = spawn_rng(make_rng(1), "y")
        assert a.random() != b.random()

    def test_reproducible_given_same_parent_state(self):
        a = spawn_rng(make_rng(1), "x")
        b = spawn_rng(make_rng(1), "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_spawning_advances_parent(self):
        parent = make_rng(1)
        before = parent.getstate()
        spawn_rng(parent, "x")
        assert parent.getstate() != before
