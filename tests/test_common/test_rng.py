"""Tests for deterministic RNG plumbing."""

import random

from repro.common.rng import make_rng, spawn_rng


class TestMakeRng:
    def test_default_is_deterministic(self):
        assert make_rng().random() == make_rng().random()

    def test_int_seed(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough(self):
        rng = random.Random(3)
        assert make_rng(rng) is rng


class TestSpawnRng:
    def test_children_are_independent_streams(self):
        parent = make_rng(1)
        a = spawn_rng(parent, "a")
        b = spawn_rng(parent, "b")
        assert a.random() != b.random()

    def test_label_salts_the_seed(self):
        a = spawn_rng(make_rng(1), "x")
        b = spawn_rng(make_rng(1), "y")
        assert a.random() != b.random()

    def test_reproducible_given_same_parent_state(self):
        a = spawn_rng(make_rng(1), "x")
        b = spawn_rng(make_rng(1), "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_spawning_advances_parent(self):
        parent = make_rng(1)
        before = parent.getstate()
        spawn_rng(parent, "x")
        assert parent.getstate() != before


class TestTrialStreams:
    def _streams(self):
        from repro.common.rng import trial_streams

        return trial_streams

    def test_deterministic(self):
        import numpy as np

        trial_streams = self._streams()
        np.testing.assert_array_equal(
            trial_streams(7, 5), trial_streams(7, 5)
        )

    def test_offset_selects_a_window_of_the_same_sequence(self):
        import numpy as np

        trial_streams = self._streams()
        np.testing.assert_array_equal(
            trial_streams(7, 5, offset=2), trial_streams(7, 7)[2:]
        )

    def test_seed_changes_every_key(self):
        trial_streams = self._streams()
        assert not (trial_streams(1, 8) == trial_streams(2, 8)).any()

    def test_negative_arguments_rejected(self):
        import pytest

        trial_streams = self._streams()
        with pytest.raises(ValueError):
            trial_streams(7, -1)
        with pytest.raises(ValueError):
            trial_streams(7, 1, offset=-1)


class TestStreamDraws:
    def _keys(self, trials=4):
        from repro.common.rng import trial_streams

        return trial_streams(2020, trials)

    def test_spawn_streams_label_salts_the_keys(self):
        from repro.common.rng import spawn_streams

        keys = self._keys()
        assert not (
            spawn_streams(keys, "message") == spawn_streams(keys, "noise")
        ).any()

    def test_stream_bits_matches_per_counter_u64_parity(self):
        import numpy as np

        from repro.common.rng import stream_bits, stream_u64

        keys = self._keys()
        bits = stream_bits(keys, 6)
        assert bits.shape == (4, 6)
        for position in range(6):
            np.testing.assert_array_equal(
                bits[:, position].astype(np.uint64),
                stream_u64(keys, position) & np.uint64(1),
            )

    def test_stream_gauss_counters_do_not_overlap(self):
        from repro.common.rng import stream_gauss

        keys = self._keys()
        a = stream_gauss(keys, 0, 0.0, 1.0)
        b = stream_gauss(keys, 1, 0.0, 1.0)
        assert not (a == b).any()

    def test_stream_gauss_moments(self):
        from repro.common.rng import stream_gauss, trial_streams

        keys = trial_streams(11, 20000)
        draws = stream_gauss(keys, 3, 10.0, 2.0)
        assert abs(float(draws.mean()) - 10.0) < 0.1
        assert abs(float(draws.std()) - 2.0) < 0.1
