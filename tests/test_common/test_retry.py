"""Unit tests for the generic retry-with-backoff helper."""

import pytest

from repro.common.deadline import Deadline
from repro.common.rng import make_rng
from repro.common.retry import full_jitter, retry_with_backoff


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryWithBackoff:
    def test_returns_first_success_without_sleeping(self):
        sleeps = []
        result = retry_with_backoff(
            lambda attempt: "ok", sleep=sleeps.append
        )
        assert result == "ok"
        assert sleeps == []

    def test_passes_zero_based_attempt_index(self):
        seen = []

        def fn(attempt):
            seen.append(attempt)
            if attempt < 2:
                raise ValueError("not yet")
            return attempt

        assert retry_with_backoff(fn, attempts=3, sleep=lambda _: None) == 2
        assert seen == [0, 1, 2]

    def test_raises_last_error_when_exhausted(self):
        def fn(attempt):
            raise RuntimeError(f"attempt {attempt}")

        with pytest.raises(RuntimeError, match="attempt 2"):
            retry_with_backoff(fn, attempts=3, sleep=lambda _: None)

    def test_backoff_doubles_and_caps(self):
        sleeps = []

        def fn(attempt):
            raise ValueError("always")

        with pytest.raises(ValueError):
            retry_with_backoff(
                fn,
                attempts=5,
                base_delay=0.1,
                max_delay=0.3,
                sleep=sleeps.append,
            )
        assert sleeps == [0.1, 0.2, 0.3, 0.3]

    def test_non_matching_error_propagates_immediately(self):
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise KeyError("wrong kind")

        with pytest.raises(KeyError):
            retry_with_backoff(
                fn, attempts=3, retry_on=(ValueError,), sleep=lambda _: None
            )
        assert calls == [0]

    def test_on_retry_callback_sees_attempt_and_error(self):
        observed = []

        def fn(attempt):
            if attempt == 0:
                raise ValueError("flaky")
            return "done"

        retry_with_backoff(
            fn,
            attempts=2,
            sleep=lambda _: None,
            on_retry=lambda attempt, error: observed.append(
                (attempt, str(error))
            ),
        )
        assert observed == [(0, "flaky")]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            retry_with_backoff(lambda a: a, attempts=0)
        with pytest.raises(ValueError):
            retry_with_backoff(lambda a: a, base_delay=-1.0)

    def test_zero_base_delay_never_sleeps(self):
        sleeps = []

        def fn(attempt):
            if attempt < 2:
                raise ValueError("again")
            return attempt

        retry_with_backoff(
            fn, attempts=3, base_delay=0.0, sleep=sleeps.append
        )
        assert sleeps == []


class TestDeadlineAwareRetry:
    def test_expired_deadline_raises_last_error_instead_of_retrying(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        calls = []

        def fn(attempt):
            calls.append(attempt)
            clock.advance(6.0)  # the attempt itself eats the budget
            raise RuntimeError(f"attempt {attempt}")

        with pytest.raises(RuntimeError, match="attempt 0"):
            retry_with_backoff(
                fn, attempts=3, sleep=lambda _: None, deadline=deadline
            )
        assert calls == [0]

    def test_sleep_that_would_overrun_aborts_the_loop(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        sleeps = []

        def fn(attempt):
            clock.advance(0.8)  # 0.2 s left; next backoff is 0.5 s
            raise RuntimeError(f"attempt {attempt}")

        with pytest.raises(RuntimeError, match="attempt 0"):
            retry_with_backoff(
                fn,
                attempts=3,
                base_delay=0.5,
                sleep=sleeps.append,
                deadline=deadline,
            )
        assert sleeps == []  # never slept into the overrun

    def test_retries_proceed_while_budget_allows(self):
        clock = FakeClock()
        deadline = Deadline.after(10.0, clock=clock)
        sleeps = []

        def sleeping(pause):
            sleeps.append(pause)
            clock.advance(pause)

        def fn(attempt):
            clock.advance(0.1)
            if attempt < 2:
                raise RuntimeError("flaky")
            return attempt

        result = retry_with_backoff(
            fn,
            attempts=3,
            base_delay=0.5,
            sleep=sleeping,
            deadline=deadline,
        )
        assert result == 2
        assert sleeps == [0.5, 1.0]

    def test_on_retry_not_fired_when_deadline_aborts(self):
        # The callback announces "this error will be retried"; an abort
        # must not lie about that.
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        observed = []

        def fn(attempt):
            clock.advance(2.0)
            raise RuntimeError("slow failure")

        with pytest.raises(RuntimeError):
            retry_with_backoff(
                fn,
                attempts=3,
                sleep=lambda _: None,
                on_retry=lambda attempt, error: observed.append(attempt),
                deadline=deadline,
            )
        assert observed == []

    def test_no_deadline_means_no_budget_checks(self):
        def fn(attempt):
            if attempt < 2:
                raise RuntimeError("flaky")
            return "done"

        assert (
            retry_with_backoff(fn, attempts=3, sleep=lambda _: None)
            == "done"
        )

    def test_jittered_sleep_is_checked_against_the_budget(self):
        # The overrun check uses the *drawn* pause, not the un-jittered
        # bound: a draw that fits must sleep, one that does not must
        # abort.  With base 2.0 and 1.0 s left, seed 3's first draw is
        # small enough to fit.
        clock = FakeClock()
        rng = make_rng(3)
        first_draw = rng.uniform(0.0, 2.0)
        deadline = Deadline.after(first_draw + 0.5, clock=clock)
        sleeps = []

        def fn(attempt):
            if attempt == 0:
                raise RuntimeError("flaky")
            return "ok"

        result = retry_with_backoff(
            fn,
            attempts=2,
            base_delay=2.0,
            max_delay=2.0,
            sleep=sleeps.append,
            jitter=make_rng(3),
            deadline=deadline,
        )
        assert result == "ok"
        assert sleeps == [pytest.approx(first_draw)]


class TestFullJitter:
    def test_draw_is_within_bounds(self):
        rng = make_rng(1)
        for delay in (0.01, 0.5, 2.0):
            for _ in range(50):
                drawn = full_jitter(delay, rng)
                assert 0.0 <= drawn <= delay

    def test_zero_or_negative_delay_is_zero(self):
        rng = make_rng(1)
        assert full_jitter(0.0, rng) == 0.0
        assert full_jitter(-1.0, rng) == 0.0

    def test_is_seeded_and_reproducible(self):
        a = [full_jitter(1.0, make_rng(7)) for _ in range(1)]
        b = [full_jitter(1.0, make_rng(7)) for _ in range(1)]
        assert a == b

    def test_jittered_backoff_stays_under_deterministic_schedule(self):
        sleeps = []

        def fn(attempt):
            raise ValueError("always")

        with pytest.raises(ValueError):
            retry_with_backoff(
                fn,
                attempts=5,
                base_delay=0.1,
                max_delay=0.3,
                sleep=sleeps.append,
                jitter=42,
            )
        # Same schedule shape as the deterministic test above, but each
        # sleep is drawn uniformly from [0, bounded delay].
        assert len(sleeps) == 4
        for drawn, bound in zip(sleeps, [0.1, 0.2, 0.3, 0.3]):
            assert 0.0 <= drawn <= bound
        # And not accidentally deterministic: the draws differ.
        assert len(set(sleeps)) > 1

    def test_jitter_accepts_an_rng_instance(self):
        sleeps = []

        def fn(attempt):
            if attempt == 0:
                raise ValueError("flaky")
            return "ok"

        result = retry_with_backoff(
            fn,
            attempts=2,
            base_delay=0.5,
            sleep=sleeps.append,
            jitter=make_rng(3),
        )
        assert result == "ok"
        assert len(sleeps) == 1
        assert 0.0 <= sleeps[0] <= 0.5

    def test_without_jitter_schedule_is_unchanged(self):
        sleeps = []

        def fn(attempt):
            raise ValueError("always")

        with pytest.raises(ValueError):
            retry_with_backoff(
                fn,
                attempts=3,
                base_delay=0.1,
                max_delay=1.0,
                sleep=sleeps.append,
            )
        assert sleeps == [0.1, 0.2]
