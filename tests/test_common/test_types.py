"""Tests for the core value types."""

import pytest

from repro.common.types import (
    AccessOutcome,
    AccessType,
    CacheLevel,
    LineAddress,
    MemoryAccess,
    Observation,
)


class TestAccessType:
    def test_demand_accesses(self):
        assert AccessType.LOAD.is_demand()
        assert AccessType.STORE.is_demand()

    def test_flush_is_not_demand(self):
        assert not AccessType.FLUSH.is_demand()


class TestCacheLevel:
    def test_ordering(self):
        assert CacheLevel.L1 < CacheLevel.L2 < CacheLevel.LLC < CacheLevel.MEMORY

    def test_comparison_with_int(self):
        assert CacheLevel.L1 == 1


class TestMemoryAccess:
    def test_defaults(self):
        access = MemoryAccess(address=64)
        assert access.access_type == AccessType.LOAD
        assert access.thread_id == 0
        assert not access.speculative

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=-1)

    def test_frozen(self):
        access = MemoryAccess(address=0)
        with pytest.raises(Exception):
            access.address = 5  # type: ignore[misc]


class TestAccessOutcome:
    def test_l1_hit_property(self):
        access = MemoryAccess(address=0)
        outcome = AccessOutcome(access=access, hit_level=CacheLevel.L1, latency=4.0)
        assert outcome.l1_hit

    def test_way_predictor_miss_is_not_l1_hit(self):
        access = MemoryAccess(address=0)
        outcome = AccessOutcome(
            access=access,
            hit_level=CacheLevel.L1,
            latency=17.0,
            was_way_predictor_miss=True,
        )
        assert not outcome.l1_hit

    def test_l2_is_not_l1_hit(self):
        access = MemoryAccess(address=0)
        outcome = AccessOutcome(access=access, hit_level=CacheLevel.L2, latency=12.0)
        assert not outcome.l1_hit


class TestLineAddress:
    def test_recompose_roundtrip(self):
        la = LineAddress(tag=5, set_index=3, offset=8)
        address = la.recompose(num_sets=64, line_size=64)
        assert address == (5 * 64 + 3) * 64 + 8

    def test_zero(self):
        assert LineAddress(0, 0, 0).recompose(64, 64) == 0


class TestObservation:
    def test_defaults(self):
        obs = Observation(sequence=0, latency=33.0)
        assert obs.decoded_bit is None
        assert obs.timestamp == 0
