"""Tests for the Wagner-Fischer edit distance (the paper's error metric)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.editdist import channel_error_rate, edit_distance, edit_operations

BITS = st.lists(st.integers(min_value=0, max_value=1), max_size=30)


class TestEditDistance:
    def test_identical_sequences(self):
        assert edit_distance([1, 0, 1], [1, 0, 1]) == 0

    def test_empty_vs_empty(self):
        assert edit_distance([], []) == 0

    def test_empty_vs_nonempty(self):
        assert edit_distance([], [1, 0, 1]) == 3
        assert edit_distance([1, 0, 1], []) == 3

    def test_single_substitution(self):
        assert edit_distance([1, 0, 1], [1, 1, 1]) == 1

    def test_single_insertion(self):
        assert edit_distance([1, 0], [1, 0, 1]) == 1

    def test_single_deletion(self):
        assert edit_distance([1, 0, 1], [1, 1]) == 1

    def test_classic_strings(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("flaw", "lawn") == 2

    def test_completely_different(self):
        assert edit_distance([0] * 5, [1] * 5) == 5

    def test_shift_by_one_costs_little(self):
        # A bit slip is cheap under edit distance — which is exactly why
        # the paper uses it for channels with insertion/loss errors.
        sent = [1, 0, 1, 1, 0, 0, 1, 0]
        received = sent[1:] + [0]
        assert edit_distance(sent, received) <= 2

    @given(BITS, BITS)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(BITS)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(BITS, BITS)
    def test_bounds(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(BITS, BITS, BITS)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


class TestEditOperations:
    def test_script_length_matches_distance(self):
        sent, received = [1, 0, 1, 1], [0, 0, 1]
        ops = edit_operations(sent, received)
        non_matches = [o for o in ops if o[0] != "match"]
        assert len(non_matches) == edit_distance(sent, received)

    def test_all_match_for_identical(self):
        ops = edit_operations([1, 1, 0], [1, 1, 0])
        assert all(op == "match" for op, _, _ in ops)

    def test_pure_insertions(self):
        ops = edit_operations([], [1, 0])
        assert [op for op, _, _ in ops] == ["insert", "insert"]

    def test_pure_deletions(self):
        ops = edit_operations([1, 0], [])
        assert [op for op, _, _ in ops] == ["delete", "delete"]

    @given(BITS, BITS)
    def test_script_replays_correctly(self, sent, received):
        """Applying the edit script to `sent` must yield `received`."""
        ops = edit_operations(sent, received)
        out = []
        for op, i, j in ops:
            if op in ("match", "substitute", "insert"):
                out.append(received[j])
        assert out == list(received)


class TestChannelErrorRate:
    def test_perfect_channel(self):
        assert channel_error_rate([1, 0, 1], [1, 0, 1]) == 0.0

    def test_normalization(self):
        assert channel_error_rate([1, 0, 1, 1], [1, 1, 1, 1]) == 0.25

    def test_empty_sent(self):
        assert channel_error_rate([], [1, 1]) == 2.0

    def test_can_exceed_one_with_insertions(self):
        rate = channel_error_rate([1], [0, 0, 0, 0])
        assert rate == 4.0
