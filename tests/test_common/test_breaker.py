"""Circuit-breaker state machine, on a hand-cranked clock."""

import pytest

from repro.common.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("reset_timeout", 10.0)
    kwargs.setdefault("probe_jitter", 0.0)  # exact timing in tests
    return CircuitBreaker(clock=clock, **kwargs)


class TestClosedState:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self):
        breaker = make_breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = make_breaker(FakeClock())
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()  # never 3 in a row
        assert breaker.state == CLOSED


class TestTripAndProbe:
    def test_threshold_failures_trip_open(self):
        breaker = make_breaker(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.times_opened == 1

    def test_open_turns_half_open_after_reset_timeout(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else waits for the verdict
        assert not breaker.allow()

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_delay(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.times_opened == 2
        assert not breaker.allow()
        clock.advance(10.1)  # fresh reset_timeout from the re-open
        assert breaker.allow()

    def test_abandoned_probe_frees_the_slot(self):
        # The service takes the probe slot before enqueueing; a shed
        # call must hand it back or no probe ever reports.
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        assert not breaker.allow()
        breaker.abandon_probe()
        assert breaker.allow()


class TestJitterAndObservers:
    def test_probe_delay_is_seed_deterministic(self):
        def probe_delay(seed):
            clock = FakeClock()
            breaker = CircuitBreaker(
                failure_threshold=1,
                reset_timeout=10.0,
                probe_jitter=0.5,
                jitter=seed,
                clock=clock,
            )
            breaker.record_failure()
            return breaker._probe_at

        assert probe_delay(7) == probe_delay(7)
        assert probe_delay(7) != probe_delay(8)

    def test_jittered_delay_stays_in_declared_band(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout=10.0,
            probe_jitter=0.5,
            jitter=42,
            clock=clock,
        )
        breaker.record_failure()
        assert 10.0 <= breaker._probe_at <= 15.0

    def test_on_transition_sees_every_state_change(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout=10.0,
            probe_jitter=0.0,
            clock=clock,
            name="pool-0",
            on_transition=lambda b, old, new: seen.append((old, new)),
        )
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert seen == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"reset_timeout": 0.0},
            {"reset_timeout": -1.0},
            {"probe_jitter": -0.1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
