"""Tests for the ASCII plotting helpers."""

from repro.common.ascii_plot import bar_histogram, sparkline, threshold_trace


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_rises(self):
        out = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert out[0] == "▁"
        assert out[-1] == "█"
        assert list(out) == sorted(out)

    def test_width_compression(self):
        out = sparkline(list(range(100)), width=10)
        assert len(out) == 10

    def test_length_matches_input_when_unbounded(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_alternating_wave_shape(self):
        out = sparkline([30, 30, 60, 60, 30, 30])
        assert out[0] == out[1] != out[2]


class TestThresholdTrace:
    def test_two_lines(self):
        out = threshold_trace([30, 60, 30], threshold=45)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1] == ".^."

    def test_width_sampling(self):
        out = threshold_trace(list(range(100)), threshold=50, width=20)
        assert len(out.splitlines()[0]) == 20


class TestBarHistogram:
    def test_empty(self):
        assert bar_histogram([]) == []

    def test_peak_gets_full_width(self):
        lines = bar_histogram([(30.0, 10), (40.0, 5)], width=20)
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_counts_shown(self):
        lines = bar_histogram([(30.0, 7)])
        assert "(7)" in lines[0]

    def test_zero_count_bin_has_no_bar(self):
        lines = bar_histogram([(30.0, 4), (40.0, 0)], width=10)
        assert lines[1].count("#") == 0

    def test_all_zero(self):
        assert bar_histogram([(1.0, 0)]) == []
