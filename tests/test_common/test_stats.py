"""Tests for statistics helpers (histograms, moving average, thresholds)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    Histogram,
    best_fit_period,
    fraction_of_ones,
    mean,
    moving_average,
    otsu_threshold,
    percentile,
    stdev,
    threshold_classify,
    variance,
)

FLOATS = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


class TestBasicStats:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_mean_values(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_variance_constant(self):
        assert variance([5.0] * 10) == 0.0

    def test_variance_short(self):
        assert variance([3.0]) == 0.0

    def test_stdev(self):
        assert stdev([2.0, 4.0]) == pytest.approx(1.0)

    @given(FLOATS)
    def test_mean_within_range(self, values):
        # Tolerance for float summation rounding on equal values.
        eps = 1e-6 * max(1.0, max(abs(v) for v in values))
        assert min(values) - eps <= mean(values) <= max(values) + eps


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_extremes(self):
        data = [3, 1, 4, 1, 5]
        assert percentile(data, 0) == min(data)
        assert percentile(data, 100) == max(data)

    def test_interpolation(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)

    def test_single_element(self):
        assert percentile([7], 99) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        assert moving_average([1.0, 2.0, 3.0], 1) == [1.0, 2.0, 3.0]

    def test_window_two(self):
        assert moving_average([1.0, 3.0, 5.0], 2) == [2.0, 4.0]

    def test_window_exceeds_length(self):
        assert moving_average([2.0, 4.0], 10) == [3.0]

    def test_empty_input(self):
        assert moving_average([], 3) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_smooths_alternation(self):
        wave = [0.0, 10.0] * 10
        smoothed = moving_average(wave, 2)
        assert all(v == pytest.approx(5.0) for v in smoothed)

    @given(FLOATS, st.integers(min_value=1, max_value=10))
    def test_output_length(self, values, window):
        out = moving_average(values, window)
        if window >= len(values):
            assert len(out) == 1
        else:
            assert len(out) == len(values) - window + 1


class TestThresholdClassify:
    def test_above_is_one(self):
        assert threshold_classify([1.0, 5.0], 3.0, above_is=1) == [0, 1]

    def test_above_is_zero(self):
        assert threshold_classify([1.0, 5.0], 3.0, above_is=0) == [1, 0]

    def test_boundary_is_below(self):
        assert threshold_classify([3.0], 3.0, above_is=1) == [0]


class TestOtsuThreshold:
    def test_bimodal_separation(self):
        low = [10.0] * 50
        high = [50.0] * 50
        t = otsu_threshold(low + high)
        assert 10.0 < t < 50.0

    def test_constant_sample(self):
        assert otsu_threshold([4.0, 4.0]) == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            otsu_threshold([])

    def test_realistic_latency_split(self):
        hits = [33, 34, 35, 33, 34] * 20
        misses = [43, 44, 42, 45] * 20
        t = otsu_threshold([float(x) for x in hits + misses])
        assert 35 < t < 42


class TestHistogram:
    def test_add_and_total(self):
        h = Histogram(bin_width=2.0)
        h.extend([1.0, 1.5, 3.0])
        assert h.total == 3
        assert h.counts[0.0] == 2
        assert h.counts[2.0] == 1

    def test_frequencies_sum_to_one(self):
        h = Histogram()
        h.extend([1, 2, 2, 3])
        assert sum(f for _, f in h.frequencies()) == pytest.approx(1.0)

    def test_mode(self):
        h = Histogram()
        h.extend([5, 5, 5, 9])
        assert h.mode() == 5

    def test_mode_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().mode()

    def test_overlap_identical(self):
        a, b = Histogram(), Histogram()
        for h in (a, b):
            h.extend([1, 2, 3])
        assert a.overlap(b) == pytest.approx(1.0)

    def test_overlap_disjoint(self):
        a, b = Histogram(), Histogram()
        a.extend([1, 2])
        b.extend([100, 200])
        assert a.overlap(b) == 0.0

    def test_overlap_partial(self):
        a, b = Histogram(), Histogram()
        a.extend([1, 1, 2, 2])
        b.extend([2, 2, 3, 3])
        assert a.overlap(b) == pytest.approx(0.5)

    def test_overlap_empty(self):
        assert Histogram().overlap(Histogram()) == 0.0


class TestFractionOfOnes:
    def test_empty(self):
        assert fraction_of_ones([]) == 0.0

    def test_mixed(self):
        assert fraction_of_ones([1, 0, 1, 0]) == 0.5

    def test_all_ones(self):
        assert fraction_of_ones([1, 1]) == 1.0


class TestBestFitPeriod:
    def test_square_wave(self):
        wave = ([0.0] * 10 + [10.0] * 10) * 6
        assert best_fit_period(wave, 5, 20) == 10

    def test_clamped_range(self):
        wave = ([0.0] * 4 + [10.0] * 4) * 8
        period = best_fit_period(wave, 2, 6)
        assert 2 <= period <= 6

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            best_fit_period([], 1, 5)

    def test_noisy_wave_recovers_period(self):
        import random
        rng = random.Random(1)
        wave = []
        for block in range(10):
            level = 0.0 if block % 2 == 0 else 10.0
            wave.extend(level + rng.gauss(0, 1) for _ in range(7))
        assert best_fit_period(wave, 3, 14) == 7
