"""End-to-end deadline arithmetic, on a hand-cranked clock."""

import pytest

from repro.common.deadline import Deadline, deadline_from_ms


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_after_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(10.0, clock=clock)
        assert deadline.remaining() == pytest.approx(10.0)
        assert not deadline.expired
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(6.0)

    def test_remaining_clamps_at_zero_after_expiry(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(5.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_expiry_boundary_is_inclusive(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(1.0)
        assert deadline.expired

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-0.1)

    def test_zero_budget_is_born_expired(self):
        clock = FakeClock()
        deadline = Deadline.after(0.0, clock=clock)
        assert deadline.expired

    def test_would_overrun(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert not deadline.would_overrun(1.5)
        assert deadline.would_overrun(2.5)
        clock.advance(1.0)
        assert deadline.would_overrun(1.5)

    def test_bound_caps_a_finite_timeout(self):
        clock = FakeClock()
        deadline = Deadline.after(3.0, clock=clock)
        assert deadline.bound(10.0) == pytest.approx(3.0)
        assert deadline.bound(1.0) == pytest.approx(1.0)

    def test_bound_of_none_is_the_remaining_budget(self):
        # A deadline always implies *some* per-attempt bound, even when
        # no explicit timeout is configured.
        clock = FakeClock()
        deadline = Deadline.after(7.5, clock=clock)
        assert deadline.bound(None) == pytest.approx(7.5)


class TestDeadlineFromMs:
    def test_none_passes_through(self):
        assert deadline_from_ms(None) is None

    def test_millisecond_budget_converts(self):
        clock = FakeClock()
        deadline = deadline_from_ms(1500, clock=clock)
        assert deadline.remaining() == pytest.approx(1.5)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            deadline_from_ms(-1)
