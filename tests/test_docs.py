"""Documentation consistency checks.

Docs that reference code paths rot silently; these tests parse the
markdown and verify every referenced file, module, and experiment id
actually exists.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


def _read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"{name} missing"
    return path.read_text()


class TestRequiredDocs:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/PAPER_MAP.md"],
    )
    def test_exists_and_nonempty(self, name):
        assert len(_read(name)) > 500


class TestPaperMapReferences:
    def test_all_code_paths_exist(self):
        text = _read("docs/PAPER_MAP.md")
        paths = set(re.findall(r"`(repro/[\w/]+\.py)`", text))
        assert len(paths) > 15
        for path in paths:
            assert (ROOT / "src" / path).exists(), f"{path} referenced but missing"

    def test_all_test_paths_exist(self):
        text = _read("docs/PAPER_MAP.md")
        paths = set(re.findall(r"`(tests/[\w/]+\.py)(?:::[\w]+)?`", text))
        for path in paths:
            assert (ROOT / path).exists(), f"{path} referenced but missing"


class TestDesignExperimentIndex:
    def test_experiment_ids_in_design_are_registered(self):
        from repro.experiments import EXPERIMENT_REGISTRY

        text = _read("DESIGN.md")
        ids = set(re.findall(r"`(ext_\w+)`", text))
        assert ids, "DESIGN.md lists no extension experiments"
        for experiment_id in ids:
            assert experiment_id in EXPERIMENT_REGISTRY, experiment_id

    def test_bench_files_exist(self):
        text = _read("DESIGN.md")
        benches = set(re.findall(r"`(benchmarks/[\w/]+\.py)`", text))
        for path in benches:
            assert (ROOT / path).exists(), f"{path} referenced but missing"


class TestExperimentsMdFreshness:
    def test_contains_every_registered_experiment(self):
        from repro.experiments import EXPERIMENT_REGISTRY

        text = _read("EXPERIMENTS.md")
        for experiment_id in EXPERIMENT_REGISTRY:
            assert f"### {experiment_id}" in text, (
                f"{experiment_id} missing from EXPERIMENTS.md; regenerate "
                "with scripts_generate_experiments_md.py"
            )

    def test_headline_table_present(self):
        text = _read("EXPERIMENTS.md")
        assert "Headline comparisons" in text
        assert "Known deviations" in text


class TestReadmeExamplesTable:
    def test_listed_examples_exist(self):
        text = _read("README.md")
        names = set(re.findall(r"`examples/([\w]+\.py)`", text))
        for name in names:
            assert (ROOT / "examples" / name).exists(), name


#: Docs whose backticked dotted names may refer to metrics.
_METRIC_DOCS = (
    "docs/OBSERVABILITY.md",
    "docs/PAPER_MAP.md",
    "docs/SERVICE.md",
    "docs/LEAKAGE.md",
)

#: Trace span/event names (not metrics, but share metric domains).
_TRACE_NAMES = {
    "protocol.hyper_threaded",
    "protocol.time_sliced",
    "channel.bit",
    "channel.sample",
    "sanitizer.access",
}


class TestObservabilityDoc:
    def test_exists_and_nonempty(self):
        assert len(_read("docs/OBSERVABILITY.md")) > 500

    @pytest.mark.parametrize("name", _METRIC_DOCS)
    def test_every_named_metric_is_in_catalog(self, name):
        # Any backticked dotted identifier whose first segment is a
        # metric domain must be a declared metric: docs cannot name
        # series the registry would refuse to emit.
        from repro.obs.catalog import METRIC_CATALOG

        domains = {key.split(".", 1)[0] for key in METRIC_CATALOG}
        text = _read(name)
        candidates = set(re.findall(r"`([a-z_]+(?:\.[a-z_]+)+)`", text))
        named = {
            c
            for c in candidates
            if c.split(".", 1)[0] in domains
            and not c.endswith(".py")
            and c not in _TRACE_NAMES
        }
        assert named, f"{name} names no metrics"
        unknown = named - set(METRIC_CATALOG)
        assert not unknown, (
            f"{name} names undeclared metrics: {sorted(unknown)}"
        )

    def test_every_catalog_metric_is_documented(self):
        from repro.obs.catalog import METRIC_CATALOG

        text = _read("docs/OBSERVABILITY.md")
        missing = [m for m in METRIC_CATALOG if f"`{m}`" not in text]
        assert not missing, (
            f"docs/OBSERVABILITY.md missing metrics {missing}; run "
            "`python -m repro report --update-doc docs/OBSERVABILITY.md`"
        )

    def test_generated_catalog_section_is_current(self):
        from repro.obs.report import update_catalog_doc

        assert update_catalog_doc(
            str(ROOT / "docs" / "OBSERVABILITY.md"), check=True
        ), (
            "docs/OBSERVABILITY.md catalogue is stale; run "
            "`python -m repro report --update-doc docs/OBSERVABILITY.md`"
        )

    def test_trace_record_types_match_writer(self):
        # The schema table documents every record type write_trace and
        # the bus can produce.
        text = _read("docs/OBSERVABILITY.md")
        for record_type in (
            "run",
            "manifest",
            "result",
            "metrics",
            "event",
            "span_start",
            "span_end",
            "failure",
        ):
            assert f"`{record_type}`" in text, record_type


def _documented_flags(text):
    return set(re.findall(r"(--[a-z][a-z-]+)\b", text))


def _parser_flags():
    from repro.__main__ import build_parser

    flags = set()
    parser = build_parser()
    actions = list(parser._actions)
    for action in parser._actions:
        choices = getattr(action, "choices", None)
        if isinstance(choices, dict):
            for sub in choices.values():
                actions.extend(getattr(sub, "_actions", []))
    for action in actions:
        flags.update(
            s for s in getattr(action, "option_strings", ()) if s.startswith("--")
        )
    return flags


class TestCliFlagDrift:
    #: Flags belonging to other entry points (pytest-benchmark, the
    #: lint CLI, the benchmark regression checker, the EXPERIMENTS.md
    #: generator) that docs legitimately mention.
    FOREIGN = {
        "--benchmark-only",
        "--benchmark-json",
        "--baseline",
        "--min-speedup",
        "--min-batch-speedup",
        "--tolerance",
        "--max-exec-overhead",
        "--min-hit-rate",
        "--rule",
        "--only",
        "--check",
        "--update-doc",
        "--check-doc",
        "--catalog",
        # python -m repro.analysis leakage (the static analyzer CLI):
        "--policy",
        "--eager-budget",
        "--json",
    }

    @pytest.mark.parametrize(
        "name",
        [
            "README.md",
            "EXPERIMENTS.md",
            "docs/OBSERVABILITY.md",
            "docs/ANALYSIS.md",
            "docs/PERFORMANCE.md",
            "docs/FAULTS.md",
            "docs/RESILIENCE.md",
            "docs/SERVICE.md",
            "docs/LEAKAGE.md",
        ],
    )
    def test_documented_repro_flags_exist(self, name):
        documented = _documented_flags(_read(name)) - self.FOREIGN
        unknown = documented - _parser_flags()
        assert not unknown, (
            f"{name} documents flags `python -m repro` does not have: "
            f"{sorted(unknown)}"
        )

    def test_readme_documents_the_runner_flags(self):
        text = _read("README.md")
        for flag in ("--jobs", "--engine", "--sanitize", "--trace",
                     "--timeout", "--retries", "--checkpoint",
                     "--max-task-crashes", "--heartbeat-interval",
                     "--drain-timeout"):
            assert flag in text, f"README.md CLI section lacks {flag}"

    def test_parser_exposes_report_subcommand(self):
        flags = _parser_flags()
        assert {"--trace", "--catalog", "--update-doc", "--check-doc"} <= flags


class TestExperimentsMdBlocks:
    def test_every_block_has_manifest_footer(self):
        text = _read("EXPERIMENTS.md")
        ids = re.findall(r"^### (\w+)$", text, re.MULTILINE)
        blocks = re.split(r"^### \w+$", text, flags=re.MULTILINE)[1:]
        assert len(ids) == len(blocks)
        for experiment_id, block in zip(ids, blocks):
            assert "_run: seed " in block, (
                f"{experiment_id} block lacks a manifest footer; "
                "regenerate with scripts_generate_experiments_md.py"
            )
            assert "_metrics: " in block, experiment_id

    def test_fast_block_regenerates_verbatim(self):
        # The acceptance invariant on the cheapest experiment: rerunning
        # through the observed runner reproduces the committed block
        # byte-for-byte.
        import repro.experiments  # noqa: F401
        from repro.experiments.runner import ExperimentRunner
        from repro.obs.report import experiment_block

        runner = ExperimentRunner(observe=True)
        report = runner.run_many(["table2"])
        assert report.ok
        result = report.results[0]
        capture = runner.captures["table2"]
        fresh = experiment_block(result, capture.manifest, capture.metrics)
        text = _read("EXPERIMENTS.md")
        assert fresh in text, (
            "EXPERIMENTS.md table2 block is stale; regenerate with "
            "scripts_generate_experiments_md.py"
        )
