"""Documentation consistency checks.

Docs that reference code paths rot silently; these tests parse the
markdown and verify every referenced file, module, and experiment id
actually exists.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


def _read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"{name} missing"
    return path.read_text()


class TestRequiredDocs:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/PAPER_MAP.md"],
    )
    def test_exists_and_nonempty(self, name):
        assert len(_read(name)) > 500


class TestPaperMapReferences:
    def test_all_code_paths_exist(self):
        text = _read("docs/PAPER_MAP.md")
        paths = set(re.findall(r"`(repro/[\w/]+\.py)`", text))
        assert len(paths) > 15
        for path in paths:
            assert (ROOT / "src" / path).exists(), f"{path} referenced but missing"

    def test_all_test_paths_exist(self):
        text = _read("docs/PAPER_MAP.md")
        paths = set(re.findall(r"`(tests/[\w/]+\.py)(?:::[\w]+)?`", text))
        for path in paths:
            assert (ROOT / path).exists(), f"{path} referenced but missing"


class TestDesignExperimentIndex:
    def test_experiment_ids_in_design_are_registered(self):
        from repro.experiments import EXPERIMENT_REGISTRY

        text = _read("DESIGN.md")
        ids = set(re.findall(r"`(ext_\w+)`", text))
        assert ids, "DESIGN.md lists no extension experiments"
        for experiment_id in ids:
            assert experiment_id in EXPERIMENT_REGISTRY, experiment_id

    def test_bench_files_exist(self):
        text = _read("DESIGN.md")
        benches = set(re.findall(r"`(benchmarks/[\w/]+\.py)`", text))
        for path in benches:
            assert (ROOT / path).exists(), f"{path} referenced but missing"


class TestExperimentsMdFreshness:
    def test_contains_every_registered_experiment(self):
        from repro.experiments import EXPERIMENT_REGISTRY

        text = _read("EXPERIMENTS.md")
        for experiment_id in EXPERIMENT_REGISTRY:
            assert f"### {experiment_id}" in text, (
                f"{experiment_id} missing from EXPERIMENTS.md; regenerate "
                "with scripts_generate_experiments_md.py"
            )

    def test_headline_table_present(self):
        text = _read("EXPERIMENTS.md")
        assert "Headline comparisons" in text
        assert "Known deviations" in text


class TestReadmeExamplesTable:
    def test_listed_examples_exist(self):
        text = _read("README.md")
        names = set(re.findall(r"`examples/([\w]+\.py)`", text))
        for name in names:
            assert (ROOT / "examples" / name).exists(), name
