"""Tests for the replacement-policy-swap defense evaluation."""

import pytest

from repro.defenses.policy_swap import (
    compare_policies,
    evaluate_policy,
    gem5_like_config,
    geometric_mean_overhead,
)
from repro.workloads.spec_like import SPEC_LIKE_PROFILES, get_profile


@pytest.fixture(scope="module")
def comparison():
    return compare_policies(
        policies=("tree-plru", "fifo", "random"),
        profiles=SPEC_LIKE_PROFILES[:4],
        length=6000,
        warmup=1000,
        rng=5,
    )


class TestGem5Config:
    def test_geometry_matches_paper(self):
        config = gem5_like_config("tree-plru")
        assert config.l1.size == 64 * 1024
        assert config.l1.ways == 8
        assert config.l2.size == 2 * 1024 * 1024
        assert config.l2.ways == 16
        assert config.l1.hit_latency == 4.0
        assert config.l2.hit_latency == 8.0


class TestEvaluatePolicy:
    def test_returns_sane_rates(self):
        row = evaluate_policy(
            get_profile("hmmer"), "tree-plru", length=4000, warmup=500, rng=3
        )
        assert 0.0 <= row.l1_miss_rate <= 1.0
        assert 0.0 <= row.l2_miss_rate <= 1.0
        assert row.cpi > 0.0

    def test_small_working_set_mostly_hits(self):
        row = evaluate_policy(
            get_profile("hmmer"), "tree-plru", length=4000, warmup=500, rng=3
        )
        assert row.l1_miss_rate < 0.05

    def test_pointer_heavy_misses_more(self):
        hmmer = evaluate_policy(
            get_profile("hmmer"), "tree-plru", length=4000, warmup=500, rng=3
        )
        mcf = evaluate_policy(
            get_profile("mcf"), "tree-plru", length=4000, warmup=500, rng=3
        )
        assert mcf.l1_miss_rate > hmmer.l1_miss_rate * 3


class TestComparison:
    def test_all_cells_present(self, comparison):
        assert len(comparison.rows) == 4 * 3

    def test_normalized_cpi_close_to_one(self, comparison):
        """The paper's headline: <2% CPI change from the policy swap."""
        for profile in SPEC_LIKE_PROFILES[:4]:
            for policy in ("fifo", "random"):
                norm = comparison.normalized_cpi(profile.name, policy)
                assert 0.9 < norm < 1.05

    def test_geometric_mean_under_paper_bound(self, comparison):
        for policy in ("fifo", "random"):
            assert geometric_mean_overhead(comparison, policy) < 1.02

    def test_normalized_miss_rate_reasonable(self, comparison):
        for profile in SPEC_LIKE_PROFILES[:4]:
            norm = comparison.normalized_miss_rate(profile.name, "random")
            assert 0.5 < norm < 2.0

    def test_lookup_missing_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison.normalized_cpi("nonexistent", "fifo")

    def test_geomean_missing_policy_raises(self, comparison):
        with pytest.raises(KeyError):
            geometric_mean_overhead(comparison, "srrip")

    def test_identical_traces_across_policies(self, comparison):
        """The sweep must replay the same addresses per policy, so the
        baseline and defense rows are directly comparable."""
        # Identical trace => identical demand count; compare via rates
        # being finite and policies producing nearby (not wildly
        # different) miss rates on policy-insensitive workloads.
        base = comparison._lookup("bzip2", "tree-plru").l1_miss_rate
        fifo = comparison._lookup("bzip2", "fifo").l1_miss_rate
        assert abs(base - fifo) < 0.02
