"""Tests for the PL-cache hardening and the perf-counter detector."""

import pytest

from repro.channels.evaluation import random_message
from repro.defenses.detector import MissRateDetector
from repro.defenses.pl_fix import run_pl_cache_attack
from repro.perf.counters import CounterBank


class TestPLCacheAttack:
    def test_original_design_leaks(self):
        message = random_message(48, rng=3)
        trace = run_pl_cache_attack(False, message, rng=4)
        assert trace.leak_accuracy() == 1.0

    def test_hardened_design_all_hits(self):
        """Figure 11 bottom: 'receiver will always observe a cache hit'."""
        message = random_message(48, rng=3)
        trace = run_pl_cache_attack(True, message, rng=4)
        assert trace.all_hits()
        assert all(bit == 0 for bit in trace.decoded_bits)

    def test_hardened_design_accuracy_is_chance(self):
        message = random_message(64, rng=5)
        trace = run_pl_cache_attack(True, message, rng=4)
        assert 0.3 < trace.leak_accuracy() < 0.7

    def test_trace_lengths_match_message(self):
        message = [1, 0, 1]
        trace = run_pl_cache_attack(False, message, rng=4)
        assert len(trace.latencies) == 3
        assert trace.sent_bits == message

    def test_non_bit_message_rejected(self):
        from repro.common.errors import ProtocolError

        with pytest.raises(ProtocolError):
            run_pl_cache_attack(False, [2])

    def test_original_latencies_bimodal(self):
        message = [0, 1] * 20
        trace = run_pl_cache_attack(False, message, rng=4)
        zeros = [l for l, b in zip(trace.latencies, trace.sent_bits) if b == 0]
        ones = [l for l, b in zip(trace.latencies, trace.sent_bits) if b == 1]
        assert max(zeros) < min(ones)


def bank(name, refs_misses):
    """Build a CounterBank from {tid: (refs, misses)}."""
    b = CounterBank(level_name=name)
    for tid, (refs, misses) in refs_misses.items():
        for i in range(refs):
            b.record(tid, miss=i < misses)
    return b


class TestMissRateDetector:
    def test_flags_flush_reload_profile(self):
        """F+R(mem)-like footprint: ~60% L2 and ~90% LLC misses."""
        banks = [
            bank("L1D", {1: (1000, 1)}),
            bank("L2", {1: (1000, 620)}),
            bank("LLC", {1: (1000, 880)}),
        ]
        verdict = MissRateDetector().judge(banks, 1)
        assert verdict.flagged
        assert any("L2" in r or "LLC" in r for r in verdict.reasons)

    def test_passes_lru_sender_profile(self):
        """LRU sender: ~0.03% L1D, ~10% L2, ~1% LLC (Table VI)."""
        banks = [
            bank("L1D", {1: (1000, 0)}),
            bank("L2", {1: (1000, 100)}),
            bank("LLC", {1: (1000, 10)}),
        ]
        assert not MissRateDetector().judge(banks, 1).flagged

    def test_passes_benign_gcc_profile(self):
        banks = [
            bank("L1D", {1: (1000, 1)}),
            bank("L2", {1: (1000, 310)}),
            bank("LLC", {1: (1000, 610)}),
        ]
        assert not MissRateDetector().judge(banks, 1).flagged

    def test_insufficient_samples(self):
        banks = [bank("L1D", {1: (10, 10)})]
        verdict = MissRateDetector(min_references=100).judge(banks, 1)
        assert not verdict.flagged
        assert "insufficient samples" in verdict.reasons

    def test_scan_multiple_threads(self):
        banks = [
            bank("L1D", {1: (1000, 0), 2: (1000, 900)}),
            bank("L2", {1: (1000, 0), 2: (1000, 900)}),
        ]
        verdicts = MissRateDetector().scan(banks, [1, 2])
        assert [v.flagged for v in verdicts] == [False, True]

    def test_detector_misses_lru_attack_end_to_end(self):
        """Section X's conclusion, end to end: run the actual LRU covert
        channel and show the calibrated detector does not flag the
        sender."""
        from repro.channels.algorithm1 import SharedMemoryLRUChannel
        from repro.channels.protocol import (
            CovertChannelProtocol,
            ProtocolConfig,
        )
        from repro.sim.machine import Machine
        from repro.sim.specs import INTEL_E5_2690

        machine = Machine(INTEL_E5_2690, rng=7)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=8
        )
        protocol = CovertChannelProtocol(
            machine, channel, ProtocolConfig(ts=6000, tr=600)
        )
        protocol.run_hyper_threaded(random_message(32, rng=3))
        verdict = MissRateDetector().judge(machine.hierarchy.counters(), 1)
        assert not verdict.flagged
