"""Tests for the time-stamp-counter model."""

import pytest

from repro.common.stats import Histogram, mean
from repro.timing.tsc import AMD_TSC, INTEL_TSC, TimestampCounter, TSCSpec


class TestTSCSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TSCSpec(granularity=0)
        with pytest.raises(ValueError):
            TSCSpec(overhead_jitter=-1)

    def test_vendor_presets(self):
        assert INTEL_TSC.granularity < AMD_TSC.granularity
        assert INTEL_TSC.overhead_jitter < AMD_TSC.overhead_jitter


class TestQuantization:
    def test_intel_cycle_granular(self):
        tsc = TimestampCounter(INTEL_TSC, rng=1)
        assert tsc.quantize(33.7) == 33.0

    def test_amd_coarse(self):
        tsc = TimestampCounter(AMD_TSC, rng=1)
        assert tsc.quantize(35.0) == 27.0  # floor to multiple of 9

    def test_measurements_are_quantized(self):
        tsc = TimestampCounter(AMD_TSC, rng=1)
        for _ in range(50):
            value = tsc.measure(100.0, serialized=True)
            assert value % AMD_TSC.granularity == 0


class TestSerializationShadow:
    def test_short_latency_hidden_unserialized(self):
        """The Appendix A effect: single-access timing hides L1-vs-L2."""
        tsc = TimestampCounter(INTEL_TSC, rng=1)
        l1 = Histogram()
        l2 = Histogram()
        for _ in range(400):
            l1.add(tsc.measure(4.0, serialized=False))
            l2.add(tsc.measure(12.0, serialized=False))
        assert l1.overlap(l2) > 0.9

    def test_serialized_exposes_difference(self):
        """The Section IV-D effect: pointer chasing exposes the delta."""
        tsc = TimestampCounter(INTEL_TSC, rng=1)
        hit = Histogram()
        miss = Histogram()
        for _ in range(400):
            hit.add(tsc.measure(32.0, serialized=True))
            miss.add(tsc.measure(40.0, serialized=True))
        assert hit.overlap(miss) < 0.2

    def test_memory_miss_visible_even_unserialized(self):
        tsc = TimestampCounter(INTEL_TSC, rng=1)
        short = [tsc.measure(4.0) for _ in range(100)]
        long = [tsc.measure(200.0) for _ in range(100)]
        assert min(long) > max(short)

    def test_mean_tracks_overhead(self):
        tsc = TimestampCounter(INTEL_TSC, rng=1)
        values = [tsc.measure(0.0, serialized=True) for _ in range(500)]
        assert abs(mean(values) - INTEL_TSC.overhead_mean) < 1.5

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TimestampCounter(INTEL_TSC, rng=1).measure(-1.0)

    def test_never_negative_output(self):
        spec = TSCSpec(overhead_mean=0.5, overhead_jitter=3.0)
        tsc = TimestampCounter(spec, rng=1)
        assert all(tsc.measure(0.0) >= 0.0 for _ in range(200))

    def test_deterministic_given_seed(self):
        a = TimestampCounter(INTEL_TSC, rng=5)
        b = TimestampCounter(INTEL_TSC, rng=5)
        assert [a.measure(10.0) for _ in range(10)] == [
            b.measure(10.0) for _ in range(10)
        ]
