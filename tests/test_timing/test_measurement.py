"""Tests for rdtscp and pointer-chase measurement primitives."""

import pytest

from repro.cache.config import HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ConfigurationError
from repro.common.stats import Histogram
from repro.timing.measurement import (
    PointerChase,
    observed_chase_latency,
    rdtscp_measure,
)
from repro.timing.tsc import INTEL_TSC, TimestampCounter


@pytest.fixture
def setup():
    hierarchy = CacheHierarchy(HierarchyConfig(), rng=3)
    tsc = TimestampCounter(INTEL_TSC, rng=3)
    return hierarchy, tsc


def evict_from_l1(hierarchy, address):
    stride = hierarchy.config.l1.num_sets * 64
    for i in range(1, hierarchy.config.l1.ways + 1):
        hierarchy.load(address + (1 << 24) + i * stride, count=False)


class TestPointerChaseConstruction:
    def test_chain_lives_in_chosen_set(self, setup):
        hierarchy, tsc = setup
        chase = PointerChase(hierarchy, tsc, chain_set=3)
        l1 = hierarchy.config.l1
        assert all(l1.set_index(a) == 3 for a in chase.chain_addresses)

    def test_chain_addresses_distinct(self, setup):
        hierarchy, tsc = setup
        chase = PointerChase(hierarchy, tsc)
        assert len(set(chase.chain_addresses)) == 7

    def test_chain_too_long_rejected(self, setup):
        hierarchy, tsc = setup
        with pytest.raises(ConfigurationError):
            PointerChase(hierarchy, tsc, chain_length=9)

    def test_chain_set_out_of_range(self, setup):
        hierarchy, tsc = setup
        with pytest.raises(ConfigurationError):
            PointerChase(hierarchy, tsc, chain_set=64)

    def test_zero_length_rejected(self, setup):
        hierarchy, tsc = setup
        with pytest.raises(ConfigurationError):
            PointerChase(hierarchy, tsc, chain_length=0)


class TestPointerChaseMeasurement:
    def test_hit_vs_miss_separable(self, setup):
        """Figure 3's property."""
        hierarchy, tsc = setup
        chase = PointerChase(hierarchy, tsc, chain_set=0)
        chase.prime_chain()
        target = 5 * 64
        hit_hist, miss_hist = Histogram(), Histogram()
        for _ in range(200):
            hierarchy.load(target, count=False)
            hit_hist.add(chase.measure(target))
            evict_from_l1(hierarchy, target)
            miss_hist.add(chase.measure(target))
        assert hit_hist.overlap(miss_hist) < 0.2

    def test_threshold_separates(self, setup):
        hierarchy, tsc = setup
        chase = PointerChase(hierarchy, tsc, chain_set=0)
        chase.prime_chain()
        target = 5 * 64
        threshold = chase.hit_miss_threshold()
        hierarchy.load(target, count=False)
        hits = [chase.measure(target) for _ in range(50)]
        assert sum(1 for v in hits if v <= threshold) > 45
        misses = []
        for _ in range(50):
            evict_from_l1(hierarchy, target)
            misses.append(chase.measure(target))
        assert sum(1 for v in misses if v > threshold) > 45

    def test_expected_all_hit_latency(self, setup):
        hierarchy, tsc = setup
        chase = PointerChase(hierarchy, tsc)
        assert chase.expected_all_hit_latency() == 8 * 4.0

    def test_chain_does_not_touch_target_set(self, setup):
        """Section IV-D's optimization: the chain must not pollute the
        target set's LRU state."""
        hierarchy, tsc = setup
        chase = PointerChase(hierarchy, tsc, chain_set=0)
        target_set = hierarchy.l1.set_for(5 * 64)
        snap_before = target_set.policy.state_snapshot()
        chase.prime_chain()
        assert target_set.policy.state_snapshot() == snap_before

    def test_short_chain_degrades_separability(self, setup):
        """Footnote 3's trade-off, realized: a 2-element chain hides
        part of the latency difference behind the timer again."""
        hierarchy, tsc = setup
        target = 5 * 64

        def gap(length):
            chase = PointerChase(hierarchy, tsc, chain_set=0, chain_length=length)
            chase.prime_chain()
            hit_hist, miss_hist = Histogram(), Histogram()
            for _ in range(100):
                hierarchy.load(target, count=False)
                hit_hist.add(chase.measure(target))
                evict_from_l1(hierarchy, target)
                miss_hist.add(chase.measure(target))
            return 1.0 - hit_hist.overlap(miss_hist)

        assert gap(7) >= gap(1)


class TestObservedChaseLatency:
    def test_full_chain_no_shadow(self):
        tsc = TimestampCounter(INTEL_TSC, rng=1)
        values = [observed_chase_latency(tsc, 40.0, 7) for _ in range(100)]
        expected = 40.0 + INTEL_TSC.overhead_mean
        assert abs(sum(values) / len(values) - expected) < 2.0

    def test_short_chain_partially_hidden(self):
        tsc = TimestampCounter(INTEL_TSC, rng=1)
        full = sum(observed_chase_latency(tsc, 40.0, 7) for _ in range(100))
        short = sum(observed_chase_latency(tsc, 40.0, 1) for _ in range(100))
        assert short < full


class TestRdtscp:
    def test_l1_l2_indistinguishable(self, setup):
        """Appendix A / Figure 13."""
        hierarchy, tsc = setup
        target = 5 * 64
        l1_hist, l2_hist = Histogram(), Histogram()
        for _ in range(200):
            hierarchy.load(target, count=False)
            l1_hist.add(rdtscp_measure(hierarchy, tsc, target))
            evict_from_l1(hierarchy, target)
            l2_hist.add(rdtscp_measure(hierarchy, tsc, target))
        # Same underlying distribution; finite-sample overlap > 0.8.
        assert l1_hist.overlap(l2_hist) > 0.8
        assert l1_hist.mode() == pytest.approx(l2_hist.mode(), abs=2.0)

    def test_memory_miss_distinguishable(self, setup):
        hierarchy, tsc = setup
        target = 5 * 64
        hierarchy.load(target, count=False)
        hit = rdtscp_measure(hierarchy, tsc, target)
        hierarchy.flush_address(target)
        miss = rdtscp_measure(hierarchy, tsc, target)
        assert miss > hit + 100
