"""End-to-end integration tests crossing all subsystem boundaries.

Each test here is a miniature of one of the paper's claims, run through
the full stack (machine → scheduler → hierarchy → channel → decoder).
"""

import dataclasses

import pytest

from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.channels.evaluation import evaluate_hyper_threaded, random_message
from repro.channels.protocol import CovertChannelProtocol, ProtocolConfig
from repro.sim.machine import Machine
from repro.sim.specs import AMD_EPYC_7571, INTEL_E5_2690


class TestCovertChannelEndToEnd:
    def test_alg1_transfers_random_message(self):
        machine = Machine(INTEL_E5_2690, rng=42)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=8
        )
        evaluation = evaluate_hyper_threaded(
            machine, channel, ProtocolConfig(ts=6000, tr=600),
            random_message(64, rng=7), repeats=2,
        )
        assert evaluation.error_rate < 0.30

    def test_alg2_transfers_random_message(self):
        machine = Machine(INTEL_E5_2690, rng=42)
        channel = NoSharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=5
        )
        evaluation = evaluate_hyper_threaded(
            machine, channel, ProtocolConfig(ts=6000, tr=600),
            random_message(64, rng=7), repeats=2,
        )
        assert evaluation.error_rate < 0.40

    def test_alg2_even_d_pathology(self):
        """Paper Section V-A: even d is much worse for Algorithm 2 on
        Tree-PLRU ('even d makes the Tree-PLRU state point to another
        side of the subtree')."""
        def error_for(d):
            machine = Machine(INTEL_E5_2690, rng=42)
            channel = NoSharedMemoryLRUChannel.build(
                machine.spec.hierarchy.l1, 1, d=d
            )
            return evaluate_hyper_threaded(
                machine, channel, ProtocolConfig(ts=6000, tr=600),
                random_message(48, rng=7), repeats=2,
            ).error_rate

        assert error_for(4) > 2 * error_for(5)

    def test_faster_rate_higher_error(self):
        """Figure 4's main trend: with time-rate environment noise,
        faster transmission (smaller Ts) has a higher error rate."""
        def error_for(ts):
            machine = Machine(INTEL_E5_2690, rng=42)
            channel = SharedMemoryLRUChannel.build(
                machine.spec.hierarchy.l1, 1, d=8
            )
            config = ProtocolConfig(
                ts=ts, tr=600, noise_events_per_mcycle=100.0
            )
            return evaluate_hyper_threaded(
                machine, channel, config,
                random_message(48, rng=7), repeats=2,
            ).error_rate

        assert error_for(30000) <= error_for(4500)

    def test_intel_rate_matches_paper_ballpark(self):
        machine = Machine(INTEL_E5_2690, rng=42)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=8
        )
        evaluation = evaluate_hyper_threaded(
            machine, channel, ProtocolConfig(ts=6000, tr=600),
            random_message(32, rng=7), repeats=1,
        )
        # Paper: 480 Kbps on the E5-2690 at Ts=6000.
        assert 300 < evaluation.transmission_rate_kbps < 650


class TestAMDWayPredictorEndToEnd:
    def test_alg1_cross_process_broken_on_amd(self):
        """Section VI-B: the utag makes cross-address-space Algorithm 1
        unusable on AMD — the receiver sees miss latency regardless."""
        machine = Machine(AMD_EPYC_7571, rng=42)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=8
        )
        protocol = CovertChannelProtocol(
            machine, channel,
            ProtocolConfig(ts=20000, tr=1000, sender_space=1),
        )
        run = protocol.run_hyper_threaded([1] * 6)
        # The sender's touches retag line 0 to its own linear address,
        # so the receiver's timed reload mispredicts: elevated latency
        # (way-predictor miss) dominates, decoding mostly as 0.
        from repro.channels.decoder import percent_ones

        assert percent_ones(run) < 0.5

    def test_alg1_same_address_space_works_on_amd(self):
        """The paper's workaround: pthreads in one address space."""
        machine = Machine(AMD_EPYC_7571, rng=42)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=8
        )
        protocol = CovertChannelProtocol(
            machine, channel,
            ProtocolConfig(ts=20000, tr=1000, sender_space=0),
        )
        run = protocol.run_hyper_threaded([1] * 6)
        from repro.channels.decoder import percent_ones

        end = run.bit_boundaries[-1] + 20000
        run.observations = [o for o in run.observations if o.timestamp <= end]
        assert percent_ones(run) > 0.6

    def test_alg2_unaffected_by_way_predictor(self):
        """Algorithm 2 never reloads sender-touched lines, so the utag
        does not break it across processes (Section VI-C)."""
        machine = Machine(AMD_EPYC_7571, rng=42)
        channel = NoSharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=5
        )
        # The coarse AMD TSC makes per-sample decoding useless (the
        # paper needs moving averages); the oracle-window decoder
        # majority-votes the ~20 samples per bit instead.
        evaluation = evaluate_hyper_threaded(
            machine, channel, ProtocolConfig(ts=20000, tr=1000),
            random_message(24, rng=3), repeats=2, decoder="window",
        )
        assert evaluation.error_rate < 0.35


class TestDefensesEndToEnd:
    @pytest.mark.parametrize("policy", ["fifo", "random"])
    def test_policy_swap_removes_hit_based_leak(self, policy):
        """Section IX-A: with FIFO/random replacement a sender that
        only *hits* leaves no observable trace — the defining leak of
        the LRU channel is gone.  (The paper notes the sender's misses
        can still leak through classic reuse channels; that part is
        exercised by the F+R baselines.)"""
        base = INTEL_E5_2690.hierarchy
        l1 = dataclasses.replace(base.l1, policy=policy)
        config = dataclasses.replace(base, l1=l1)
        from repro.cache.hierarchy import CacheHierarchy

        def decoded_bit(sender_bit, seed):
            hierarchy = CacheHierarchy(config, rng=seed)
            channel = SharedMemoryLRUChannel.build(l1, 1, d=8)
            # Line 0 resident: the sender's encode is a pure hit.
            hierarchy.load(channel.probe_address, count=False)
            for address in channel.init_addresses():
                hierarchy.load(address, thread_id=0)
            if sender_bit:
                outcome = hierarchy.load(
                    channel.layout.sender_line, thread_id=1,
                    address_space=1,
                )
                assert outcome.l1_hit  # hit-only sender, by construction
            for address in channel.decode_addresses():
                hierarchy.load(address, thread_id=0)
            return channel.decode_bit(
                hierarchy.load(channel.probe_address, thread_id=0).l1_hit
            )

        # Over many trials the receiver's observation must be
        # independent of the sender's bit.
        ones_when_0 = sum(decoded_bit(0, s) for s in range(30))
        ones_when_1 = sum(decoded_bit(1, s) for s in range(30))
        assert abs(ones_when_1 - ones_when_0) <= 3

    def test_invisible_speculation_blocks_spectre_lru(self):
        """Section IX-B (InvisiSpec): state updates deferred past
        speculation close the transient LRU channel."""
        from repro.attacks.spectre import SpectreConfig, SpectreV1

        secret = [7, 42, 13]
        machine = Machine(INTEL_E5_2690, rng=5, invisible_speculation=True)
        attack = SpectreV1(
            machine, secret, disclosure="lru_alg1",
            config=SpectreConfig(rounds=3), rng=9,
        )
        assert attack.recover().accuracy(secret) < 0.5

    def test_invisible_speculation_blocks_spectre_fr(self):
        from repro.attacks.spectre import SpectreConfig, SpectreV1

        secret = [7, 42, 13]
        machine = Machine(INTEL_E5_2690, rng=5, invisible_speculation=True)
        attack = SpectreV1(
            machine, secret, disclosure="flush_reload",
            config=SpectreConfig(rounds=3), rng=9,
        )
        assert attack.recover().accuracy(secret) < 0.5
