"""Integration tests for the extension subsystems.

These exercise the 3-level hierarchy, the randomized-index defense
against the real channel stack, and the CLI entry point.
"""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.randomized_index import RandomizedIndexCache
from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.channels.evaluation import evaluate_hyper_threaded, random_message
from repro.channels.protocol import ProtocolConfig
from repro.common.types import CacheLevel
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E5_2690, INTEL_E5_2690_3LEVEL


class TestThreeLevelHierarchy:
    def test_llc_level_served(self):
        machine = Machine(INTEL_E5_2690_3LEVEL, rng=1)
        machine.hierarchy.load(0)
        # Evict from L1+L2 (small) but not the 2 MiB LLC.
        l2_stride = machine.spec.hierarchy.l2.num_sets * 64
        for i in range(1, 20):
            machine.hierarchy.load((1 << 25) + i * l2_stride)
        outcome = machine.hierarchy.load(0)
        assert outcome.hit_level == CacheLevel.LLC
        assert outcome.latency == 40.0

    def test_counters_include_llc(self):
        machine = Machine(INTEL_E5_2690_3LEVEL, rng=1)
        banks = machine.hierarchy.counters()
        assert [b.level_name for b in banks] == ["L1D", "L2", "LLC"]

    def test_flush_reaches_llc(self):
        machine = Machine(INTEL_E5_2690_3LEVEL, rng=1)
        machine.hierarchy.load(0)
        machine.hierarchy.flush_address(0)
        assert not machine.hierarchy.llc.probe(0)

    def test_l1_channel_unaffected_by_llc_presence(self):
        """The L1 LRU channel must work identically with an LLC below."""
        machine = Machine(INTEL_E5_2690_3LEVEL, rng=42)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=8
        )
        evaluation = evaluate_hyper_threaded(
            machine, channel, ProtocolConfig(ts=6000, tr=600),
            random_message(32, rng=7), repeats=2,
        )
        assert evaluation.error_rate < 0.30

    def test_invisible_speculation_with_llc(self):
        machine = Machine(
            INTEL_E5_2690_3LEVEL, rng=1, invisible_speculation=True
        )
        machine.hierarchy.load(0, speculative=True)
        assert not machine.hierarchy.llc.probe(0)


class TestRandomizedIndexDefense:
    def test_kills_algorithm2(self):
        """CEASER-style index randomization removes the attacker's
        ability to target a set (Section IX-B's randomization family)."""
        config = INTEL_E5_2690.hierarchy
        machine = Machine(
            INTEL_E5_2690, rng=42,
            l1_cache=RandomizedIndexCache(config.l1, rng=9),
        )
        channel = NoSharedMemoryLRUChannel.build(config.l1, 1, d=5)
        evaluation = evaluate_hyper_threaded(
            machine, channel, ProtocolConfig(ts=6000, tr=600),
            random_message(48, rng=7), repeats=2,
        )
        baseline = Machine(INTEL_E5_2690, rng=42)
        base_eval = evaluate_hyper_threaded(
            baseline, NoSharedMemoryLRUChannel.build(config.l1, 1, d=5),
            ProtocolConfig(ts=6000, tr=600),
            random_message(48, rng=7), repeats=2,
        )
        assert evaluation.error_rate > base_eval.error_rate + 0.15

    def test_performance_not_destroyed(self):
        """Randomized indexing keeps hit rates for ordinary locality."""
        from repro.workloads.spec_like import get_profile
        from repro.workloads.trace import replay

        config = INTEL_E5_2690.hierarchy
        plain = CacheHierarchy(config, rng=1)
        randomized = CacheHierarchy(
            config, rng=1, l1_cache=RandomizedIndexCache(config.l1, rng=9)
        )
        trace = list(get_profile("hmmer").generate(4000, rng=1))
        plain_stats = replay(plain, trace, warmup=400)
        rand_stats = replay(randomized, trace, warmup=400)
        assert abs(plain_stats.l1_miss_rate - rand_stats.l1_miss_rate) < 0.05


class TestCLI:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig11" in out

    def test_run_fast_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Latency of cache access" in out

    def test_run_unknown(self, capsys):
        from repro.__main__ import main

        assert main(["run", "table99"]) == 2

    def test_demo(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        assert "channel works" in capsys.readouterr().out
