"""Cross-validation: classic Evict+Time vs the LRU side channel.

Both attacks target the same table-lookup victim; recovering the same
key through two independent mechanisms cross-checks the victim model,
the eviction machinery, and the timing model against each other.
"""

from repro.attacks.evict_time import EvictTimeAttack
from repro.attacks.side_channel import (
    LRUSideChannelAttack,
    TableLookupVictim,
)
from repro.cache.hierarchy import CacheHierarchy
from repro.sim.specs import INTEL_E5_2690

KEY = 29
FIXED_PLAINTEXT = 11
EXPECTED_SET = (FIXED_PLAINTEXT ^ KEY) % 64


class TestEvictTimeOnTableVictim:
    def test_recovers_key_via_slowdown_scan(self):
        """Evict+Time: evicting the set the victim uses slows it down;
        the argmax of the slowdown map reveals (p ^ k)."""
        hierarchy = CacheHierarchy(INTEL_E5_2690.hierarchy, rng=4)
        victim = TableLookupVictim(hierarchy, key=KEY)
        victim.warm_table()

        def victim_fn(h):
            total = 0.0
            for _ in range(4):
                index = (FIXED_PLAINTEXT ^ KEY) % 64
                total += h.load(
                    victim.table_base + index * 64, thread_id=1,
                    address_space=1, count=False,
                ).latency
            return total

        attack = EvictTimeAttack(hierarchy)
        slowdowns = attack.scan_sets(
            victim_fn, sets=list(range(64)), trials=2
        )
        recovered_set = max(slowdowns, key=slowdowns.get)
        assert recovered_set == EXPECTED_SET
        assert (FIXED_PLAINTEXT ^ recovered_set) == KEY

    def test_both_attacks_agree(self):
        """The LRU side channel and Evict+Time recover the same key."""
        # LRU side channel.
        hierarchy = CacheHierarchy(INTEL_E5_2690.hierarchy, rng=4)
        victim = TableLookupVictim(hierarchy, key=KEY)
        lru_attack = LRUSideChannelAttack(hierarchy, target_set=5, rng=11)
        lru_key = lru_attack.recover_key(victim, encryptions=256).recovered_key

        # Evict+Time.
        hierarchy2 = CacheHierarchy(INTEL_E5_2690.hierarchy, rng=4)
        victim2 = TableLookupVictim(hierarchy2, key=KEY)
        victim2.warm_table()

        def victim_fn(h):
            index = (FIXED_PLAINTEXT ^ KEY) % 64
            return h.load(
                victim2.table_base + index * 64, thread_id=1,
                address_space=1, count=False,
            ).latency

        attack = EvictTimeAttack(hierarchy2)
        slowdowns = attack.scan_sets(victim_fn, sets=list(range(64)), trials=2)
        et_key = FIXED_PLAINTEXT ^ max(slowdowns, key=slowdowns.get)

        assert lru_key == et_key == KEY

    def test_lru_channel_needs_fewer_victim_misses(self):
        """The stealth contrast, quantified on the victim side: the
        Evict+Time scan forces far more victim misses than the LRU
        side channel's single-set monitoring."""
        def victim_misses(run_attack):
            hierarchy = CacheHierarchy(INTEL_E5_2690.hierarchy, rng=4)
            victim = TableLookupVictim(hierarchy, key=KEY)
            run_attack(hierarchy, victim)
            return hierarchy.l1.counters.total_misses(1)

        def run_lru(hierarchy, victim):
            attack = LRUSideChannelAttack(hierarchy, target_set=5, rng=11)
            attack.recover_key(victim, encryptions=256)

        def run_evict_time(hierarchy, victim):
            victim.warm_table()
            attack = EvictTimeAttack(hierarchy)

            def victim_fn(h):
                total = 0.0
                for p in range(16):
                    index = (p ^ KEY) % 64
                    total += h.load(
                        victim.table_base + index * 64, thread_id=1,
                        address_space=1,
                    ).latency
                return total

            attack.scan_sets(victim_fn, sets=list(range(64)), trials=2)

        assert victim_misses(run_lru) < victim_misses(run_evict_time)
