"""Tests for the thread-operation primitives."""

import pytest

from repro.common.types import AccessType
from repro.sim.ops import Access, Compute, ReadTSC, READ_TSC_COST, SleepUntil


class TestAccess:
    def test_defaults(self):
        op = Access(address=64)
        assert op.access_type == AccessType.LOAD
        assert op.count
        assert not op.speculative and not op.locked and not op.unlock

    def test_frozen(self):
        op = Access(address=0)
        with pytest.raises(Exception):
            op.address = 1  # type: ignore[misc]

    def test_flags(self):
        op = Access(address=0, locked=True, speculative=True, count=False)
        assert op.locked and op.speculative and not op.count


class TestCompute:
    def test_zero_allowed(self):
        assert Compute(0.0).cycles == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1.0)


class TestTimerOps:
    def test_read_tsc_cost_positive(self):
        assert READ_TSC_COST > 0

    def test_sleep_until_carries_deadline(self):
        assert SleepUntil(cycle=500.0).cycle == 500.0

    def test_read_tsc_is_stateless_marker(self):
        assert ReadTSC() == ReadTSC()
