"""Tests for machine presets and the Machine wrapper."""

import pytest

from repro.sim.machine import Machine
from repro.sim.ops import Access
from repro.sim.specs import (
    ALL_SPECS,
    AMD_EPYC_7571,
    INTEL_E3_1245V5,
    INTEL_E5_2690,
)
from repro.sim.thread import SimThread


class TestSpecs:
    def test_paper_table3_geometry(self):
        """Table III: 32 KiB, 8-way, 64-set L1D on every platform."""
        for spec in ALL_SPECS:
            assert spec.hierarchy.l1.size == 32 * 1024
            assert spec.hierarchy.l1.ways == 8
            assert spec.hierarchy.l1.num_sets == 64

    def test_paper_frequencies(self):
        assert INTEL_E5_2690.frequency_ghz == 3.8
        assert INTEL_E3_1245V5.frequency_ghz == 3.9
        assert AMD_EPYC_7571.frequency_ghz == 2.5

    def test_amd_has_way_predictor(self):
        assert AMD_EPYC_7571.hierarchy.way_predictor
        assert not INTEL_E5_2690.hierarchy.way_predictor

    def test_amd_l2_latency_17(self):
        assert AMD_EPYC_7571.hierarchy.l2.hit_latency == 17.0

    def test_seconds_conversion(self):
        assert INTEL_E5_2690.seconds(3.8e9) == pytest.approx(1.0)

    def test_bits_per_second(self):
        # Ts=6000 at 3.8 GHz: the paper's nominal ~633 Kbps ceiling.
        rate = INTEL_E5_2690.bits_per_second(1, 6000)
        assert rate == pytest.approx(633_333, rel=0.01)

    def test_bits_per_second_validates(self):
        with pytest.raises(ValueError):
            INTEL_E5_2690.bits_per_second(1, 0)


class TestMachine:
    def test_default_spec(self):
        assert Machine().spec is INTEL_E5_2690

    def test_amd_machine_wires_way_predictor(self):
        machine = Machine(AMD_EPYC_7571, rng=1)
        assert machine.l1.way_predictor is not None

    def test_intel_machine_has_no_way_predictor(self):
        machine = Machine(INTEL_E5_2690, rng=1)
        assert machine.l1.way_predictor is None

    def test_hierarchy_latencies_match_spec(self):
        machine = Machine(AMD_EPYC_7571, rng=1)
        machine.hierarchy.load(0)
        assert machine.hierarchy.load(0).latency == 4.0

    def test_scheduler_factories(self):
        machine = Machine(INTEL_E5_2690, rng=1)
        log = []

        def program():
            outcome = yield Access(0)
            log.append(outcome)

        t = SimThread("t", program)
        machine.hyper_threaded([t]).run()
        assert len(log) == 1

    def test_deterministic_from_seed(self):
        a = Machine(INTEL_E5_2690, rng=9)
        b = Machine(INTEL_E5_2690, rng=9)
        assert [a.tsc.measure(10.0) for _ in range(5)] == [
            b.tsc.measure(10.0) for _ in range(5)
        ]

    def test_repr(self):
        assert "E5-2690" in repr(Machine(INTEL_E5_2690))
