"""Tests for the hyper-threaded and time-sliced schedulers."""

import pytest

from repro.cache.config import HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import SimulationError
from repro.sim.ops import Access, Compute, ReadTSC, READ_TSC_COST, SleepUntil
from repro.sim.scheduler import HyperThreadedScheduler, TimeSlicedScheduler
from repro.sim.thread import SimThread


def make_hierarchy():
    return CacheHierarchy(HierarchyConfig(), rng=7)


def accesses_program(addresses, log):
    def program():
        for a in addresses:
            outcome = yield Access(a)
            log.append(outcome)

    return program


class TestSimThread:
    def test_lifecycle(self):
        log = []
        t = SimThread("t", accesses_program([0, 64], log))
        t.start()
        assert t.alive
        op = t.next_operation()
        assert isinstance(op, Access)

    def test_next_before_start_raises(self):
        t = SimThread("t", accesses_program([], []))
        with pytest.raises(SimulationError):
            t.next_operation()

    def test_finishes(self):
        t = SimThread("t", accesses_program([], []))
        t.start()
        assert t.next_operation() is None
        assert not t.alive

    def test_restartable(self):
        log = []
        t = SimThread("t", accesses_program([0], log))
        for _ in range(2):
            t.start()
            while t.alive:
                op = t.next_operation()
                if op is not None:
                    t.deliver(None)
        assert not t.alive


class TestHyperThreadedScheduler:
    def test_runs_single_thread_to_completion(self):
        log = []
        h = make_hierarchy()
        t = SimThread("t", accesses_program([0, 64, 0], log))
        HyperThreadedScheduler(h, [t], rng=1).run()
        assert len(log) == 3
        assert log[2].l1_hit

    def test_interleaves_two_threads(self):
        h = make_hierarchy()
        order = []

        def tagged(tag, n):
            def program():
                for i in range(n):
                    yield Compute(10.0)
                    order.append(tag)

            return program

        a = SimThread("a", tagged("a", 20))
        b = SimThread("b", tagged("b", 20))
        HyperThreadedScheduler(h, [a, b], rng=1).run()
        # Both threads' ops are interleaved, not serialized.
        first_half = order[: len(order) // 2]
        assert "a" in first_half and "b" in first_half

    def test_access_results_delivered(self):
        h = make_hierarchy()
        seen = []

        def program():
            outcome = yield Access(0)
            seen.append(outcome.latency)
            outcome = yield Access(0)
            seen.append(outcome.latency)

        t = SimThread("t", program)
        HyperThreadedScheduler(h, [t], rng=1).run()
        assert seen[0] == h.config.memory_latency
        assert seen[1] == h.config.l1.hit_latency

    def test_read_tsc_returns_time(self):
        h = make_hierarchy()
        stamps = []

        def program():
            t0 = yield ReadTSC()
            yield Compute(100.0)
            t1 = yield ReadTSC()
            stamps.extend([t0, t1])

        t = SimThread("t", program)
        HyperThreadedScheduler(h, [t], rng=1, jitter=0.0).run()
        assert stamps[1] - stamps[0] >= 100.0 + READ_TSC_COST

    def test_sleep_until_advances_clock(self):
        h = make_hierarchy()
        stamps = []

        def program():
            yield SleepUntil(5000.0)
            stamps.append((yield ReadTSC()))

        t = SimThread("t", program)
        HyperThreadedScheduler(h, [t], rng=1, jitter=0.0).run()
        assert stamps[0] >= 5000.0

    def test_until_cycle_stops_early(self):
        h = make_hierarchy()
        count = []

        def program():
            while True:
                yield Compute(100.0)
                count.append(1)

        t = SimThread("t", program)
        HyperThreadedScheduler(h, [t], rng=1).run(until_cycle=1000.0)
        assert 5 <= len(count) <= 11

    def test_empty_thread_list_rejected(self):
        with pytest.raises(SimulationError):
            HyperThreadedScheduler(make_hierarchy(), [], rng=1)

    def test_shared_cache_between_threads(self):
        h = make_hierarchy()
        results = {}

        def loader(name, address, pause):
            def program():
                yield Compute(pause)
                outcome = yield Access(address)
                results[name] = outcome

            return program

        a = SimThread("a", loader("a", 0, 0.0), thread_id=0)
        b = SimThread("b", loader("b", 0, 500.0), thread_id=1)
        HyperThreadedScheduler(h, [a, b], rng=1, jitter=0.0).run()
        # Thread b arrives after a's fill: it must hit.
        assert results["b"].l1_hit


class TestTimeSlicedScheduler:
    def test_alternates_threads_by_quantum(self):
        h = make_hierarchy()
        order = []

        def tagged(tag):
            def program():
                for _ in range(40):
                    yield Compute(100.0)
                    order.append(tag)

            return program

        a = SimThread("a", tagged("a"))
        b = SimThread("b", tagged("b"))
        TimeSlicedScheduler(
            h, [a, b], quantum=1000.0, switch_cost=0.0,
            quantum_jitter_frac=0.0, rng=1,
        ).run(until_cycle=20000.0)
        # Slices of ~10 ops each must alternate in blocks.
        runs = []
        for tag in order:
            if runs and runs[-1][0] == tag:
                runs[-1][1] += 1
            else:
                runs.append([tag, 1])
        assert len(runs) >= 4
        assert max(r[1] for r in runs) <= 12

    def test_quantum_validation(self):
        with pytest.raises(SimulationError):
            TimeSlicedScheduler(make_hierarchy(), [], quantum=0)

    def test_deadline_respected(self):
        h = make_hierarchy()

        def forever():
            def program():
                while True:
                    yield Compute(10.0)

            return program

        a = SimThread("a", forever())
        end = TimeSlicedScheduler(h, [a], quantum=1000.0, rng=1).run(
            until_cycle=5000.0
        )
        assert end >= 5000.0
        assert a.alive  # did not finish, just stopped being scheduled

    def test_finished_threads_release_slices(self):
        h = make_hierarchy()
        done = []

        def short():
            yield Compute(10.0)
            done.append("short")

        def long():
            for _ in range(50):
                yield Compute(100.0)
            done.append("long")

        a = SimThread("a", lambda: short())
        b = SimThread("b", lambda: long())
        TimeSlicedScheduler(h, [a, b], quantum=1000.0, rng=1).run(
            until_cycle=50000.0
        )
        assert done == ["short", "long"]

    def test_sleeping_thread_skips_slices(self):
        h = make_hierarchy()
        wake_times = []

        def sleeper():
            yield SleepUntil(10_000.0)
            wake_times.append((yield ReadTSC()))

        def worker():
            for _ in range(100):
                yield Compute(100.0)

        a = SimThread("a", lambda: sleeper())
        b = SimThread("b", lambda: worker())
        TimeSlicedScheduler(
            h, [a, b], quantum=1000.0, switch_cost=0.0, rng=1
        ).run(until_cycle=40000.0)
        assert wake_times and wake_times[0] >= 10_000.0
