"""Tests for the access tracer."""

import pytest

from repro.cache.config import HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.common.types import CacheLevel
from repro.sim.tracing import AccessTracer


@pytest.fixture
def traced():
    hierarchy = CacheHierarchy(HierarchyConfig(), rng=1)
    tracer = AccessTracer.attach(hierarchy)
    yield hierarchy, tracer
    tracer.detach()


class TestAccessTracer:
    def test_records_events_in_order(self, traced):
        hierarchy, tracer = traced
        hierarchy.load(0, thread_id=0)
        hierarchy.load(64, thread_id=1)
        assert [e.thread_id for e in tracer.events] == [0, 1]
        assert [e.sequence for e in tracer.events] == [0, 1]

    def test_event_fields(self, traced):
        hierarchy, tracer = traced
        hierarchy.load(5 * 64, thread_id=2)
        event = tracer.events[0]
        assert event.address == 5 * 64
        assert event.set_index == 5
        assert event.hit_level == CacheLevel.MEMORY
        assert event.latency == 200.0

    def test_for_set_filters(self, traced):
        hierarchy, tracer = traced
        hierarchy.load(0)
        hierarchy.load(64)
        hierarchy.load(0)
        assert len(tracer.for_set(0)) == 2
        assert len(tracer.for_set(1)) == 1

    def test_for_thread_filters(self, traced):
        hierarchy, tracer = traced
        hierarchy.load(0, thread_id=0)
        hierarchy.load(0, thread_id=1)
        assert len(tracer.for_thread(1)) == 1

    def test_interleavings(self, traced):
        hierarchy, tracer = traced
        for thread in (0, 0, 1, 0):
            hierarchy.load(0, thread_id=thread)
        assert tracer.interleavings(0) == [(0, 1), (1, 0)]

    def test_miss_events(self, traced):
        hierarchy, tracer = traced
        hierarchy.load(0)   # memory miss
        hierarchy.load(0)   # L1 hit
        assert len(tracer.miss_events()) == 1

    def test_render(self, traced):
        hierarchy, tracer = traced
        hierarchy.load(0, thread_id=0)
        hierarchy.load(0, thread_id=1)
        assert tracer.render(0) == "t0M t1H"

    def test_detach_restores(self, traced):
        hierarchy, tracer = traced
        hierarchy.load(0)
        tracer.detach()
        hierarchy.load(64)
        assert len(tracer.events) == 1  # second load untraced

    def test_outcomes_unchanged_by_tracing(self):
        plain = CacheHierarchy(HierarchyConfig(), rng=1)
        traced_h = CacheHierarchy(HierarchyConfig(), rng=1)
        AccessTracer.attach(traced_h)
        for address in (0, 64, 0, 128, 64):
            a = plain.load(address)
            b = traced_h.load(address)
            assert (a.hit_level, a.latency) == (b.hit_level, b.latency)

    def test_channel_interleaving_diagnosis(self):
        """The tracer's purpose: counting sender/receiver transitions
        in the target set during a real channel run."""
        from repro.channels.algorithm1 import SharedMemoryLRUChannel
        from repro.channels.protocol import (
            CovertChannelProtocol,
            ProtocolConfig,
        )
        from repro.sim.machine import Machine
        from repro.sim.specs import INTEL_E5_2690

        machine = Machine(INTEL_E5_2690, rng=42)
        tracer = AccessTracer.attach(machine.hierarchy)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=8
        )
        protocol = CovertChannelProtocol(
            machine, channel, ProtocolConfig(ts=6000, tr=600)
        )
        protocol.run_hyper_threaded([1] * 4)
        tracer.detach()
        transitions = tracer.interleavings(1)
        # A working channel needs sender<->receiver transitions in the
        # target set — several per transmitted bit.
        assert len(transitions) >= 8
