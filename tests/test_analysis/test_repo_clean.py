"""The lint pass as a pytest hook: the merged tree must stay clean.

This is the in-suite twin of the CI job that runs
``python -m repro.analysis lint src/repro`` — a regression anywhere in
the package (a stray ``import random``, an unregistered policy, an
undeclared fault model) fails the test suite with file:line findings.
"""

import os

from repro.analysis import assert_clean

_REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    "src",
    "repro",
)


def test_repro_package_is_lint_clean():
    assert os.path.isdir(_REPO_SRC), _REPO_SRC
    assert_clean([_REPO_SRC])
