"""Property-style tests: the sanitizer is silent and transparent on
healthy policies.

Every registered replacement policy is driven through randomized,
seeded access sequences twice — bare and wrapped in
:class:`SanitizingPolicy` — and must (a) raise no
``InvariantViolation`` and (b) make bit-identical decisions, because
the proxy holds no randomness and changes no behaviour.
"""

import pytest

from repro.analysis.proxies import SanitizingPolicy, checker_for
from repro.common.rng import make_rng
from repro.replacement import POLICY_REGISTRY, make_policy
from repro.sim import INTEL_E5_2690, Machine

WAYS = 8
SEQUENCE_LENGTH = 400
SEEDS = [11, 42, 977]


def _build(name, seed):
    if name == "random":
        return make_policy(name, WAYS, rng=seed)
    if name == "partitioned-plru":
        return make_policy(name, WAYS, domain_ways={0: 4, 1: 4})
    return make_policy(name, WAYS)


def _drive(policy, seed):
    """One seeded op sequence; returns the decision/state transcript."""
    rng = make_rng(seed)
    transcript = []
    for _ in range(SEQUENCE_LENGTH):
        op = rng.choice(["touch", "victim", "victim_masked", "fill", "inv"])
        if op == "touch":
            policy.touch(rng.randrange(WAYS))
        elif op == "victim":
            transcript.append(policy.victim())
        elif op == "victim_masked":
            valid = [rng.random() < 0.8 for _ in range(WAYS)]
            if hasattr(policy, "victim_for"):
                transcript.append(policy.victim_for(rng.choice([0, 1]), valid))
            else:
                transcript.append(policy.victim(valid))
        elif op == "fill":
            on_fill = getattr(policy, "on_fill", None)
            way = rng.randrange(WAYS)
            if on_fill is not None:
                on_fill(way)
            else:
                policy.touch(way)
        else:
            policy.invalidate(rng.randrange(WAYS))
        transcript.append(policy.state_snapshot())
    return transcript


@pytest.mark.parametrize("name", sorted(POLICY_REGISTRY))
@pytest.mark.parametrize("seed", SEEDS)
def test_sanitized_policy_is_silent_and_bit_identical(name, seed):
    bare = _build(name, seed)
    wrapped = SanitizingPolicy(_build(name, seed))
    assert _drive(wrapped, seed) == _drive(bare, seed)


@pytest.mark.parametrize("name", sorted(POLICY_REGISTRY))
def test_snapshot_restore_round_trip_under_proxy(name):
    policy = SanitizingPolicy(_build(name, 3))
    _drive(policy, 3)
    snapshot = policy.state_snapshot()
    fresh = SanitizingPolicy(_build(name, 3))
    fresh.state_restore(snapshot)
    assert fresh.state_snapshot() == snapshot


@pytest.mark.parametrize("name", sorted(POLICY_REGISTRY))
def test_every_registered_policy_has_a_checker(name):
    # A policy without a structural checker silently opts out of the
    # sanitizer; adding one to the registry must come with a checker.
    assert checker_for(_build(name, 1)) is not None


def test_proxies_do_not_stack():
    inner = make_policy("lru", WAYS)
    once = SanitizingPolicy(inner)
    twice = SanitizingPolicy(once)
    assert twice.inner is inner


def test_state_bits_passthrough():
    inner = make_policy("tree-plru", WAYS)
    assert SanitizingPolicy(inner).state_bits == inner.state_bits


class TestSanitizedMachine:
    def test_machine_option_installs_proxies_everywhere(self):
        machine = Machine(INTEL_E5_2690, rng=5, sanitize=True)
        for cache in (machine.l1, machine.l2):
            assert all(
                isinstance(s.policy, SanitizingPolicy) for s in cache.sets
            )
        assert machine.sanitize_trace is not None

    def test_default_machine_stays_unsanitized(self):
        machine = Machine(INTEL_E5_2690, rng=5)
        assert not any(
            isinstance(s.policy, SanitizingPolicy) for s in machine.l1.sets
        )

    def test_sanitize_machine_is_idempotent(self):
        machine = Machine(INTEL_E5_2690, rng=5, sanitize=True)
        from repro.analysis.sanitize import sanitize_machine

        trace = machine.sanitize_trace
        sanitize_machine(machine)
        assert machine.sanitize_trace is trace

    def test_end_to_end_covert_channel_run_stays_silent(self):
        from repro.channels import (
            CovertChannelProtocol,
            ProtocolConfig,
            SharedMemoryLRUChannel,
            runlength_decode,
            sample_bits,
        )

        machine = Machine(INTEL_E5_2690, rng=2024, sanitize=True)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, target_set=1, d=8
        )
        protocol = CovertChannelProtocol(
            machine, channel, ProtocolConfig(ts=6000, tr=600)
        )
        message = [1, 0, 1, 1]
        run = protocol.run_hyper_threaded(message)
        decoded = runlength_decode(sample_bits(run), 10)[: len(message)]
        assert decoded == message
        assert len(machine.sanitize_trace) > 0

    def test_sanitized_run_is_bit_identical(self):
        from repro.channels import (
            CovertChannelProtocol,
            ProtocolConfig,
            SharedMemoryLRUChannel,
            sample_bits,
        )

        def transfer(sanitize):
            machine = Machine(INTEL_E5_2690, rng=99, sanitize=sanitize)
            channel = SharedMemoryLRUChannel.build(
                machine.spec.hierarchy.l1, target_set=2, d=8
            )
            protocol = CovertChannelProtocol(
                machine, channel, ProtocolConfig(ts=4000, tr=500)
            )
            return sample_bits(protocol.run_hyper_threaded([1, 0, 1]))

        assert transfer(True) == transfer(False)
