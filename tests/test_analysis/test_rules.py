"""Per-rule tests: each rule fires on synthetic bad sources and stays
quiet on the idiomatic equivalents."""

from repro.analysis import lint_sources
from repro.analysis.rules import (
    FAULT_INJECTION_POINTS,
    POLICY_CONTRACT,
    RULE_REGISTRY,
)


def _rule_hits(source, path="src/repro/example.py", rules=None):
    return [
        (f.rule_id, f.line) for f in lint_sources([(path, source)], rules)
    ]


class TestNoDirectRandom:
    def test_flags_import_and_from_import(self):
        source = "import random\nfrom random import choice\n"
        assert _rule_hits(source, rules=["no-direct-random"]) == [
            ("no-direct-random", 1),
            ("no-direct-random", 2),
        ]

    def test_rng_module_itself_is_exempt(self):
        source = "import random\n"
        path = "src/repro/common/rng.py"
        assert _rule_hits(source, path, rules=["no-direct-random"]) == []

    def test_numpy_random_attribute_is_fine(self):
        source = "import numpy as np\nx = np.random\n"
        assert _rule_hits(source, rules=["no-direct-random"]) == []


class TestNoWallclock:
    def test_flags_time_time_and_datetime_now(self):
        source = (
            "import time, datetime\n"
            "a = time.time()\n"
            "b = datetime.datetime.now()\n"
            "c = datetime.datetime.utcnow()\n"
        )
        hits = _rule_hits(source, rules=["no-wallclock"])
        assert [line for _, line in hits] == [2, 3, 4]

    def test_monotonic_is_allowed(self):
        source = "import time\nstart = time.monotonic()\n"
        assert _rule_hits(source, rules=["no-wallclock"]) == []


class TestNoCycleArithmetic:
    def test_flags_ready_at_writes_outside_sim(self):
        source = "def f(thread):\n    thread.ready_at += 100\n"
        assert _rule_hits(source, rules=["no-cycle-arithmetic"]) == [
            ("no-cycle-arithmetic", 2)
        ]

    def test_scheduler_layer_is_exempt(self):
        source = "def f(thread):\n    thread.ready_at = 0\n"
        path = "src/repro/sim/scheduler.py"
        assert _rule_hits(source, path, rules=["no-cycle-arithmetic"]) == []

    def test_reads_are_fine(self):
        source = "def f(thread):\n    return thread.ready_at\n"
        assert _rule_hits(source, rules=["no-cycle-arithmetic"]) == []

    def test_fastpath_engine_is_not_exempt(self):
        # The fast engine lives under repro.sim but is cache machinery,
        # not a scheduler: the blanket repro.sim exemption must not
        # extend to it.
        source = "def f(thread):\n    thread.ready_at = 0\n"
        path = "src/repro/sim/fastpath.py"
        assert _rule_hits(source, path, rules=["no-cycle-arithmetic"]) == [
            ("no-cycle-arithmetic", 2)
        ]


class TestPolicyContract:
    def test_flags_partial_policy(self):
        source = (
            "class HalfPolicy(ReplacementPolicy):\n"
            "    def touch(self, way):\n"
            "        pass\n"
        )
        hits = lint_sources(
            [("src/repro/replacement/half.py", source)], ["policy-contract"]
        )
        assert len(hits) == 1
        for member in POLICY_CONTRACT:
            if member != "touch":
                assert member in hits[0].message

    def test_full_contract_passes(self):
        body = "\n".join(
            f"    def {name}(self):\n        pass" for name in POLICY_CONTRACT
        )
        source = f"class FullPolicy(ReplacementPolicy):\n{body}\n"
        assert (
            lint_sources(
                [("src/repro/replacement/full.py", source)],
                ["policy-contract"],
            )
            == []
        )

    def test_unrelated_class_ignored(self):
        source = "class Helper:\n    pass\n"
        assert _rule_hits(source, rules=["policy-contract"]) == []


class TestExperimentRegistered:
    def test_flags_unregistered_run_function(self):
        source = "def run_table9(trials=100):\n    pass\n"
        path = "src/repro/experiments/table9.py"
        assert _rule_hits(source, path, rules=["experiment-registered"]) == [
            ("experiment-registered", 1)
        ]

    def test_registered_run_function_passes(self):
        source = (
            "from repro.experiments.base import register\n"
            '@register("table9")\n'
            "def run_table9(trials=100):\n"
            "    pass\n"
        )
        path = "src/repro/experiments/table9.py"
        assert _rule_hits(source, path, rules=["experiment-registered"]) == []

    def test_helpers_and_other_packages_ignored(self):
        helper = "def run_sweep_inner():\n    pass\n"
        assert (
            _rule_hits(
                helper,
                "src/repro/channels/probe.py",
                rules=["experiment-registered"],
            )
            == []
        )


class TestFaultDeclaresInjection:
    def test_flags_undeclared_fault_model(self):
        source = "class QuietFault(FaultModel):\n    name = 'quiet'\n"
        hits = lint_sources(
            [("src/repro/faults/quiet.py", source)],
            ["fault-declares-injection"],
        )
        assert len(hits) == 1
        for point in sorted(FAULT_INJECTION_POINTS):
            assert point in hits[0].hint

    def test_declared_fault_model_passes(self):
        source = (
            "class LoudFault(PoissonFault):\n"
            "    name = 'loud'\n"
            "    injection_points = ('time-advance',)\n"
        )
        assert (
            lint_sources(
                [("src/repro/faults/loud.py", source)],
                ["fault-declares-injection"],
            )
            == []
        )


# A minimal registry module, mirroring repro/replacement/__init__.py.
_REGISTRY_SOURCE = (
    "POLICY_REGISTRY = {\n"
    '    "lru": TrueLRU,\n'
    "}\n"
)


class TestPolicyRegistered:
    def test_flags_policy_missing_from_registry(self):
        orphan = (
            "class OrphanPolicy(ReplacementPolicy):\n"
            "    pass\n"
        )
        hits = lint_sources(
            [
                ("src/repro/replacement/__init__.py", _REGISTRY_SOURCE),
                ("src/repro/replacement/orphan.py", orphan),
            ],
            ["policy-registered"],
        )
        assert [(f.rule_id, f.path) for f in hits] == [
            ("policy-registered", "src/repro/replacement/orphan.py")
        ]

    def test_transitive_subclasses_are_checked(self):
        tree = (
            "class TrueLRU(ReplacementPolicy):\n"
            "    pass\n"
            "class SegmentedLRU(TrueLRU):\n"
            "    pass\n"
        )
        hits = lint_sources(
            [
                ("src/repro/replacement/__init__.py", _REGISTRY_SOURCE),
                ("src/repro/replacement/tree.py", tree),
            ],
            ["policy-registered"],
        )
        # TrueLRU is registered; its subclass SegmentedLRU is not.
        assert [f.message for f in hits] == [
            "policy SegmentedLRU is not in POLICY_REGISTRY"
        ]

    def test_private_policies_exempt(self):
        source = "class _ProxyPolicy(ReplacementPolicy):\n    pass\n"
        hits = lint_sources(
            [
                ("src/repro/replacement/__init__.py", _REGISTRY_SOURCE),
                ("src/repro/replacement/private.py", source),
            ],
            ["policy-registered"],
        )
        assert hits == []

    def test_annotated_registry_assignment_is_recognized(self):
        # The real registry module uses an annotated assignment
        # (`POLICY_REGISTRY: Dict[...] = {...}`); the rule must parse
        # that form too, not just a bare Assign.
        annotated = (
            "POLICY_REGISTRY: Dict[str, Callable] = {\n"
            '    "lru": TrueLRU,\n'
            "}\n"
        )
        orphan = "class OrphanPolicy(ReplacementPolicy):\n    pass\n"
        hits = lint_sources(
            [
                ("src/repro/replacement/__init__.py", annotated),
                ("src/repro/replacement/orphan.py", orphan),
            ],
            ["policy-registered"],
        )
        assert [f.rule_id for f in hits] == ["policy-registered"]

    def test_no_registry_in_scope_is_silent(self):
        # Single-file lint without the registry module: cannot
        # cross-check, must not false-positive.
        source = "class LonePolicy(ReplacementPolicy):\n    pass\n"
        hits = lint_sources(
            [("src/repro/replacement/lone.py", source)],
            ["policy-registered"],
        )
        assert hits == []


class TestMetricRegistered:
    def test_flags_undeclared_metric_literal(self):
        source = (
            "def build(session):\n"
            "    session.metrics.counter('cache.l1.hitz')\n"
            "    session.metrics.gauge('channel.thresholdd')\n"
            "    session.metrics.histogram('access.latencies')\n"
        )
        hits = _rule_hits(source, rules=["metric-registered"])
        assert hits == [
            ("metric-registered", 2),
            ("metric-registered", 3),
            ("metric-registered", 4),
        ]

    def test_declared_metrics_pass(self):
        source = (
            "def build(session):\n"
            "    session.metrics.counter('cache.l1.hits')\n"
            "    session.metrics.counter('cache.fills', label='L1D')\n"
            "    session.metrics.gauge('channel.threshold')\n"
            "    session.metrics.histogram('access.latency')\n"
        )
        assert _rule_hits(source, rules=["metric-registered"]) == []

    def test_dynamic_names_and_catalog_module_exempt(self):
        # Non-literal names cannot be checked statically (the runtime
        # registry still validates them); the catalogue module is the
        # declaration site.
        dynamic = "def f(r, name):\n    r.counter(name)\n"
        assert _rule_hits(dynamic, rules=["metric-registered"]) == []
        bogus = "REG.counter('not.a.metric')\n"
        assert (
            _rule_hits(
                bogus,
                path="src/repro/obs/catalog.py",
                rules=["metric-registered"],
            )
            == []
        )

    def test_allow_comment_suppresses(self):
        source = (
            "r.counter('made.up')  # repro: allow(metric-registered)\n"
        )
        assert _rule_hits(source, rules=["metric-registered"]) == []


class TestNoBarePool:
    def test_flags_pool_import_and_construction(self):
        source = (
            "from multiprocessing import Pool\n"
            "import multiprocessing\n"
            "with Pool(4) as pool:\n"
            "    pass\n"
            "other = multiprocessing.Pool(2)\n"
        )
        hits = _rule_hits(source, rules=["no-bare-pool"])
        assert [line for _, line in hits] == [1, 3, 5]
        assert all(rule_id == "no-bare-pool" for rule_id, _ in hits)

    def test_flags_aliased_import(self):
        source = (
            "from multiprocessing.pool import Pool as ProcPool\n"
            "p = ProcPool(2)\n"
        )
        hits = _rule_hits(source, rules=["no-bare-pool"])
        assert [line for _, line in hits] == [1, 2]

    def test_supervisor_module_is_exempt(self):
        source = (
            "from multiprocessing import Pool\n"
            "pool = Pool(4)\n"
        )
        path = "src/repro/experiments/supervisor.py"
        assert _rule_hits(source, path, rules=["no-bare-pool"]) == []

    def test_other_multiprocessing_use_is_fine(self):
        source = (
            "import multiprocessing\n"
            "q = multiprocessing.Queue()\n"
            "p = multiprocessing.Process(target=print)\n"
        )
        assert _rule_hits(source, rules=["no-bare-pool"]) == []

    def test_allow_comment_suppresses(self):
        source = (
            "import multiprocessing\n"
            "p = multiprocessing.Pool(2)  # repro: allow(no-bare-pool)\n"
        )
        assert _rule_hits(source, rules=["no-bare-pool"]) == []


class TestNoUnboundedQueue:
    def test_flags_bare_asyncio_and_queue_constructors(self):
        source = (
            "import asyncio\n"
            "import queue\n"
            "a = asyncio.Queue()\n"
            "b = queue.Queue()\n"
            "c = queue.LifoQueue()\n"
            "d = queue.PriorityQueue()\n"
        )
        hits = _rule_hits(source, rules=["no-unbounded-queue"])
        assert [line for _, line in hits] == [3, 4, 5, 6]
        assert all(rule_id == "no-unbounded-queue" for rule_id, _ in hits)

    def test_bounded_constructions_pass(self):
        source = (
            "import asyncio\n"
            "import queue\n"
            "a = asyncio.Queue(maxsize=8)\n"
            "b = queue.Queue(16)\n"
            "c = asyncio.Queue(maxsize=depth)\n"
        )
        assert _rule_hits(source, rules=["no-unbounded-queue"]) == []

    def test_flags_aliased_from_import(self):
        source = (
            "from asyncio import Queue\n"
            "from queue import Queue as ThreadQueue\n"
            "a = Queue()\n"
            "b = ThreadQueue()\n"
            "c = Queue(maxsize=4)\n"
        )
        hits = _rule_hits(source, rules=["no-unbounded-queue"])
        assert [line for _, line in hits] == [3, 4]

    def test_multiprocessing_queue_is_exempt(self):
        # The supervised executor owns and drains these; bounding them
        # would deadlock its result plumbing.
        source = (
            "import multiprocessing\n"
            "q = multiprocessing.Queue()\n"
            "from multiprocessing import Queue\n"
            "r = Queue()\n"
        )
        assert _rule_hits(source, rules=["no-unbounded-queue"]) == []

    def test_allow_comment_suppresses(self):
        source = (
            "import asyncio\n"
            "q = asyncio.Queue()  # repro: allow(no-unbounded-queue)\n"
        )
        assert _rule_hits(source, rules=["no-unbounded-queue"]) == []


class TestNoBlockingCallInAsync:
    SERVICE_PATH = "src/repro/service/example.py"

    def test_flags_blocking_calls_in_async_def(self):
        source = (
            "import time\n"
            "import socket\n"
            "async def handle(reader, writer):\n"
            "    time.sleep(0.1)\n"
            "    data = open('x').read()\n"
            "    sock = socket.create_connection(('h', 1))\n"
        )
        hits = _rule_hits(
            source, self.SERVICE_PATH, rules=["no-blocking-call-in-async"]
        )
        assert [line for _, line in hits] == [4, 5, 6]
        assert all(
            rule_id == "no-blocking-call-in-async" for rule_id, _ in hits
        )

    def test_flags_subprocess_calls_and_aliases(self):
        source = (
            "import subprocess\n"
            "from subprocess import run as sh\n"
            "async def spawn():\n"
            "    subprocess.check_output(['ls'])\n"
            "    sh(['ls'])\n"
        )
        hits = _rule_hits(
            source, self.SERVICE_PATH, rules=["no-blocking-call-in-async"]
        )
        assert [line for _, line in hits] == [4, 5]

    def test_nested_sync_def_is_exempt(self):
        # A sync helper defined inside an async def runs wherever the
        # caller puts it (typically an executor thread): not flagged.
        source = (
            "import time\n"
            "async def handle():\n"
            "    def blocking_work():\n"
            "        time.sleep(1.0)\n"
            "        return open('x').read()\n"
            "    return blocking_work\n"
        )
        assert (
            _rule_hits(
                source,
                self.SERVICE_PATH,
                rules=["no-blocking-call-in-async"],
            )
            == []
        )

    def test_sync_code_and_other_packages_are_exempt(self):
        blocking = (
            "import time\n"
            "def handle():\n"
            "    time.sleep(0.1)\n"
            "    return open('x').read()\n"
        )
        # Sync function in scope: fine.
        assert (
            _rule_hits(
                blocking,
                self.SERVICE_PATH,
                rules=["no-blocking-call-in-async"],
            )
            == []
        )
        # Async function outside repro.service: out of scope.
        async_elsewhere = (
            "import time\n"
            "async def handle():\n"
            "    time.sleep(0.1)\n"
        )
        assert (
            _rule_hits(
                async_elsewhere,
                "src/repro/experiments/runner.py",
                rules=["no-blocking-call-in-async"],
            )
            == []
        )

    def test_async_socket_wrappers_are_fine(self):
        source = (
            "import asyncio\n"
            "async def handle():\n"
            "    await asyncio.sleep(0.1)\n"
            "    r, w = await asyncio.open_connection('h', 1)\n"
        )
        assert (
            _rule_hits(
                source,
                self.SERVICE_PATH,
                rules=["no-blocking-call-in-async"],
            )
            == []
        )

    def test_allow_comment_suppresses(self):
        source = (
            "import time\n"
            "async def handle():\n"
            "    time.sleep(0.1)"
            "  # repro: allow(no-blocking-call-in-async)\n"
        )
        assert (
            _rule_hits(
                source,
                self.SERVICE_PATH,
                rules=["no-blocking-call-in-async"],
            )
            == []
        )


class TestRegistry:
    def test_every_advertised_rule_is_registered(self):
        expected = {
            "no-direct-random",
            "no-wallclock",
            "no-cycle-arithmetic",
            "policy-contract",
            "policy-registered",
            "experiment-registered",
            "fault-declares-injection",
            "no-bare-pool",
            "metric-registered",
            "no-unbounded-queue",
            "no-blocking-call-in-async",
        }
        assert expected <= set(RULE_REGISTRY)

    def test_rules_have_descriptions_and_scopes(self):
        for rule in RULE_REGISTRY.values():
            assert rule.description
            assert rule.scope in ("file", "project")
