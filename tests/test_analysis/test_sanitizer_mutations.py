"""Mutation tests: deliberately corrupt simulator state and assert the
sanitizer fires, with the right invariant id, set, and way."""

from types import SimpleNamespace

import pytest

from repro.analysis.proxies import SanitizingPolicy, sanitize_cache_set
from repro.analysis.sanitize import (
    enable_sanitize,
    sanitize_enabled,
    sanitize_scheduler,
    scoped_sanitize,
)
from repro.cache.cache_set import CacheSet
from repro.common.errors import InvariantViolation
from repro.replacement import make_policy

WAYS = 8


def _wrapped(name, **kwargs):
    return SanitizingPolicy(
        make_policy(name, WAYS, **kwargs), set_index=3, label="L1D"
    )


class TestPolicyMutations:
    def test_true_lru_duplicate_age_fires(self):
        policy = _wrapped("lru")
        policy.inner._stack[0] = policy.inner._stack[1]
        with pytest.raises(InvariantViolation) as excinfo:
            policy.victim()
        violation = excinfo.value
        assert violation.invariant == "true-lru-permutation"
        assert violation.set_index == 3
        assert "L1D[set 3]" in str(violation)

    def test_tree_plru_non_bit_node_fires(self):
        policy = _wrapped("tree-plru")
        # Node 5 is not on the touch(0) update path (leaf 8 -> 4, 2, 1),
        # so the corruption survives the touch and the check sees it.
        policy.inner._bits[5] = 7
        with pytest.raises(InvariantViolation) as excinfo:
            policy.touch(0)
        assert excinfo.value.invariant == "tree-plru-bits"
        assert "node 5" in str(excinfo.value)

    def test_bit_plru_non_bit_fires_with_way(self):
        policy = _wrapped("bit-plru")
        policy.inner._mru[2] = 5
        with pytest.raises(InvariantViolation) as excinfo:
            policy.victim()
        assert excinfo.value.invariant == "bit-plru-bits"
        assert excinfo.value.way == 2

    def test_bit_plru_lost_saturation_reset_fires(self):
        policy = _wrapped("bit-plru")
        policy.inner._mru = [1] * (WAYS - 1) + [0]
        # A buggy touch that drops the hardware saturation reset.
        policy.inner.touch = lambda way: policy.inner._mru.__setitem__(way, 1)
        with pytest.raises(InvariantViolation) as excinfo:
            policy.touch(WAYS - 1)
        assert excinfo.value.invariant == "bit-plru-saturation"

    def test_srrip_out_of_range_rrpv_fires(self):
        policy = _wrapped("srrip")
        policy.inner._rrpv[1] = 99
        with pytest.raises(InvariantViolation) as excinfo:
            policy.touch(0)
        assert excinfo.value.invariant == "srrip-rrpv-range"
        assert excinfo.value.way == 1

    def test_fifo_pointer_out_of_range_fires(self):
        policy = _wrapped("fifo")
        policy.inner._next_victim = WAYS + 4
        with pytest.raises(InvariantViolation) as excinfo:
            policy.touch(0)
        assert excinfo.value.invariant == "fifo-pointer-range"

    def test_victim_out_of_range_fires(self):
        policy = _wrapped("lru")
        policy.inner.victim = lambda valid=None: WAYS + 1
        with pytest.raises(InvariantViolation) as excinfo:
            policy.victim()
        assert excinfo.value.invariant == "victim-range"

    def test_victim_skipping_invalid_way_fires(self):
        policy = _wrapped("lru")
        policy.inner.victim = lambda valid=None: 3
        valid = [True, False, True, True, True, True, True, True]
        with pytest.raises(InvariantViolation) as excinfo:
            policy.victim(valid)
        violation = excinfo.value
        assert violation.invariant == "invalid-way-first"
        assert violation.way == 3
        assert "way 1 is invalid" in str(violation)

    def test_partitioned_domain_tree_corruption_fires(self):
        policy = _wrapped("partitioned-plru", domain_ways={0: 4, 1: 4})
        policy.inner._trees[1]._bits[3] = 9
        with pytest.raises(InvariantViolation) as excinfo:
            policy.touch(0)  # touches domain 0; domain 1 stays corrupt
        assert excinfo.value.invariant == "tree-plru-bits"
        assert "domain 1" in str(excinfo.value)

    def test_violation_carries_access_trace_tail(self):
        policy = _wrapped("lru")
        for way in range(WAYS):
            policy.touch(way)
        policy.inner._stack[0] = policy.inner._stack[1]
        with pytest.raises(InvariantViolation) as excinfo:
            policy.victim()
        violation = excinfo.value
        assert len(violation.trace) > 0
        assert any("touch(way=7)" in event for event in violation.trace)
        assert "trace tail" in str(violation)


class TestCacheSetMutations:
    def _sanitized_set(self):
        cache_set = CacheSet(4, make_policy("tree-plru", 4))
        return sanitize_cache_set(cache_set, set_index=5, label="L1D")

    def test_locked_line_eviction_fires(self):
        cache_set = self._sanitized_set()
        cache_set.install(0, 0x10, 0x1000)
        cache_set.lines[0].locked = True
        with pytest.raises(InvariantViolation) as excinfo:
            cache_set.install(0, 0x20, 0x2000)
        violation = excinfo.value
        assert violation.invariant == "pl-lock-eviction"
        assert violation.set_index == 5
        assert violation.way == 0

    def test_duplicate_resident_tag_fires(self):
        cache_set = self._sanitized_set()
        cache_set.install(0, 0x10, 0x1000)
        with pytest.raises(InvariantViolation) as excinfo:
            cache_set.install(1, 0x10, 0x1000)
        assert excinfo.value.invariant == "duplicate-tag"

    def test_healthy_install_evict_cycle_is_silent(self):
        cache_set = self._sanitized_set()
        for n in range(12):
            way = cache_set.choose_victim()
            cache_set.install(way, 0x100 + n, 0x10000 + n * 64)
            cache_set.touch(way, is_fill=True)

    def test_sanitize_cache_set_is_idempotent(self):
        cache_set = self._sanitized_set()
        policy = cache_set.policy
        sanitize_cache_set(cache_set, set_index=5, label="L1D")
        assert cache_set.policy is policy


class TestSchedulerMutations:
    def _fake_scheduler(self, cost):
        return SimpleNamespace(
            _execute=lambda thread, op, now: cost,
            run=lambda *args, **kwargs: None,
        )

    def test_negative_cycle_charge_fires(self):
        scheduler = sanitize_scheduler(self._fake_scheduler(-5.0))
        thread = SimpleNamespace(name="sender")
        with pytest.raises(InvariantViolation) as excinfo:
            scheduler._execute(thread, "load", 100.0)
        assert excinfo.value.invariant == "negative-cycle-charge"

    def test_backwards_cycle_charge_fires(self):
        scheduler = sanitize_scheduler(self._fake_scheduler(1.0))
        thread = SimpleNamespace(name="sender")
        scheduler._execute(thread, "load", 100.0)
        with pytest.raises(InvariantViolation) as excinfo:
            scheduler._execute(thread, "load", 50.0)
        assert excinfo.value.invariant == "cycle-monotonicity"

    def test_monotonicity_resets_between_runs(self):
        scheduler = sanitize_scheduler(self._fake_scheduler(1.0))
        thread = SimpleNamespace(name="sender")
        scheduler._execute(thread, "load", 100.0)
        scheduler.run()  # threads restart at cycle 0 for the next run
        scheduler._execute(thread, "load", 0.0)


class TestSanitizeFlag:
    def test_scoped_sanitize_restores_previous_state(self):
        assert not sanitize_enabled()
        with scoped_sanitize():
            assert sanitize_enabled()
        assert not sanitize_enabled()

    def test_enable_disable_round_trip(self):
        enable_sanitize()
        try:
            assert sanitize_enabled()
        finally:
            enable_sanitize(False)
        assert not sanitize_enabled()
