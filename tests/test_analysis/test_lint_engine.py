"""Engine-level tests for the lint pass (`repro.analysis.lint`)."""

import pytest

from repro.analysis import lint_paths, lint_sources
from repro.analysis.lint import LintFinding, assert_clean, iter_python_files
from repro.common.errors import LintError


def _findings(source, path="src/repro/example.py", rules=None):
    return lint_sources([(path, source)], rules)


class TestFindingFormat:
    def test_render_contains_path_line_rule_and_hint(self):
        finding = LintFinding(
            path="src/repro/x.py",
            line=17,
            rule_id="no-direct-random",
            message="direct import",
            hint="use make_rng",
        )
        text = finding.render()
        assert "src/repro/x.py:17" in text
        assert "[no-direct-random]" in text
        assert "use make_rng" in text

    def test_findings_sorted_by_path_then_line(self):
        findings = lint_sources(
            [
                ("src/repro/b.py", "import random\n"),
                ("src/repro/a.py", "x = 1\nimport random\n"),
            ]
        )
        assert [(f.path, f.line) for f in findings] == [
            ("src/repro/a.py", 2),
            ("src/repro/b.py", 1),
        ]


class TestAllowComments:
    def test_allow_suppresses_matching_rule(self):
        source = "import random  # repro: allow(no-direct-random)\n"
        assert _findings(source) == []

    def test_allow_other_rule_does_not_suppress(self):
        source = "import random  # repro: allow(no-wallclock)\n"
        assert [f.rule_id for f in _findings(source)] == ["no-direct-random"]

    def test_allow_list_and_wildcard(self):
        listed = "import random  # repro: allow(no-wallclock, no-direct-random)\n"
        wild = "import random  # repro: allow(*)\n"
        assert _findings(listed) == []
        assert _findings(wild) == []


class TestRuleSelection:
    def test_rule_subset_runs_only_those_rules(self):
        source = "import random\nimport time\nt = time.time()\n"
        only_random = _findings(source, rules=["no-direct-random"])
        assert [f.rule_id for f in only_random] == ["no-direct-random"]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            _findings("x = 1\n", rules=["no-such-rule"])


class TestSyntaxErrors:
    def test_unparsable_file_is_reported_not_crashed(self):
        findings = _findings("def broken(:\n")
        assert len(findings) == 1
        assert findings[0].rule_id == "syntax"
        assert findings[0].line >= 1


class TestFileDiscovery:
    def test_walks_directories_and_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("not python")
        files = iter_python_files([str(tmp_path)])
        assert [f for f in files if "__pycache__" in f] == []
        assert len(files) == 1

    def test_lint_paths_reads_files_from_disk(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        findings = lint_paths([str(bad)])
        assert [f.rule_id for f in findings] == ["no-direct-random"]
        assert findings[0].path == str(bad)


class TestAssertClean:
    def test_raises_lint_error_with_structured_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        with pytest.raises(LintError) as excinfo:
            assert_clean([str(bad)])
        error = excinfo.value
        assert len(error.findings) == 1
        assert error.findings[0].rule_id == "no-direct-random"
        assert f"{bad}:1" in str(error)

    def test_clean_tree_passes(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("from repro.common.rng import make_rng\n")
        assert_clean([str(good)])


class TestCli:
    def test_lint_exit_codes_and_output(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr()
        assert f"{bad}:1: [no-direct-random]" in out.out

        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main(["lint", str(good)]) == 0

    def test_lint_empty_target_is_usage_error(self, tmp_path):
        from repro.analysis.__main__ import main

        assert main(["lint", str(tmp_path)]) == 2

    def test_rules_lists_every_registered_rule(self, capsys):
        from repro.analysis.__main__ import main
        from repro.analysis.rules import RULE_REGISTRY

        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_REGISTRY:
            assert rule_id in out
