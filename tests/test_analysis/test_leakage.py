"""Static leakage analyzer vs. ground truth.

Three kinds of evidence that the zero-simulation metrics are right:

* **Known exact values** — LRU's state space is the 4! = 24 orderings,
  tree-PLRU has exactly 2^(ways-1) states, FIFO absorbs nothing from
  hits.  These are checkable by hand from the paper.
* **Differential Monte-Carlo / exhaustive-reference checks** — the
  *reference* policy objects (not the tables) are driven through the
  paper's Algorithm 1 protocol and through exhaustive hits-only
  exploration; the empirical mutual information and absorbed-state
  counts must agree with the static bounds within tolerance.
* **Determinism and refusal contracts** — canonical JSON is
  byte-identical across runs and matches the committed baseline; open
  tables are refused, never silently approximated.
"""

import json
import pathlib
import random

import pytest

from repro.analysis.leakage import (
    ANALYTIC_POLICIES,
    LEAKAGE_SCHEMA_VERSION,
    LeakageReport,
    analyze_matrix,
    analyze_policy,
    diff_reports,
)
from repro.analysis.reachability import (
    DEFENSES,
    absorbed_levels,
    build_system,
    hitmiss_observer_partition,
    resting_reachable_count,
    victim_observer_partition,
)
from repro.channels.capacity import BinaryChannelStats
from repro.common.errors import ConfigurationError, LeakageAnalysisError
from repro.replacement import POLICY_REGISTRY, make_policy
from repro.replacement.tables import (
    EAGER_STATE_BUDGET,
    TABLEABLE_POLICIES,
    clear_table_cache,
    compile_tables,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "benchmarks" / "LEAKAGE_baseline.json"

#: Paper policies that leak through the hit channel at 4 ways.
LEAKY = ("lru", "tree-plru", "bit-plru", "srrip")


def _fill(policy, way):
    """Model a fill: FIFO/SRRIP split fills from hits via on_fill."""
    on_fill = getattr(policy, "on_fill", None)
    (on_fill or policy.touch)(way)


def _prepare(name, ways, rng=None):
    """Algorithm 1 prime: target first (way 0), then the other ways."""
    kwargs = {"rng": rng.randrange(2**31)} if name == "random" else {}
    policy = make_policy(name, ways, **kwargs)
    for w in range(ways):
        _fill(policy, w)
    return policy


class TestExactKnownValues:
    """Spot values checkable by hand against the paper / CKR."""

    def test_lru4_state_space_is_permutations(self):
        entry = analyze_policy("lru", 4)
        assert entry.mode == "exact"
        assert entry.reachable_states == 24  # 4! recency orderings
        # Every ordering is distinguishable by watching victim ways:
        assert entry.distinguishable["victim-way"] == 24
        assert entry.capacity_limit("victim-way") == pytest.approx(
            4.584963, abs=1e-5
        )
        # The timing receiver resolves target depth: log2(ways) bits.
        assert entry.capacity_limit("hit-miss") == pytest.approx(2.0)

    def test_tree_plru4_state_space_is_tree_bits(self):
        entry = analyze_policy("tree-plru", 4)
        assert entry.reachable_states == 8  # 2^(ways-1) tree bits
        assert entry.distinguishable["victim-way"] == 8
        assert entry.capacity_limit("victim-way") == pytest.approx(3.0)

    def test_fifo_hits_absorb_nothing(self):
        entry = analyze_policy("fifo", 4)
        # FIFO ignores hits entirely: the stealth sender cannot move
        # the state, so both channels carry zero bits (Section IX-A).
        assert entry.absorbed["hit-only-limit"] == 1
        assert entry.capacity_limit("hit-miss") == 0.0
        assert entry.capacity_limit("victim-way") == 0.0

    def test_no_hit_update_closes_the_hit_channel(self):
        for name in LEAKY:
            entry = analyze_policy(name, 4, defense="no-hit-update")
            assert entry.capacity_limit("hit-miss") == 0.0, name
            assert entry.capacity_limit("victim-way") == 0.0, name
            assert entry.absorbed["hit-only-limit"] == 1, name

    def test_capacity_series_is_monotone_and_bounded(self):
        for name in LEAKY:
            entry = analyze_policy(name, 4)
            series = entry.capacity_bits["hit-miss"]
            assert series == sorted(series), name
            assert series[-1] <= entry.state_bits, name

    def test_analytic_policies_have_zero_capacity(self):
        for name in ANALYTIC_POLICIES:
            entry = analyze_policy(name, 4)
            assert entry.mode == "analytic"
            assert entry.capacity_limit("hit-miss") == 0.0
            assert entry.capacity_limit("victim-way") == 0.0
            assert entry.notes


class TestDifferentialMonteCarlo:
    """The reference policy objects agree with the static metrics."""

    @pytest.mark.parametrize("name", LEAKY + ("fifo",))
    @pytest.mark.parametrize("ways", [4])
    def test_absorbed_states_match_exhaustive_reference(self, name, ways):
        """Exhaustive hits-only BFS over *reference* policies matches
        the absorbed-secret levels computed from the tables."""
        system = build_system(name, ways)
        hm = hitmiss_observer_partition(system)
        levels, _ = absorbed_levels(system, hm.start_state, "touch")

        # Reference start: prime ways 0..ways-1, then one miss
        # installing the target (exactly the canonical prepare).
        policy = make_policy(name, ways)
        for w in range(ways):
            _fill(policy, w)
        victim = policy.victim()
        _fill(policy, victim)

        seen = {policy.state_snapshot()}
        frontier = [policy.state_snapshot()]
        ref_levels = [1]
        while frontier:
            nxt = []
            for snapshot in frontier:
                for w in range(ways):
                    policy.state_restore(snapshot)
                    policy.touch(w)
                    after = policy.state_snapshot()
                    if after not in seen:
                        seen.add(after)
                        nxt.append(after)
            frontier = nxt
            if nxt:
                ref_levels.append(len(seen))
        assert ref_levels == levels

    @pytest.mark.parametrize("name", LEAKY)
    def test_leaky_policies_decode_algorithm1(self, name):
        """The paper's Algorithm 1 receiver extracts ~1 bit/use from
        every policy the static analyzer calls leaky."""
        mi = self._channel_mi(name)
        assert mi >= 0.9, f"{name}: MI {mi:.3f} below decode threshold"

    @pytest.mark.parametrize("name", ["fifo", "random"])
    def test_capacity_zero_policies_do_not_decode(self, name):
        mi = self._channel_mi(name)
        assert mi <= 0.05, f"{name}: MI {mi:.3f} but static capacity is 0"

    @pytest.mark.parametrize("name", LEAKY + ("fifo", "random"))
    def test_empirical_mi_within_static_bound(self, name):
        """MC mutual information never exceeds the static capacity
        upper bound (plus estimation tolerance)."""
        entry = analyze_policy(name, 4)
        static = (
            0.0
            if entry.mode != "exact"
            else entry.capacity_limit("hit-miss")
        )
        mi = self._channel_mi(name)
        assert mi <= static + 0.05, (
            f"{name}: MC MI {mi:.3f} exceeds static bound {static:.3f}"
        )

    @staticmethod
    def _channel_mi(name, ways=4, trials=400, seed=1234):
        """Empirical MI of the Algorithm 1 channel at one bit/use.

        Sender encodes 1 by re-touching the shared target (a hit — the
        stealth sender), 0 by staying silent.  The receiver then evicts
        ``ways - 1`` fresh lines and checks whether the target
        survived.
        """
        rng = random.Random(seed)
        sent = [rng.randrange(2) for _ in range(trials)]
        decoded = []
        for bit in sent:
            policy = _prepare(name, ways, rng)
            if bit:
                policy.touch(0)
            evicted = False
            for _ in range(ways - 1):
                victim = policy.victim()
                _fill(policy, victim)
                if victim == 0:
                    evicted = True
            decoded.append(0 if evicted else 1)
        return BinaryChannelStats.from_bits(
            sent, decoded
        ).mutual_information()


class TestObservationEquivalence:
    """Partition-refinement classes are genuinely indistinguishable."""

    @pytest.mark.parametrize("name", ["lru", "tree-plru", "srrip"])
    def test_equivalent_states_yield_identical_victim_traces(self, name):
        """Any two states the victim-way observer cannot distinguish
        produce identical victim sequences under random probing."""
        system = build_system(name, 4)
        block, classes = victim_observer_partition(system)
        by_class = {}
        for state, cls in enumerate(block):
            by_class.setdefault(cls, []).append(state)
        rng = random.Random(99)
        pairs = [
            states[:2] for states in by_class.values() if len(states) >= 2
        ]
        if not pairs:
            assert classes == system.n  # fully distinguishable
            return
        for a, b in pairs:
            for _ in range(20):
                sa, sb = a, b
                for _ in range(12):
                    if rng.randrange(2):
                        w = rng.randrange(system.ways)
                        sa = system.touch_to(sa, w)
                        sb = system.touch_to(sb, w)
                    else:
                        assert (
                            system.victim_way[sa] == system.victim_way[sb]
                        )
                        sa = system.evict_to[sa]
                        sb = system.evict_to[sb]

    def test_lru_distinguishable_count_matches_depth(self):
        """For LRU the hit/miss receiver learns exactly the target's
        recency depth — ways distinct classes, not ways! states."""
        system = build_system("lru", 4)
        hm = hitmiss_observer_partition(system)
        assert hm.classes_over_states == 4


class TestGoldenDeterminism:
    """Canonical JSON is reproducible and matches the committed
    baseline artifact."""

    def test_two_runs_are_byte_identical(self):
        first = analyze_matrix(ways=(4,)).to_canonical_json()
        clear_table_cache()
        second = analyze_matrix(ways=(4,)).to_canonical_json()
        assert first == second

    def test_matches_committed_baseline(self):
        assert BASELINE.exists(), (
            "benchmarks/LEAKAGE_baseline.json missing; regenerate with "
            "PYTHONPATH=src python -m repro.analysis leakage "
            "--json benchmarks/LEAKAGE_baseline.json"
        )
        baseline = json.loads(BASELINE.read_text())
        current = analyze_matrix().to_dict()
        assert diff_reports(current, baseline) == []

    def test_diff_reports_flags_drift(self):
        report = analyze_matrix(policies=["lru"], ways=(4,)).to_dict()
        drifted = json.loads(json.dumps(report))
        drifted["entries"][0]["reachable_states"] += 1
        problems = diff_reports(drifted, report)
        assert any("reachable_states" in p for p in problems)

    def test_diff_reports_refuses_cross_version(self):
        report = analyze_matrix(policies=["fifo"], ways=(4,)).to_dict()
        older = json.loads(json.dumps(report))
        older["leakage_version"] = LEAKAGE_SCHEMA_VERSION - 1
        problems = diff_reports(report, older)
        assert problems and "version" in problems[0]

    def test_ranking_reproduces_paper_defense_ordering(self):
        """Section IX qualitatively: plain LRU-family policies leak,
        FIFO/random/partitioning and no-hit-update do not."""
        report = analyze_matrix(ways=(4,))
        cap = {
            (r["policy"], r["defense"]): r["capacity_hit_miss"]
            for r in report.ranking()
        }
        for name in LEAKY:
            assert cap[(name, "none")] > 0.0, name
            assert cap[(name, "no-hit-update")] == 0.0, name
        for name in ("fifo", "random", "partitioned-plru"):
            assert cap[(name, "none")] == 0.0, name


class TestRefusals:
    """Open tables are refused with a structured, actionable error."""

    def test_lru8_refused_at_default_budget(self):
        entry = analyze_policy("lru", 8)
        assert entry.mode == "refused"
        assert "40320" in entry.refusal  # 8! states
        assert str(EAGER_STATE_BUDGET) in entry.refusal
        assert entry.capacity_bits == {}

    def test_raising_the_budget_unlocks_exact_analysis(self):
        entry = analyze_policy("lru", 8, eager_budget=40320)
        assert entry.mode == "exact"
        assert entry.reachable_states == 40320
        # Victim-way capacity saturates at log2(8!) bits — the paper's
        # "LRU state encodes the full permutation" observation.
        assert entry.capacity_limit("victim-way") == pytest.approx(
            15.299208, abs=1e-5
        )
        assert entry.capacity_limit("hit-miss") == pytest.approx(3.0)

    def test_build_system_raises_structured_error(self):
        with pytest.raises(LeakageAnalysisError) as excinfo:
            build_system("lru", 16)
        error = excinfo.value
        assert error.policy == "lru"
        assert error.ways == 16
        assert error.estimated_states > error.eager_budget

    def test_unknown_policy_and_defense_raise(self):
        with pytest.raises(ConfigurationError):
            analyze_policy("clairvoyant", 4)
        with pytest.raises(ConfigurationError):
            analyze_policy("lru", 4, defense="prayer")
        with pytest.raises(ConfigurationError):
            analyze_policy("tabled", 4)  # engine alias, not a policy

    def test_resting_reachability_refuses_open_tables(self):
        with pytest.raises(LeakageAnalysisError):
            resting_reachable_count("srrip", 8)


class TestTableMemoization:
    """Satellite: the compile_tables memo key covers constructor
    parameters, so distinct configurations never share tables."""

    def setup_method(self):
        clear_table_cache()

    def test_default_and_explicit_params_share_one_compilation(self):
        implicit = compile_tables("srrip", 4)
        explicit = compile_tables("srrip", 4, rrpv_bits=2)
        assert implicit is explicit

    def test_distinct_params_get_distinct_tables(self):
        two = compile_tables("srrip", 4, rrpv_bits=2)
        three = compile_tables("srrip", 4, rrpv_bits=3)
        assert two is not three
        assert three.state_count > two.state_count

    def test_unknown_kwarg_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            compile_tables("lru", 4, wayz=7)

    def test_unhashable_kwarg_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            compile_tables("srrip", 4, rrpv_bits=[2])

    def test_is_closed_reflects_compilation_mode(self):
        assert compile_tables("lru", 4).is_closed
        assert not compile_tables("lru", 8, eager_budget=16).is_closed

    def test_budget_is_part_of_the_key(self):
        small = compile_tables("lru", 4, eager_budget=64)
        default = compile_tables("lru", 4)
        assert small is not default


class TestMatrixContract:
    """analyze_matrix covers the registry and stays consistent with
    the wire protocol."""

    def test_every_registered_policy_is_accounted_for(self):
        report = analyze_matrix(ways=(4,))
        covered = {e.policy for e in report.entries} | set(report.skipped)
        assert covered == set(POLICY_REGISTRY)

    def test_tableable_and_analytic_policies_do_not_overlap(self):
        assert not set(TABLEABLE_POLICIES) & set(ANALYTIC_POLICIES)

    def test_protocol_defenses_mirror_analysis_defenses(self):
        from repro.service.protocol import ANALYZE_DEFENSES

        assert tuple(ANALYZE_DEFENSES) == tuple(DEFENSES)

    def test_report_roundtrips_through_json(self):
        report = analyze_matrix(policies=["lru", "fifo"], ways=(4,))
        data = json.loads(report.to_canonical_json())
        assert data["leakage_version"] == LEAKAGE_SCHEMA_VERSION
        assert len(data["entries"]) == len(report.entries)
        assert [r["rank"] for r in data["ranking"]] == list(
            range(1, len(report.entries) + 1)
        )

    def test_render_table_lists_every_cell(self):
        report = analyze_matrix(ways=(4,))
        table = report.render_table()
        for entry in report.entries:
            assert entry.policy in table
        assert "skipped tabled" in table


def test_leakage_report_dataclass_sorts_refused_last():
    report = analyze_matrix(policies=["lru"], ways=(4, 8))
    assert isinstance(report, LeakageReport)
    ranking = report.ranking()
    assert ranking[-1]["mode"] == "refused"
    assert ranking[-1]["capacity_hit_miss"] is None
