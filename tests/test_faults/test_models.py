"""Unit tests for the fault-model framework (`repro.faults`)."""

import pytest

from repro.common.errors import FaultInjectionError
from repro.common.rng import make_rng
from repro.common.types import Observation
from repro.faults import (
    ContextSwitchFault,
    FaultInjector,
    FaultModel,
    InterruptBurstFault,
    PoissonFault,
    PrefetcherFault,
    SampleDropFault,
    SampleDuplicateFault,
    TSCFault,
    standard_fault_suite,
)


def _bound(model, hierarchy, seed=7):
    model.bind(hierarchy, make_rng(seed))
    return model


class TestFaultModelBase:
    def test_disturb_before_bind_raises(self, hierarchy):
        model = FaultModel()
        with pytest.raises(FaultInjectionError, match="before bind"):
            model._disturb(0x1000)

    def test_default_hooks_are_identity(self, hierarchy):
        model = _bound(FaultModel(), hierarchy)
        assert model.on_time_advance(1e6) == 0.0
        assert model.perturb_tsc(123.0) == 123.0
        obs = Observation(sequence=0, latency=4.0)
        assert model.filter_observation(obs) == [obs]


class TestPoissonArrivals:
    def test_negative_rate_rejected(self):
        with pytest.raises(FaultInjectionError):
            InterruptBurstFault(rate_per_mcycle=-1.0)

    def test_zero_rate_never_fires(self, hierarchy):
        fault = _bound(InterruptBurstFault(rate_per_mcycle=0.0), hierarchy)
        assert fault.on_time_advance(1e9) == 0.0

    def test_event_times_are_deterministic_per_seed(self, hierarchy):
        class Recording(PoissonFault):
            name = "recording"

            def __init__(self):
                super().__init__(rate_per_mcycle=100.0)
                self.fired = []

            def inject(self, at):
                self.fired.append(at)
                return 0.0

        runs = []
        for _ in range(2):
            fault = _bound(Recording(), hierarchy, seed=11)
            fault.on_time_advance(2e6)
            runs.append(fault.fired)
        assert runs[0] == runs[1]
        assert len(runs[0]) > 0
        assert all(t <= 2e6 for t in runs[0])

    def test_events_accumulate_across_advances(self, hierarchy):
        class Recording(PoissonFault):
            name = "recording"

            def __init__(self):
                super().__init__(rate_per_mcycle=50.0)
                self.fired = []

            def inject(self, at):
                self.fired.append(at)
                return 0.0

        stepped = _bound(Recording(), hierarchy, seed=3)
        for now in (0.5e6, 1e6, 1.5e6, 2e6):
            stepped.on_time_advance(now)
        whole = _bound(Recording(), hierarchy, seed=3)
        whole.on_time_advance(2e6)
        # Same seed: chopping time into steps must not skip or re-fire
        # events.
        assert stepped.fired == whole.fired


class TestInterruptBurstFault:
    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            InterruptBurstFault(1.0, burst_length=0)
        with pytest.raises(FaultInjectionError):
            InterruptBurstFault(1.0, handler_cycles=-5.0)

    def test_footprint_defaults_to_four_l1_spans(self, hierarchy):
        fault = _bound(InterruptBurstFault(1.0), hierarchy)
        l1 = hierarchy.l1.config
        assert fault.footprint_lines == 4 * l1.num_sets * l1.ways

    def test_inject_steals_handler_plus_memory_time(self, hierarchy):
        fault = _bound(
            InterruptBurstFault(1.0, burst_length=4, handler_cycles=200.0),
            hierarchy,
        )
        stall = fault.inject(at=0.0)
        # Four cold accesses each cost at least the L1 hit latency.
        assert stall > 200.0 + 4 * hierarchy.l1.config.hit_latency


class TestContextSwitchFault:
    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            ContextSwitchFault(1.0, working_set_fraction=0.0)
        with pytest.raises(FaultInjectionError):
            ContextSwitchFault(1.0, working_set_fraction=5.0)

    def test_scrub_touches_the_full_working_set(self, hierarchy):
        fault = _bound(
            ContextSwitchFault(1.0, working_set_fraction=1.0), hierarchy
        )
        stall = fault.inject(at=0.0)
        l1 = hierarchy.l1.config
        lines = l1.num_sets * l1.ways
        assert stall >= lines * l1.hit_latency


class TestPrefetcherFault:
    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            PrefetcherFault(1.0, degree=0)
        with pytest.raises(FaultInjectionError):
            PrefetcherFault(1.0, stride_lines=0)

    def test_prefetches_steal_no_core_time(self, hierarchy):
        fault = _bound(PrefetcherFault(1.0, degree=4), hierarchy)
        assert fault.inject(at=0.0) == 0.0


class TestTSCFault:
    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            TSCFault(jitter_cycles=-1.0)

    def test_drift_scales_readings(self, hierarchy):
        fault = _bound(TSCFault(drift_ppm=1000.0), hierarchy)
        assert fault.perturb_tsc(1e6) == pytest.approx(1e6 * 1.001)

    def test_jittered_readings_stay_monotonic(self, hierarchy):
        fault = _bound(TSCFault(jitter_cycles=50.0), hierarchy)
        readings = [fault.perturb_tsc(t) for t in range(0, 10_000, 100)]
        assert readings == sorted(readings)
        assert readings[0] >= 0.0


class TestSamplingFaults:
    def test_probability_validation(self):
        with pytest.raises(FaultInjectionError):
            SampleDropFault(-0.1)
        with pytest.raises(FaultInjectionError):
            SampleDuplicateFault(1.1)

    def test_drop_probability_one_loses_everything(self, hierarchy):
        fault = _bound(SampleDropFault(1.0), hierarchy)
        obs = Observation(sequence=3, latency=12.0, timestamp=99)
        assert fault.filter_observation(obs) == []

    def test_duplicate_probability_one_twins_everything(self, hierarchy):
        fault = _bound(SampleDuplicateFault(1.0), hierarchy)
        obs = Observation(sequence=3, latency=12.0, timestamp=99)
        out = fault.filter_observation(obs)
        assert len(out) == 2
        assert out[0] is obs
        assert out[1] == obs and out[1] is not obs

    def test_probability_zero_is_identity(self, hierarchy):
        obs = Observation(sequence=0, latency=4.0)
        for fault in (SampleDropFault(0.0), SampleDuplicateFault(0.0)):
            _bound(fault, hierarchy)
            assert fault.filter_observation(obs) == [obs]


class TestFaultInjector:
    def test_rejects_non_models(self, hierarchy):
        injector = FaultInjector(hierarchy, rng_source=lambda: make_rng(1))
        with pytest.raises(FaultInjectionError, match="FaultModel"):
            injector.attach("not a model")

    def test_rng_source_is_lazy(self, hierarchy):
        calls = []

        def source():
            calls.append(True)
            return make_rng(1)

        injector = FaultInjector(hierarchy, rng_source=source)
        assert not injector.active
        assert calls == []
        injector.attach(TSCFault(jitter_cycles=1.0))
        assert injector.active
        assert calls == [True]

    def test_observation_filtering_chains_models(self, hierarchy):
        injector = FaultInjector(hierarchy, rng_source=lambda: make_rng(1))
        injector.attach_all(
            [SampleDuplicateFault(1.0), SampleDuplicateFault(1.0)]
        )
        obs = Observation(sequence=0, latency=4.0)
        assert len(injector.filter_observation(obs)) == 4

    def test_tsc_perturbations_compose(self, hierarchy):
        injector = FaultInjector(hierarchy, rng_source=lambda: make_rng(1))
        injector.attach_all(
            [TSCFault(drift_ppm=1000.0), TSCFault(drift_ppm=1000.0)]
        )
        assert injector.perturb_tsc(1e6) == pytest.approx(1e6 * 1.001 ** 2)

    def test_stall_in_window_counts_only_covered_events(self, hierarchy):
        injector = FaultInjector(hierarchy, rng_source=lambda: make_rng(1))
        injector._record_event(100.0, 10.0)
        injector._record_event(200.0, 20.0)
        injector._record_event(300.0, 40.0)
        assert injector.stall_in_window(100.0, 250.0) == 20.0
        assert injector.stall_in_window(0.0, 1000.0) == 70.0
        assert injector.stall_in_window(300.0, 400.0) == 0.0

    def test_on_time_advance_logs_stealing_events(self, hierarchy):
        injector = FaultInjector(hierarchy, rng_source=lambda: make_rng(1))
        injector.attach(InterruptBurstFault(rate_per_mcycle=100.0))
        stolen = injector.on_time_advance(1e6)
        assert stolen > 0
        assert injector.stall_in_window(0.0, 1e6) == pytest.approx(stolen)


class TestStandardFaultSuite:
    def test_intensity_zero_is_a_quiet_machine(self):
        assert standard_fault_suite(0.0) == []

    def test_negative_intensity_rejected(self):
        with pytest.raises(FaultInjectionError):
            standard_fault_suite(-1.0)

    def test_intensity_scales_every_model(self):
        low = standard_fault_suite(1.0)
        high = standard_fault_suite(2.0)
        assert len(low) == len(high) == 6
        assert high[0].rate_per_mcycle == 2 * low[0].rate_per_mcycle

    def test_sampling_probabilities_are_capped(self):
        suite = standard_fault_suite(1000.0)
        drop = next(m for m in suite if isinstance(m, SampleDropFault))
        dup = next(m for m in suite if isinstance(m, SampleDuplicateFault))
        assert drop.probability <= 0.25
        assert dup.probability <= 0.25
