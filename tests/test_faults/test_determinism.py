"""Seed determinism of fault injection, end to end.

The whole reproduction rests on runs being replayable from one master
seed; fault injection must not break that.  For every fault model (and
their composition) an identical machine seed plus fault configuration
must produce the bit-identical observation trace and decoded message.
"""

import pytest

from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.decoder import runlength_decode, sample_bits
from repro.channels.protocol import CovertChannelProtocol, ProtocolConfig
from repro.faults import (
    ContextSwitchFault,
    InterruptBurstFault,
    PrefetcherFault,
    SampleDropFault,
    SampleDuplicateFault,
    TSCFault,
    standard_fault_suite,
)
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E5_2690

MESSAGE = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1]

FAULT_CONFIGS = {
    "interrupts": lambda: [InterruptBurstFault(rate_per_mcycle=200.0)],
    "ctx-switch": lambda: [ContextSwitchFault(rate_per_mcycle=5.0)],
    "prefetcher": lambda: [PrefetcherFault(rate_per_mcycle=100.0)],
    "tsc": lambda: [TSCFault(jitter_cycles=8.0, drift_ppm=200.0)],
    "sample-drop": lambda: [SampleDropFault(probability=0.05)],
    "sample-dup": lambda: [SampleDuplicateFault(probability=0.05)],
    "suite": lambda: standard_fault_suite(2.0),
}


def _run_channel(seed, faults):
    machine = Machine(INTEL_E5_2690, rng=seed, faults=faults)
    channel = SharedMemoryLRUChannel.build(machine.spec.hierarchy.l1, 1, d=8)
    protocol = CovertChannelProtocol(
        machine, channel, ProtocolConfig(ts=4500, tr=600)
    )
    run = protocol.run_hyper_threaded(list(MESSAGE))
    trace = [
        (o.sequence, o.latency, o.timestamp) for o in run.observations
    ]
    decoded = runlength_decode(sample_bits(run), 7)
    return trace, decoded


class TestFaultDeterminism:
    @pytest.mark.parametrize("name", sorted(FAULT_CONFIGS))
    def test_same_seed_same_trace_and_message(self, name):
        build = FAULT_CONFIGS[name]
        trace_a, decoded_a = _run_channel(42, build())
        trace_b, decoded_b = _run_channel(42, build())
        assert trace_a == trace_b
        assert decoded_a == decoded_b
        assert len(trace_a) > 0

    def test_different_seeds_diverge_under_faults(self):
        # Sanity check that the determinism above is not vacuous: the
        # fault streams really are driven by the machine seed.
        trace_a, _ = _run_channel(42, standard_fault_suite(2.0))
        trace_b, _ = _run_channel(43, standard_fault_suite(2.0))
        assert trace_a != trace_b

    def test_empty_fault_list_matches_no_fault_machine(self):
        # faults=[] must leave the master RNG stream untouched, so a
        # machine built with it is bit-identical to one built without.
        trace_a, decoded_a = _run_channel(42, [])
        trace_b, decoded_b = _run_channel(42, None)
        assert trace_a == trace_b
        assert decoded_a == decoded_b
