"""Tests for workload generators and trace replay."""

import itertools

import pytest

from repro.cache.config import HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ConfigurationError
from repro.workloads.spec_like import (
    PROFILES_BY_NAME,
    SPEC_LIKE_PROFILES,
    get_profile,
)
from repro.workloads.synthetic import (
    mixed_stream,
    pointer_chase_stream,
    sequential_stream,
    strided_stream,
    working_set_loop,
    zipf_stream,
)
from repro.workloads.trace import record, replay


class TestSequentialStream:
    def test_word_granular_locality(self):
        addresses = list(sequential_stream(16, step=8))
        assert addresses == [i * 8 for i in range(16)]

    def test_intrinsic_miss_rate_one_eighth(self):
        hierarchy = CacheHierarchy(HierarchyConfig(), rng=1)
        stats = replay(hierarchy, sequential_stream(4096, step=8))
        assert stats.l1_miss_rate == pytest.approx(1 / 8, abs=0.01)

    def test_step_validation(self):
        with pytest.raises(ConfigurationError):
            list(sequential_stream(4, step=0))


class TestStridedAndLoop:
    def test_strided(self):
        addresses = list(strided_stream(4, stride_lines=2))
        assert addresses == [0, 128, 256, 384]

    def test_strided_validation(self):
        with pytest.raises(ConfigurationError):
            list(strided_stream(4, stride_lines=0))

    def test_working_set_loop_cycles(self):
        addresses = list(working_set_loop(6, working_set_lines=3))
        assert addresses == [0, 64, 128, 0, 64, 128]

    def test_loop_fitting_in_cache_hits(self):
        hierarchy = CacheHierarchy(HierarchyConfig(), rng=1)
        stats = replay(
            hierarchy, working_set_loop(2000, working_set_lines=100),
            warmup=100,
        )
        assert stats.l1_miss_rate == 0.0

    def test_loop_exceeding_l1_thrashes_under_lru(self):
        """The canonical LRU pathology: WS slightly over capacity."""
        hierarchy = CacheHierarchy(HierarchyConfig(), rng=1)
        # 32 KiB L1 = 512 lines; loop over 576.
        stats = replay(
            hierarchy, working_set_loop(4000, working_set_lines=576),
            warmup=600,
        )
        assert stats.l1_miss_rate > 0.5


class TestZipfStream:
    def test_skew_concentrates_mass(self):
        from collections import Counter

        counts = Counter(zipf_stream(4000, 100, alpha=1.5, rng=1))
        top = counts.most_common(10)
        assert sum(c for _, c in top) > 2000

    def test_addresses_in_working_set(self):
        addresses = set(zipf_stream(500, 50, rng=1))
        assert all(0 <= a < 50 * 64 for a in addresses)

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            list(zipf_stream(4, 10, alpha=0))


class TestPointerChaseStream:
    def test_permutation_walk_covers_set(self):
        addresses = list(pointer_chase_stream(10, 10, rng=1))
        assert sorted(addresses) == [i * 64 for i in range(10)]

    def test_repeats_after_full_cycle(self):
        addresses = list(pointer_chase_stream(20, 10, rng=1))
        assert addresses[:10] == addresses[10:]


class TestMixedStream:
    def test_respects_length(self):
        stream = mixed_stream(
            [sequential_stream(100), iter(working_set_loop(100, 4))],
            [0.5, 0.5],
            50,
            rng=1,
        )
        assert len(list(stream)) == 50

    def test_exhausted_component_dropped(self):
        stream = mixed_stream(
            [iter([1, 2]), itertools.count(1000)], [0.5, 0.5], 30, rng=1
        )
        out = list(stream)
        assert len(out) == 30

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            list(mixed_stream([], [], 5))
        with pytest.raises(ConfigurationError):
            list(mixed_stream([iter([1])], [0.5, 0.5], 5))


class TestSpecLikeProfiles:
    def test_twelve_profiles(self):
        assert len(SPEC_LIKE_PROFILES) == 12

    def test_lookup(self):
        assert get_profile("mcf").working_set_lines > 1024
        with pytest.raises(KeyError):
            get_profile("perlbench")

    def test_registry_consistent(self):
        for profile in SPEC_LIKE_PROFILES:
            assert PROFILES_BY_NAME[profile.name] is profile

    def test_generate_length(self):
        out = list(get_profile("gcc").generate(200, rng=1))
        assert len(out) == 200

    def test_deterministic_given_seed(self):
        a = list(get_profile("gcc").generate(100, rng=5))
        b = list(get_profile("gcc").generate(100, rng=5))
        assert a == b

    def test_streaming_profiles_have_realistic_miss_rates(self):
        hierarchy = CacheHierarchy(HierarchyConfig(), rng=1)
        stats = replay(
            hierarchy, get_profile("libquantum").generate(4000, rng=1),
            warmup=400,
        )
        assert 0.05 < stats.l1_miss_rate < 0.25


class TestTraceReplay:
    def test_record_bounds(self):
        assert record(iter(range(5)), 3) == [0, 1, 2]
        assert record(iter(range(2)), 10) == [0, 1]

    def test_replay_counts(self):
        hierarchy = CacheHierarchy(HierarchyConfig(), rng=1)
        stats = replay(hierarchy, [0, 0, 64])
        assert stats.accesses == 3
        assert stats.l1_hits == 1
        assert stats.memory_accesses == 2

    def test_warmup_excluded(self):
        hierarchy = CacheHierarchy(HierarchyConfig(), rng=1)
        stats = replay(hierarchy, [0, 0, 0], warmup=1)
        assert stats.accesses == 2
        assert stats.l1_miss_rate == 0.0

    def test_l2_local_miss_ratio(self):
        hierarchy = CacheHierarchy(HierarchyConfig(), rng=1)
        # Two cold misses, then L1 hits only: L2 sees 2 refs, 2 misses.
        stats = replay(hierarchy, [0, 64, 0, 64])
        assert stats.l2_miss_rate == 1.0

    def test_average_latency(self):
        hierarchy = CacheHierarchy(HierarchyConfig(), rng=1)
        stats = replay(hierarchy, [0, 0])
        expected = (200.0 + 4.0) / 2
        assert stats.average_latency == pytest.approx(expected)

    def test_empty_trace(self):
        hierarchy = CacheHierarchy(HierarchyConfig(), rng=1)
        stats = replay(hierarchy, [])
        assert stats.accesses == 0
        assert stats.average_latency == 0.0
