"""Tests for the receiver-side decoders."""

import pytest

from repro.channels.decoder import (
    moving_average_decode,
    runlength_decode,
    sample_bits,
    strip_stuck_runs,
    threshold_decode,
    window_decode,
)
from repro.channels.protocol import ChannelRun
from repro.common.errors import ProtocolError
from repro.common.types import Observation


def make_run(latencies, timestamps=None, threshold=40.0, hit_means_one=True,
             boundaries=(), sent=()):
    run = ChannelRun(threshold=threshold, hit_means_one=hit_means_one)
    for i, lat in enumerate(latencies):
        stamp = timestamps[i] if timestamps else i * 100
        run.observations.append(
            Observation(sequence=i, latency=lat, timestamp=stamp)
        )
    run.bit_boundaries = list(boundaries)
    run.sent_bits = list(sent)
    return run


class TestThresholdDecode:
    def test_alg1_polarity(self):
        # hit (below threshold) means 1 for Algorithm 1.
        assert threshold_decode([30, 50], 40, hit_means_one=True) == [1, 0]

    def test_alg2_polarity(self):
        assert threshold_decode([30, 50], 40, hit_means_one=False) == [0, 1]

    def test_sample_bits_uses_run_metadata(self):
        run = make_run([30, 50], hit_means_one=False)
        assert sample_bits(run) == [0, 1]


class TestRunlengthDecode:
    def test_perfect_oversampling(self):
        bits = [0] * 10 + [1] * 10 + [0] * 10
        assert runlength_decode(bits, 10) == [0, 1, 0]

    def test_rounding_of_uneven_runs(self):
        bits = [1] * 9 + [0] * 11
        assert runlength_decode(bits, 10) == [1, 0]

    def test_long_run_expands(self):
        bits = [1] * 30
        assert runlength_decode(bits, 10) == [1, 1, 1]

    def test_short_glitch_filtered_by_default(self):
        bits = [0] * 10 + [1] + [0] * 10
        assert runlength_decode(bits, 10) == [0, 0]

    def test_short_glitch_kept_without_smoothing(self):
        bits = [0] * 10 + [1] + [0] * 10
        assert runlength_decode(bits, 10, smooth=False) == [0, 1, 0]

    def test_empty(self):
        assert runlength_decode([], 10) == []

    def test_invalid_spb(self):
        with pytest.raises(ProtocolError):
            runlength_decode([1], 0)


class TestWindowDecode:
    def test_majority_vote_per_window(self):
        latencies = [30, 30, 50, 50, 50, 30]
        stamps = [0, 50, 100, 150, 200, 250]
        run = make_run(
            latencies, stamps, boundaries=[0, 100, 200], sent=[1, 0, 1]
        )
        assert window_decode(run) == [1, 0, 1]

    def test_empty_window_is_lost_bit(self):
        run = make_run(
            [30, 30], [0, 50], boundaries=[0, 100, 200], sent=[1, 0, 1]
        )
        # No observation in [100, 200) or [200, 300): those bits drop.
        assert window_decode(run) == [1]

    def test_requires_boundaries(self):
        run = make_run([30])
        with pytest.raises(ProtocolError):
            window_decode(run)


class TestMovingAverageDecode:
    def test_recovers_alternating_wave(self):
        # 10 samples per bit, alternating levels with noise-free values.
        latencies = ([30.0] * 10 + [50.0] * 10) * 4
        decoded = moving_average_decode(
            latencies, samples_per_bit_hint=10, hit_means_one=True
        )
        # Alternating 1/0 (hit level = low latency = bit 1).
        assert len(decoded) >= 6
        transitions = sum(1 for a, b in zip(decoded, decoded[1:]) if a != b)
        assert transitions >= len(decoded) - 2

    def test_short_input(self):
        assert moving_average_decode([30.0], 10, True) == []


class TestStripStuckRuns:
    def test_truncates_long_runs(self):
        bits = [1] * 10 + [0, 1, 0]
        assert strip_stuck_runs(bits, max_run=3) == [1, 1, 1, 0, 1, 0]

    def test_no_change_below_limit(self):
        bits = [0, 1, 1, 0]
        assert strip_stuck_runs(bits, max_run=3) == bits

    def test_invalid_max_run(self):
        with pytest.raises(ProtocolError):
            strip_stuck_runs([1], 0)


class TestMajorityFilter:
    def test_removes_isolated_flip(self):
        from repro.channels.decoder import majority_filter

        bits = [0, 0, 0, 1, 0, 0, 0]
        assert majority_filter(bits, 3) == [0] * 7

    def test_preserves_real_transitions(self):
        from repro.channels.decoder import majority_filter

        bits = [0, 0, 0, 1, 1, 1]
        assert majority_filter(bits, 3) == bits

    def test_window_one_is_identity(self):
        from repro.channels.decoder import majority_filter

        assert majority_filter([1, 0, 1], 1) == [1, 0, 1]

    def test_even_window_rejected(self):
        from repro.channels.decoder import majority_filter
        from repro.common.errors import ProtocolError

        import pytest

        with pytest.raises(ProtocolError):
            majority_filter([1], 2)

    def test_short_input_passthrough(self):
        from repro.channels.decoder import majority_filter

        assert majority_filter([1, 0], 3) == [1, 0]


class TestMovingAveragePhaseRecovery:
    def test_recovers_despite_phase_offset(self):
        """The receiver's samples rarely align with bit boundaries; the
        phase search must still slice correctly."""
        from repro.channels.decoder import moving_average_decode

        wave = [30.0] * 4 + ([50.0] * 10 + [30.0] * 10) * 4
        decoded = moving_average_decode(
            wave, samples_per_bit_hint=10, hit_means_one=True, window=5
        )
        transitions = sum(1 for a, b in zip(decoded, decoded[1:]) if a != b)
        # An alternating wave must decode as (nearly) alternating bits.
        assert transitions >= len(decoded) - 2
