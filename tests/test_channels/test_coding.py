"""Tests for the error-correcting transmission stack."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.channels.coding import (
    CodedPipe,
    deinterleave,
    hamming74_decode,
    hamming74_decode_block,
    hamming74_encode,
    hamming74_encode_block,
    interleave,
)
from repro.common.errors import ProtocolError

NIBBLES = st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4)
BITS = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=64)


class TestHammingBlock:
    @given(NIBBLES)
    def test_roundtrip_clean(self, data):
        assert hamming74_decode_block(hamming74_encode_block(data)) == data

    @given(NIBBLES, st.integers(min_value=0, max_value=6))
    def test_corrects_any_single_flip(self, data, position):
        code = hamming74_encode_block(data)
        code[position] ^= 1
        assert hamming74_decode_block(code) == data

    def test_double_flip_not_corrected(self):
        data = [1, 0, 1, 1]
        code = hamming74_encode_block(data)
        code[0] ^= 1
        code[3] ^= 1
        assert hamming74_decode_block(code) != data

    def test_validation(self):
        with pytest.raises(ProtocolError):
            hamming74_encode_block([1, 0, 1])
        with pytest.raises(ProtocolError):
            hamming74_decode_block([1] * 6)
        with pytest.raises(ProtocolError):
            hamming74_encode_block([1, 0, 2, 0])


class TestHammingStream:
    @given(BITS)
    def test_roundtrip(self, bits):
        decoded = hamming74_decode(hamming74_encode(bits))
        assert decoded[: len(bits)] == bits

    def test_expansion_ratio(self):
        assert len(hamming74_encode([0] * 16)) == 28

    def test_partial_trailing_block_dropped(self):
        coded = hamming74_encode([1, 0, 1, 1])
        assert hamming74_decode(coded + [0, 1]) == [1, 0, 1, 1]


class TestInterleaver:
    @given(BITS, st.integers(min_value=1, max_value=8))
    def test_roundtrip(self, bits, depth):
        woven = interleave(bits, depth)
        flat = deinterleave(woven, depth)
        assert flat[: len(bits)] == bits

    def test_burst_dispersal(self):
        """A burst of `depth` errors lands one-per-codeword region."""
        bits = [0] * 49
        woven = interleave(bits, 7)
        # Corrupt a 7-long burst in the channel domain.
        for i in range(7, 14):
            woven[i] ^= 1
        flat = deinterleave(woven, 7)
        # In the original domain the errors are spread 7 apart.
        error_positions = [i for i, b in enumerate(flat) if b == 1]
        gaps = [b - a for a, b in zip(error_positions, error_positions[1:])]
        assert all(g == 7 for g in gaps)

    def test_validation(self):
        with pytest.raises(ProtocolError):
            interleave([1], 0)
        with pytest.raises(ProtocolError):
            deinterleave([1, 0, 1], 2)


class TestCodedPipe:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40))
    @settings(max_examples=30)
    def test_clean_channel_roundtrip(self, payload):
        pipe = CodedPipe(depth=7)
        assert pipe.decode(pipe.encode(payload), len(payload)) == payload

    def test_corrects_scattered_flips(self):
        rng = random.Random(5)
        payload = [rng.randrange(2) for _ in range(64)]
        pipe = CodedPipe(depth=7)
        channel = pipe.encode(payload)
        # Flip ~3% of channel bits, far apart.
        for position in range(0, len(channel), 37):
            channel[position] ^= 1
        assert pipe.decode(channel, len(payload)) == payload

    def test_corrects_one_burst(self):
        rng = random.Random(6)
        payload = [rng.randrange(2) for _ in range(64)]
        pipe = CodedPipe(depth=7)
        channel = pipe.encode(payload)
        for position in range(21, 28):  # 7-long burst
            channel[position] ^= 1
        assert pipe.decode(channel, len(payload)) == payload

    def test_tolerates_trailing_garbage_and_truncation(self):
        payload = [1, 0, 1, 1, 0, 0, 1, 0]
        pipe = CodedPipe(depth=7)
        channel = pipe.encode(payload)
        assert pipe.decode(channel + [1, 1, 1], len(payload)) == payload
        short = channel[:-2]  # losses at the tail
        decoded = pipe.decode(short, len(payload))
        assert len(decoded) == len(payload)
