"""Tests for the Algorithm 3 covert-channel protocol."""

import pytest

from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.channels.decoder import percent_ones, sample_bits
from repro.channels.protocol import CovertChannelProtocol, ProtocolConfig
from repro.common.errors import ProtocolError
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E5_2690


def trim_to_active_window(run, ts):
    """Drop observations taken after the sender's last bit ended."""
    if run.bit_boundaries:
        end = run.bit_boundaries[-1] + ts
        run.observations = [o for o in run.observations if o.timestamp <= end]
    return run


def make_protocol(algorithm=1, d=8, ts=6000.0, tr=600.0, rng=42, **kw):
    machine = Machine(INTEL_E5_2690, rng=rng)
    if algorithm == 1:
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=d
        )
    else:
        channel = NoSharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=d
        )
    return CovertChannelProtocol(
        machine, channel, ProtocolConfig(ts=ts, tr=tr, **kw)
    )


class TestProtocolConfig:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            ProtocolConfig(ts=0)
        with pytest.raises(ProtocolError):
            ProtocolConfig(tr=-1)
        with pytest.raises(ProtocolError):
            ProtocolConfig(chain_length=0)
        with pytest.raises(ProtocolError):
            ProtocolConfig(chain_set=-1)
        with pytest.raises(ProtocolError):
            ProtocolConfig(noise_events_per_mcycle=-0.5)

    def test_validate_for_target_flags_collision(self):
        config = ProtocolConfig(chain_set=3)
        config.validate_for_target(5)  # distinct sets are fine
        with pytest.raises(ProtocolError, match="chain_set 3"):
            config.validate_for_target(3)

    def test_samples_per_bit(self):
        assert ProtocolConfig(ts=6000, tr=600).samples_per_bit == 10.0

    def test_chain_must_avoid_target_set(self):
        machine = Machine(INTEL_E5_2690, rng=1)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 0, d=8  # target set 0 = chain set
        )
        with pytest.raises(ProtocolError):
            CovertChannelProtocol(machine, channel, ProtocolConfig())


class TestHyperThreadedRun:
    def test_observation_count_covers_message(self):
        protocol = make_protocol()
        run = protocol.run_hyper_threaded([0, 1] * 5)
        assert len(run.observations) >= 10 * 10  # >= samples_per_bit * bits

    def test_bit_boundaries_recorded(self):
        protocol = make_protocol()
        run = protocol.run_hyper_threaded([1, 0, 1])
        assert len(run.bit_boundaries) == 3
        assert run.bit_boundaries == sorted(run.bit_boundaries)
        # Boundaries spaced ~Ts apart.
        gaps = [
            b - a for a, b in zip(run.bit_boundaries, run.bit_boundaries[1:])
        ]
        assert all(5500 < g < 7500 for g in gaps)

    def test_alternating_bits_visible(self):
        protocol = make_protocol()
        run = protocol.run_hyper_threaded([0, 1] * 8)
        bits = sample_bits(run)
        ones = sum(bits)
        # Roughly half the samples decode as 1.
        assert 0.3 < ones / len(bits) < 0.7

    def test_all_ones_message(self):
        protocol = make_protocol()
        run = trim_to_active_window(protocol.run_hyper_threaded([1] * 8), 6000)
        assert percent_ones(run) > 0.8

    def test_all_zeros_message(self):
        protocol = make_protocol()
        run = trim_to_active_window(protocol.run_hyper_threaded([0] * 8), 6000)
        assert percent_ones(run) < 0.2

    def test_invalid_bits_rejected(self):
        protocol = make_protocol()
        with pytest.raises(ProtocolError):
            protocol.run_hyper_threaded([0, 2])

    def test_observations_timestamped_monotonically(self):
        protocol = make_protocol()
        run = protocol.run_hyper_threaded([1, 0] * 4)
        stamps = [o.timestamp for o in run.observations]
        assert stamps == sorted(stamps)

    def test_algorithm2_polarity(self):
        protocol = make_protocol(algorithm=2, d=5)
        run = trim_to_active_window(protocol.run_hyper_threaded([1] * 8), 6000)
        assert not run.hit_means_one
        assert percent_ones(run) > 0.5


class TestTimeSlicedRun:
    def test_contrast_between_constant_bits(self):
        results = {}
        for bit in (0, 1):
            protocol = make_protocol(ts=1e6, tr=1e5, rng=3)
            run = protocol.run_time_sliced(bit, samples=30, quantum=4e4)
            results[bit] = percent_ones(run)
        assert results[1] - results[0] > 0.5

    def test_sample_count_honored(self):
        protocol = make_protocol(ts=1e6, tr=1e5, rng=3)
        run = protocol.run_time_sliced(1, samples=25, quantum=4e4)
        assert len(run.observations) == 25

    def test_noise_processes_reduce_contrast(self):
        def contrast(noise):
            vals = {}
            for bit in (0, 1):
                protocol = make_protocol(ts=1e6, tr=1e5, rng=3)
                run = protocol.run_time_sliced(
                    bit, samples=30, quantum=4e4, noise_processes=noise
                )
                vals[bit] = percent_ones(run)
            return vals[1] - vals[0]

        assert contrast(0) > contrast(2)

    def test_invalid_bit_rejected(self):
        protocol = make_protocol()
        with pytest.raises(ProtocolError):
            protocol.run_time_sliced(5, samples=4, quantum=4e4)


class TestThreshold:
    def test_threshold_between_hit_and_miss_totals(self):
        protocol = make_protocol()
        threshold = protocol._threshold()
        l1 = INTEL_E5_2690.hierarchy.l1.hit_latency
        l2 = INTEL_E5_2690.hierarchy.l2.hit_latency
        overhead = INTEL_E5_2690.tsc.overhead_mean
        assert 8 * l1 + overhead < threshold < 7 * l1 + l2 + overhead
