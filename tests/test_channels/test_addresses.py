"""Tests for channel address layouts."""

import pytest

from repro.cache.config import CacheConfig
from repro.channels.addresses import (
    ChannelLayout,
    lines_for_set,
    private_memory_layout,
    shared_memory_layout,
)
from repro.common.errors import ConfigurationError


@pytest.fixture
def config():
    return CacheConfig(size=32 * 1024, ways=8, line_size=64)


class TestLinesForSet:
    def test_all_map_to_target_set(self, config):
        lines = lines_for_set(config, 5, 9)
        assert all(config.set_index(a) == 5 for a in lines)

    def test_distinct_tags(self, config):
        lines = lines_for_set(config, 5, 9)
        assert len({config.tag(a) for a in lines}) == 9

    def test_tag_base_shifts_range(self, config):
        a = lines_for_set(config, 5, 4, tag_base=0)
        b = lines_for_set(config, 5, 4, tag_base=100)
        assert not set(a) & set(b)

    def test_invalid_set_rejected(self, config):
        with pytest.raises(ConfigurationError):
            lines_for_set(config, 64, 1)

    def test_invalid_count_rejected(self, config):
        with pytest.raises(ConfigurationError):
            lines_for_set(config, 0, 0)


class TestSharedMemoryLayout:
    def test_n_plus_one_receiver_lines(self, config):
        layout = shared_memory_layout(config, 3)
        assert len(layout.receiver_lines) == 9

    def test_sender_shares_line_zero(self, config):
        """Algorithm 1's defining property."""
        layout = shared_memory_layout(config, 3)
        assert layout.sender_line == layout.receiver_lines[0]
        assert layout.probe_line == layout.sender_line

    def test_validates(self, config):
        shared_memory_layout(config, 3).validate()


class TestPrivateMemoryLayout:
    def test_n_receiver_lines(self, config):
        layout = private_memory_layout(config, 3)
        assert len(layout.receiver_lines) == 8

    def test_sender_line_disjoint(self, config):
        """Algorithm 2's defining property: no shared memory."""
        layout = private_memory_layout(config, 3)
        assert layout.sender_line not in layout.receiver_lines

    def test_sender_line_same_set(self, config):
        layout = private_memory_layout(config, 3)
        assert config.set_index(layout.sender_line) == 3

    def test_validates(self, config):
        private_memory_layout(config, 3).validate()


class TestLayoutValidation:
    def test_wrong_set_detected(self, config):
        layout = ChannelLayout(
            config=config,
            target_set=3,
            receiver_lines=[3 * 64, 4 * 64],  # second maps to set 4
            sender_line=3 * 64,
        )
        with pytest.raises(ConfigurationError):
            layout.validate()

    def test_duplicate_receiver_lines_detected(self, config):
        stride = config.num_sets * 64
        layout = ChannelLayout(
            config=config,
            target_set=3,
            receiver_lines=[3 * 64, 3 * 64],
            sender_line=3 * 64 + stride,
        )
        with pytest.raises(ConfigurationError):
            layout.validate()
