"""Tests for channel-capacity estimation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.channels.capacity import (
    BinaryChannelStats,
    bsc_capacity,
    capacity_bits_per_second,
)


class TestBinaryChannelStats:
    def test_from_bits(self):
        stats = BinaryChannelStats.from_bits([0, 0, 1, 1], [0, 1, 1, 0])
        assert (stats.n00, stats.n01, stats.n10, stats.n11) == (1, 1, 1, 1)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            BinaryChannelStats.from_bits([0], [0, 1])

    def test_perfect_channel_one_bit(self):
        stats = BinaryChannelStats.from_bits([0, 1] * 50, [0, 1] * 50)
        assert stats.mutual_information() == pytest.approx(1.0)

    def test_inverted_channel_also_one_bit(self):
        """Information theory does not care about polarity."""
        stats = BinaryChannelStats.from_bits([0, 1] * 50, [1, 0] * 50)
        assert stats.mutual_information() == pytest.approx(1.0)

    def test_useless_channel_zero_bits(self):
        stats = BinaryChannelStats.from_bits([0, 1] * 50, [0, 0] * 50)
        assert stats.mutual_information() == pytest.approx(0.0, abs=1e-9)

    def test_random_channel_near_zero(self):
        import random

        rng = random.Random(1)
        sent = [rng.randrange(2) for _ in range(2000)]
        decoded = [rng.randrange(2) for _ in range(2000)]
        stats = BinaryChannelStats.from_bits(sent, decoded)
        assert stats.mutual_information() < 0.01

    def test_empty(self):
        assert BinaryChannelStats(0, 0, 0, 0).mutual_information() == 0.0

    def test_crossover_probabilities(self):
        stats = BinaryChannelStats(n00=90, n01=10, n10=20, n11=80)
        p01, p10 = stats.crossover_probabilities()
        assert p01 == pytest.approx(0.1)
        assert p10 == pytest.approx(0.2)

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=200),
    )
    def test_mutual_information_bounds(self, a, b, c, d):
        stats = BinaryChannelStats(a, b, c, d)
        mi = stats.mutual_information()
        assert -1e-9 <= mi <= 1.0 + 1e-9


class TestBSCCapacity:
    def test_noiseless(self):
        assert bsc_capacity(0.0) == pytest.approx(1.0)
        assert bsc_capacity(1.0) == pytest.approx(1.0)

    def test_useless_at_half(self):
        assert bsc_capacity(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_known_value(self):
        # 1 - H(0.11) ~= 0.5 is the textbook example.
        assert bsc_capacity(0.11) == pytest.approx(0.5, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            bsc_capacity(1.5)

    def test_empirical_mi_below_bsc_bound(self):
        """The symmetric-channel bound dominates any empirical MI with
        the same average flip rate (uniform input)."""
        stats = BinaryChannelStats(n00=45, n01=5, n10=5, n11=45)
        flip = 10 / 100
        assert stats.mutual_information() <= bsc_capacity(flip) + 1e-9


class TestCapacityRate:
    def test_scaling(self):
        stats = BinaryChannelStats.from_bits([0, 1] * 50, [0, 1] * 50)
        kbps = capacity_bits_per_second(stats, 6000.0, 3.8)
        assert kbps == pytest.approx(3.8e9 / 6000.0)

    def test_validation(self):
        stats = BinaryChannelStats(1, 0, 0, 1)
        with pytest.raises(ValueError):
            capacity_bits_per_second(stats, 0.0, 3.8)
