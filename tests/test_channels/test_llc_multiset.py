"""Tests for the LLC cross-core channel and the multi-set channel."""

import random

import pytest

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.multicore import MultiCoreConfig, MultiCoreSystem
from repro.channels.llc import LLCChannel
from repro.channels.multiset import ParallelLRUChannel
from repro.common.errors import ProtocolError
from repro.sim.specs import INTEL_E5_2690


def llc_system(policy="lru", rng=3):
    llc = CacheConfig(
        name="LLC", size=2 * 1024 * 1024, ways=16, line_size=64,
        policy=policy, hit_latency=40.0,
    )
    return MultiCoreSystem(MultiCoreConfig(llc=llc), rng=rng)


_message_rng = random.Random(7)
MESSAGE = [_message_rng.randrange(2) for _ in range(48)]


class TestLLCChannel:
    def test_lru_llc_perfect_transfer(self):
        channel = LLCChannel(llc_system("lru"), target_set=3, rng=5)
        run = channel.transfer(MESSAGE)
        assert run.accuracy() == 1.0

    def test_tree_plru_llc_mostly_correct(self):
        channel = LLCChannel(llc_system("tree-plru"), target_set=3, rng=5)
        run = channel.transfer(MESSAGE)
        assert run.accuracy() > 0.85

    def test_srrip_llc_degrades_to_chance(self):
        """The policy-swap defense, one level down: SRRIP's fill/hit
        asymmetry breaks the LRU-order assumption and the channel
        decodes at chance level."""
        channel = LLCChannel(llc_system("srrip"), target_set=3, rng=5)
        run = channel.transfer(MESSAGE)
        assert 0.3 < run.accuracy() < 0.75

    def test_random_llc_degrades_to_chance(self):
        channel = LLCChannel(llc_system("random"), target_set=3, rng=5)
        run = channel.transfer(MESSAGE)
        assert 0.3 < run.accuracy() < 0.75

    def test_sender_pays_private_misses(self):
        """The stealth cost vs the L1 channel (Section III): every LLC
        encode requires sender-side L1/L2 self-eviction."""
        channel = LLCChannel(llc_system("lru"), target_set=3, rng=5)
        run = channel.transfer(MESSAGE)
        assert run.sender_private_misses == sum(MESSAGE)

    def test_probe_latencies_bimodal(self):
        channel = LLCChannel(llc_system("lru"), target_set=3, rng=5)
        run = channel.transfer([0, 1] * 12)
        zeros = [l for l, b in zip(run.latencies, run.sent_bits) if b == 0]
        ones = [l for l, b in zip(run.latencies, run.sent_bits) if b == 1]
        assert max(zeros) < min(ones)

    def test_threshold_separates(self):
        channel = LLCChannel(llc_system("lru"), target_set=3, rng=5)
        run = channel.transfer([0, 1] * 12)
        for latency, bit in zip(run.latencies, run.sent_bits):
            assert (latency > run.threshold) == (bit == 1)

    def test_validation(self):
        system = llc_system()
        with pytest.raises(ProtocolError):
            LLCChannel(system, target_set=1 << 20)
        with pytest.raises(ProtocolError):
            LLCChannel(system, target_set=1, d=0)
        channel = LLCChannel(system, target_set=1)
        run = channel.transfer([])
        with pytest.raises(ProtocolError):
            channel.sender_encode(3, run)


class TestParallelLRUChannel:
    def _hierarchy(self):
        return CacheHierarchy(INTEL_E5_2690.hierarchy, rng=4)

    def test_roundtrip_bytes(self):
        channel = ParallelLRUChannel(self._hierarchy(), lanes=8, d=8)
        payload = b"LRU states leak!"
        result = channel.send_bytes(payload)
        assert ParallelLRUChannel.decode_bytes(result, len(payload)) == payload
        assert result.bit_accuracy() == 1.0

    @pytest.mark.parametrize("lanes", [1, 16, 63])
    def test_various_widths(self, lanes):
        channel = ParallelLRUChannel(self._hierarchy(), lanes=lanes, d=8)
        payload = b"xy"
        result = channel.send_bytes(payload)
        assert ParallelLRUChannel.decode_bytes(result, 2) == payload

    def test_symbol_size_enforced(self):
        channel = ParallelLRUChannel(self._hierarchy(), lanes=4)
        with pytest.raises(ProtocolError):
            channel.transfer_symbol([1, 0])

    def test_lane_bounds_enforced(self):
        with pytest.raises(ProtocolError):
            ParallelLRUChannel(self._hierarchy(), lanes=64, first_set=1)
        with pytest.raises(ProtocolError):
            ParallelLRUChannel(self._hierarchy(), lanes=0)

    def test_lanes_are_independent(self):
        """Flipping one lane's bit must not disturb neighbours."""
        channel = ParallelLRUChannel(self._hierarchy(), lanes=4, d=8)
        result = channel.transfer(
            [[0, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 0]]
        )
        assert result.received_symbols == result.sent_symbols

    def test_accuracy_metrics(self):
        channel = ParallelLRUChannel(self._hierarchy(), lanes=4, d=8)
        result = channel.transfer([[1, 0, 1, 0]] * 4)
        assert result.symbol_accuracy() == 1.0
        assert result.bit_accuracy() == 1.0

    def test_throughput_scales_with_lanes(self):
        """The point of Section IV's parallelism remark: M lanes move
        M bits per receiver round."""
        payload = bytes(range(32))
        narrow = ParallelLRUChannel(self._hierarchy(), lanes=8, d=8)
        wide = ParallelLRUChannel(self._hierarchy(), lanes=32, d=8)
        rounds_narrow = len(narrow.send_bytes(payload).sent_symbols)
        rounds_wide = len(wide.send_bytes(payload).sent_symbols)
        assert rounds_narrow == 4 * rounds_wide
