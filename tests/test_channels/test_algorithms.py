"""Tests for Algorithms 1 and 2, including white-box single-bit transfer.

The white-box tests drive the channels directly against a hierarchy with
the paper's exact access order (init → encode → decode → probe) and
assert the probe observes the transmitted bit, for true LRU where the
behaviour is deterministic, and statistically for Tree-PLRU.
"""

import dataclasses

import pytest

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.common.errors import ProtocolError
from repro.sim.specs import INTEL_E5_2690


def make_hierarchy(policy="lru"):
    base = INTEL_E5_2690.hierarchy
    l1 = dataclasses.replace(base.l1, policy=policy)
    return CacheHierarchy(dataclasses.replace(base, l1=l1), rng=5)


def transfer_bit(hierarchy, channel, bit, warm=True):
    """One init→encode→decode→probe round; returns decoded bit."""
    if warm and channel.hit_means_one:
        # Algorithm 1 assumes line 0 is cached before the attack.
        hierarchy.load(channel.probe_address, count=False)
    if warm and not channel.hit_means_one:
        # Algorithm 2: sender's line resident, per the paper's example.
        hierarchy.load(channel.layout.sender_line, thread_id=1,
                       address_space=1, count=False)
    for address in channel.init_addresses():
        hierarchy.load(address, thread_id=0)
    for address in channel.sender_addresses(bit):
        hierarchy.load(address, thread_id=1, address_space=1)
    for address in channel.decode_addresses():
        hierarchy.load(address, thread_id=0)
    outcome = hierarchy.load(channel.probe_address, thread_id=0)
    return channel.decode_bit(outcome.l1_hit)


class TestChannelConstruction:
    def test_alg1_phases_partition_lines(self):
        config = INTEL_E5_2690.hierarchy.l1
        ch = SharedMemoryLRUChannel.build(config, 1, d=3)
        assert len(ch.init_addresses()) == 3
        assert len(ch.decode_addresses()) == 6
        assert (
            ch.init_addresses() + ch.decode_addresses()
            == ch.layout.receiver_lines
        )

    def test_alg2_phases_partition_lines(self):
        config = INTEL_E5_2690.hierarchy.l1
        ch = NoSharedMemoryLRUChannel.build(config, 1, d=3)
        assert len(ch.init_addresses()) == 3
        assert len(ch.decode_addresses()) == 5

    def test_d_range_enforced(self):
        config = INTEL_E5_2690.hierarchy.l1
        with pytest.raises(ProtocolError):
            SharedMemoryLRUChannel.build(config, 1, d=0)
        with pytest.raises(ProtocolError):
            SharedMemoryLRUChannel.build(config, 1, d=9)

    def test_sender_addresses_bit_dependent(self):
        config = INTEL_E5_2690.hierarchy.l1
        for cls in (SharedMemoryLRUChannel, NoSharedMemoryLRUChannel):
            ch = cls.build(config, 1)
            assert ch.sender_addresses(0) == []
            assert len(ch.sender_addresses(1)) == 1

    def test_invalid_bit_rejected(self):
        ch = SharedMemoryLRUChannel.build(INTEL_E5_2690.hierarchy.l1, 1)
        with pytest.raises(ProtocolError):
            ch.sender_addresses(2)

    def test_polarity(self):
        config = INTEL_E5_2690.hierarchy.l1
        alg1 = SharedMemoryLRUChannel.build(config, 1)
        alg2 = NoSharedMemoryLRUChannel.build(config, 1)
        assert alg1.decode_bit(probe_hit=True) == 1
        assert alg1.decode_bit(probe_hit=False) == 0
        assert alg2.decode_bit(probe_hit=True) == 0
        assert alg2.decode_bit(probe_hit=False) == 1


class TestAlgorithm1WhiteBox:
    """Paper Section IV-A worked example, N=8, d=8, true LRU."""

    def test_bit_zero_evicts_line0(self):
        hierarchy = make_hierarchy("lru")
        ch = SharedMemoryLRUChannel.build(hierarchy.config.l1, 1, d=8)
        assert transfer_bit(hierarchy, ch, 0) == 0

    def test_bit_one_keeps_line0(self):
        hierarchy = make_hierarchy("lru")
        ch = SharedMemoryLRUChannel.build(hierarchy.config.l1, 1, d=8)
        assert transfer_bit(hierarchy, ch, 1) == 1

    @pytest.mark.parametrize("d", [2, 4, 6, 8])
    def test_true_lru_d_at_least_two(self, d):
        hierarchy = make_hierarchy("lru")
        ch = SharedMemoryLRUChannel.build(hierarchy.config.l1, 1, d=d)
        for bit in (0, 1, 1, 0, 1, 0, 0, 1):
            assert transfer_bit(hierarchy, ch, bit) == bit

    def test_d1_fails_under_strict_ordering(self):
        """With d=1 and a strictly sandwiched encode, the receiver's
        9-d = 8 remaining accesses all postdate the sender's refresh of
        line 0, so even true LRU evicts it: bit 1 decodes as 0.  (In
        hyper-threaded runs the sender's accesses interleave *into* the
        decode phase, which is why the paper sees d=1 still work.)"""
        hierarchy = make_hierarchy("lru")
        ch = SharedMemoryLRUChannel.build(hierarchy.config.l1, 1, d=1)
        assert transfer_bit(hierarchy, ch, 1) == 0

    def test_sender_encode_is_cache_hit(self):
        """The paper's headline property: encoding needs no miss."""
        hierarchy = make_hierarchy("lru")
        ch = SharedMemoryLRUChannel.build(hierarchy.config.l1, 1, d=8)
        hierarchy.load(ch.probe_address, count=False)
        for address in ch.init_addresses():
            hierarchy.load(address)
        outcome = hierarchy.load(
            ch.sender_addresses(1)[0], thread_id=1, address_space=1
        )
        assert outcome.l1_hit

    def test_tree_plru_mostly_correct(self):
        hierarchy = make_hierarchy("tree-plru")
        ch = SharedMemoryLRUChannel.build(hierarchy.config.l1, 1, d=8)
        bits = [0, 1] * 20
        correct = sum(
            1 for b in bits if transfer_bit(hierarchy, ch, b) == b
        )
        assert correct / len(bits) > 0.8


class TestAlgorithm2WhiteBox:
    def test_true_lru_steady_state(self):
        hierarchy = make_hierarchy("lru")
        ch = NoSharedMemoryLRUChannel.build(hierarchy.config.l1, 1, d=4)
        # Warm the receiver's lines to reach steady state first.
        for address in ch.layout.receiver_lines:
            hierarchy.load(address, count=False)
        bits = [0, 1, 0, 0, 1, 1, 0, 1]
        decoded = [transfer_bit(hierarchy, ch, b) for b in bits]
        correct = sum(1 for b, r in zip(bits, decoded) if b == r)
        assert correct / len(bits) >= 0.75

    def test_sender_never_touches_receiver_lines(self):
        ch = NoSharedMemoryLRUChannel.build(INTEL_E5_2690.hierarchy.l1, 1)
        assert ch.sender_addresses(1)[0] not in ch.layout.receiver_lines
