"""Tests for end-to-end channel evaluation."""

import pytest

from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.evaluation import (
    evaluate_hyper_threaded,
    nominal_rate_bps,
    random_message,
    sweep_error_rate,
)
from repro.channels.protocol import ProtocolConfig
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E5_2690


class TestRandomMessage:
    def test_length(self):
        assert len(random_message(128, rng=1)) == 128

    def test_bits_only(self):
        assert set(random_message(64, rng=1)) <= {0, 1}

    def test_deterministic(self):
        assert random_message(32, rng=5) == random_message(32, rng=5)

    def test_roughly_balanced(self):
        msg = random_message(400, rng=2)
        assert 120 < sum(msg) < 280


class TestNominalRate:
    def test_ts_6000_on_e5(self):
        rate = nominal_rate_bps(INTEL_E5_2690, 6000)
        assert rate == pytest.approx(633_333, rel=0.01)


class TestEvaluateHyperThreaded:
    def _evaluate(self, decoder="runlength", rng=42):
        machine = Machine(INTEL_E5_2690, rng=rng)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=8
        )
        message = random_message(48, rng=7)
        return evaluate_hyper_threaded(
            machine,
            channel,
            ProtocolConfig(ts=6000, tr=600),
            message,
            repeats=2,
            decoder=decoder,
        )

    def test_low_error_rate(self):
        evaluation = self._evaluate()
        assert evaluation.error_rate < 0.30

    def test_window_decoder_more_accurate(self):
        run_length = self._evaluate("runlength")
        window = self._evaluate("window")
        assert window.error_rate <= run_length.error_rate

    def test_rate_near_nominal(self):
        evaluation = self._evaluate()
        nominal = nominal_rate_bps(INTEL_E5_2690, 6000)
        assert 0.5 * nominal < evaluation.transmission_rate_bps <= 1.05 * nominal

    def test_kbps_property(self):
        evaluation = self._evaluate()
        assert evaluation.transmission_rate_kbps == pytest.approx(
            evaluation.transmission_rate_bps / 1000.0
        )

    def test_unknown_decoder(self):
        machine = Machine(INTEL_E5_2690, rng=1)
        channel = SharedMemoryLRUChannel.build(machine.spec.hierarchy.l1, 1)
        with pytest.raises(ValueError):
            evaluate_hyper_threaded(
                machine, channel, ProtocolConfig(), [1], decoder="nope"
            )

    def test_received_bits_close_in_length(self):
        evaluation = self._evaluate()
        sent = len(evaluation.sent_bits)
        assert abs(len(evaluation.received_bits) - sent) <= sent * 0.3


class TestSweep:
    def test_averages_across_trials(self):
        result = sweep_error_rate(
            machine_factory=lambda: Machine(INTEL_E5_2690, rng=11),
            channel_factory=lambda m: SharedMemoryLRUChannel.build(
                m.spec.hierarchy.l1, 1, d=8
            ),
            config=ProtocolConfig(ts=6000, tr=600),
            message_length=24,
            repeats=1,
            trials=2,
            rng=5,
        )
        assert 0.0 <= result.error_rate < 0.5
        assert result.transmission_rate_bps > 0
