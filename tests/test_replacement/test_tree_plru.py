"""Tests for Tree-PLRU, bit-exact against hand-computed tree states."""

import pytest

from repro.common.errors import ConfigurationError
from repro.replacement.tree_plru import TreePLRU


class TestTreePLRUStructure:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            TreePLRU(6)

    def test_state_bits_is_n_minus_one(self):
        assert TreePLRU(8).state_bits == 7
        assert TreePLRU(4).state_bits == 3
        assert TreePLRU(2).state_bits == 1

    def test_power_on_victim_is_way_zero(self):
        assert TreePLRU(8).victim() == 0


class TestTreePLRUTwoWay:
    """2-way Tree-PLRU is a single bit — exhaustively checkable."""

    def test_touch_zero_points_victim_at_one(self):
        tree = TreePLRU(2)
        tree.touch(0)
        assert tree.victim() == 1

    def test_touch_one_points_victim_at_zero(self):
        tree = TreePLRU(2)
        tree.touch(1)
        assert tree.victim() == 0

    def test_alternating_touches(self):
        tree = TreePLRU(2)
        for way in (0, 1, 0, 1, 0):
            tree.touch(way)
        assert tree.victim() == 1


class TestTreePLRUFourWay:
    def test_sequential_fill_victim(self):
        tree = TreePLRU(4)
        for way in range(4):
            tree.touch(way)
        assert tree.victim() == 0

    def test_hand_computed_state(self):
        # Touch way 2: path nodes are root (node 1) and node 3.
        # Root must point left (0), node 3 must point right (1).
        tree = TreePLRU(4)
        tree.touch(2)
        assert tree.node_bit(1) == 0
        assert tree.node_bit(3) == 1
        assert tree.victim() == 0  # root->left, node2 default left

    def test_victim_never_most_recent(self):
        tree = TreePLRU(4)
        for way in (3, 1, 2, 0, 2):
            tree.touch(way)
            assert tree.victim() != way


class TestTreePLRUEightWay:
    def test_sequential_order_victim_way0(self):
        tree = TreePLRU(8)
        for way in range(8):
            tree.touch(way)
        assert tree.victim() == 0

    def test_sender_refresh_redirects_victim_to_other_half(self):
        # The mechanism behind Algorithm 1: after 0..7 in order the
        # victim is way 0; the sender's touch of way 0 flips the root,
        # sending the victim into the 4-7 subtree.
        tree = TreePLRU(8)
        for way in range(8):
            tree.touch(way)
        tree.touch(0)
        assert tree.victim() == 4

    def test_plru_is_not_true_lru(self):
        # The defining approximation: the least-recently-used way is not
        # always the victim.  After 0..7 then 0,1,2,3, true LRU would
        # evict way 4; Tree-PLRU picks from the other subtree too.
        tree = TreePLRU(8)
        for way in list(range(8)) + [0, 1, 2, 3]:
            tree.touch(way)
        assert tree.victim() == 4  # here PLRU agrees...
        tree.touch(4)
        # ...but after touching 4, true LRU says 5; PLRU flips to the
        # left half entirely.
        assert tree.victim() != 5

    def test_invalid_ways_fill_first(self):
        tree = TreePLRU(8)
        tree.touch(3)
        valid = [True] * 8
        valid[6] = False
        assert tree.victim(valid) == 6


class TestTreePLRUSnapshot:
    def test_roundtrip(self):
        tree = TreePLRU(8)
        for way in (1, 5, 2):
            tree.touch(way)
        snap = tree.state_snapshot()
        tree.touch(7)
        tree.state_restore(snap)
        assert tree.state_snapshot() == snap

    def test_bad_snapshot_length(self):
        with pytest.raises(ValueError):
            TreePLRU(8).state_restore((0, 1))

    def test_bad_snapshot_values(self):
        with pytest.raises(ValueError):
            TreePLRU(4).state_restore((0, 2, 0, 0))

    def test_node_bit_bounds(self):
        tree = TreePLRU(4)
        with pytest.raises(ValueError):
            tree.node_bit(0)
        with pytest.raises(ValueError):
            tree.node_bit(4)
