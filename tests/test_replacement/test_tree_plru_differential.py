"""Differential testing of Tree-PLRU against an independent rewrite.

The heap-array implementation in ``repro.replacement.tree_plru`` is the
load-bearing model for most of the reproduction.  This file re-derives
Tree-PLRU from scratch as an explicit recursive binary tree (no shared
code, different data layout, different traversal style) and drives both
through random histories with hypothesis: victims and full state must
agree everywhere.
"""

from hypothesis import given, settings, strategies as st

from repro.replacement.tree_plru import TreePLRU


class _Node:
    """One internal node: 0 = left subtree less recently used."""

    __slots__ = ("bit", "left", "right", "low", "high")

    def __init__(self, low, high):
        self.bit = 0
        self.low = low
        self.high = high
        if high - low > 2:
            mid = (low + high) // 2
            self.left = _Node(low, mid)
            self.right = _Node(mid, high)
        else:
            self.left = None
            self.right = None


class RecursiveTreePLRU:
    """Independent Tree-PLRU: explicit node objects, recursive walks."""

    def __init__(self, ways):
        self.ways = ways
        self.root = _Node(0, ways) if ways > 1 else None

    def touch(self, way):
        node = self.root
        while node is not None:
            mid = (node.low + node.high) // 2
            if way < mid:
                node.bit = 1  # right side is now less recently used
                node = node.left
            else:
                node.bit = 0
                node = node.right

    def victim(self):
        if self.root is None:
            return 0
        node = self.root
        while True:
            mid = (node.low + node.high) // 2
            if node.bit == 0:
                nxt = node.left
                if nxt is None:
                    return node.low
            else:
                nxt = node.right
                if nxt is None:
                    return mid
            node = nxt


@given(
    ways=st.sampled_from([2, 4, 8, 16]),
    touches=st.lists(st.integers(min_value=0, max_value=1023), max_size=100),
)
@settings(max_examples=200, deadline=None)
def test_victims_agree_on_random_histories(ways, touches):
    array_impl = TreePLRU(ways)
    tree_impl = RecursiveTreePLRU(ways)
    for raw in touches:
        way = raw % ways
        array_impl.touch(way)
        tree_impl.touch(way)
        assert array_impl.victim() == tree_impl.victim(), (
            f"divergence after touching way {way} (ways={ways})"
        )


@given(
    touches=st.lists(st.integers(min_value=0, max_value=7), max_size=60),
)
@settings(max_examples=150, deadline=None)
def test_victim_stability_between_touches(touches):
    """Both implementations must be pure in victim() (no drift)."""
    array_impl = TreePLRU(8)
    tree_impl = RecursiveTreePLRU(8)
    for way in touches:
        array_impl.touch(way)
        tree_impl.touch(way)
        for _ in range(3):
            assert array_impl.victim() == tree_impl.victim()


def test_worked_example_agreement():
    """The paper's Algorithm-1 example sequence, on both implementations."""
    array_impl = TreePLRU(8)
    tree_impl = RecursiveTreePLRU(8)
    for way in list(range(8)) + [0]:
        array_impl.touch(way)
        tree_impl.touch(way)
    assert array_impl.victim() == tree_impl.victim() == 4
