"""Tests for Bit-PLRU (MRU) replacement."""

import pytest

from repro.replacement.bit_plru import BitPLRU


class TestBitPLRU:
    def test_power_on_victim_is_way_zero(self):
        assert BitPLRU(8).victim() == 0

    def test_touch_sets_mru_bit(self):
        policy = BitPLRU(4)
        policy.touch(2)
        assert policy.mru_bit(2) == 1

    def test_victim_is_lowest_zero_bit(self):
        policy = BitPLRU(4)
        policy.touch(0)
        policy.touch(1)
        assert policy.victim() == 2

    def test_saturation_resets_all_bits(self):
        # Paper Section II-B: "Once all the ways have the MRU-bit set to
        # 1, all the MRU-bits are reset to 0" — including the accessed
        # way.  This semantic drives Table I's 100%/99% convergence.
        policy = BitPLRU(4)
        for way in range(4):
            policy.touch(way)
        assert policy.state_snapshot() == (0, 0, 0, 0)
        assert policy.victim() == 0

    def test_partial_saturation_keeps_bits(self):
        policy = BitPLRU(4)
        for way in (0, 1, 2):
            policy.touch(way)
        assert policy.state_snapshot() == (1, 1, 1, 0)
        assert policy.victim() == 3

    def test_state_bits_is_n(self):
        assert BitPLRU(8).state_bits == 8

    def test_invalid_ways_fill_first(self):
        policy = BitPLRU(4)
        policy.touch(0)
        valid = [True, True, False, True]
        assert policy.victim(valid) == 2

    def test_snapshot_roundtrip(self):
        policy = BitPLRU(4)
        policy.touch(1)
        snap = policy.state_snapshot()
        policy.touch(3)
        policy.state_restore(snap)
        assert policy.state_snapshot() == snap

    def test_bad_snapshot(self):
        with pytest.raises(ValueError):
            BitPLRU(4).state_restore((0, 1, 2, 0))

    def test_all_ones_snapshot_falls_back_to_way0(self):
        policy = BitPLRU(4)
        policy.state_restore((1, 1, 1, 1))
        assert policy.victim() == 0

    def test_single_way(self):
        policy = BitPLRU(1)
        policy.touch(0)
        assert policy.victim() == 0
