"""Tests for DAWG-style partitioned PLRU."""

import pytest

from repro.common.errors import ConfigurationError
from repro.replacement.partitioned import PartitionedPLRU


class TestPartitionedPLRU:
    def test_way_counts_must_sum(self):
        with pytest.raises(ConfigurationError):
            PartitionedPLRU(8, {0: 4, 1: 2})

    def test_default_single_domain(self):
        policy = PartitionedPLRU(8)
        assert policy.domain_of(0) == 0
        assert policy.domain_of(7) == 0

    def test_domain_assignment(self):
        policy = PartitionedPLRU(8, {0: 4, 1: 4})
        assert policy.domain_of(3) == 0
        assert policy.domain_of(4) == 1

    def test_victim_confined_to_domain(self):
        policy = PartitionedPLRU(8, {0: 4, 1: 4})
        for _ in range(5):
            assert 0 <= policy.victim_for(0) < 4
            assert 4 <= policy.victim_for(1) < 8

    def test_isolation_of_replacement_state(self):
        """The DAWG security property (Section IX-B): one domain's
        accesses never change another domain's victim choice."""
        policy = PartitionedPLRU(8, {0: 4, 1: 4})
        victim_before = policy.victim_for(1)
        # Domain 0 hammers its ways (this is an attacker's sender).
        for way in (0, 1, 2, 3, 0, 2, 1, 3):
            policy.touch(way)
        assert policy.victim_for(1) == victim_before

    def test_own_domain_state_still_works(self):
        policy = PartitionedPLRU(8, {0: 4, 1: 4})
        for way in (4, 5, 6, 7):
            policy.touch(way)
        assert policy.victim_for(1) == 4

    def test_unknown_domain(self):
        with pytest.raises(ConfigurationError):
            PartitionedPLRU(8, {0: 8}).victim_for(3)

    def test_valid_mask_sliced_per_domain(self):
        policy = PartitionedPLRU(8, {0: 4, 1: 4})
        valid = [True] * 8
        valid[6] = False
        assert policy.victim_for(1, valid) == 6
        # Domain 0 ignores domain 1's invalid way.
        assert 0 <= policy.victim_for(0, valid) < 4

    def test_state_bits_sum(self):
        policy = PartitionedPLRU(8, {0: 4, 1: 4})
        assert policy.state_bits == 3 + 3

    def test_snapshot_roundtrip(self):
        policy = PartitionedPLRU(8, {0: 4, 1: 4})
        policy.touch(1)
        policy.touch(6)
        snap = policy.state_snapshot()
        policy.touch(0)
        policy.state_restore(snap)
        assert policy.state_snapshot() == snap

    def test_partition_sizes_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            PartitionedPLRU(8, {0: 5, 1: 3})

    def test_reset(self):
        policy = PartitionedPLRU(8, {0: 4, 1: 4})
        policy.touch(5)
        policy.reset()
        assert policy.victim_for(1) == 4
