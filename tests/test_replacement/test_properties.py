"""Property-based tests: invariants every replacement policy must hold."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.replacement import (
    POLICY_REGISTRY,
    BitPLRU,
    FIFO,
    SRRIP,
    TreePLRU,
    TrueLRU,
    make_policy,
)

DETERMINISTIC_POLICIES = ["lru", "tree-plru", "bit-plru", "fifo", "srrip"]
ALL_POLICIES = DETERMINISTIC_POLICIES + ["random"]

WAYS = 8
touch_sequences = st.lists(
    st.integers(min_value=0, max_value=WAYS - 1), max_size=64
)


def build(name: str):
    kwargs = {"rng": 1} if name == "random" else {}
    return make_policy(name, WAYS, **kwargs)


@pytest.mark.parametrize("name", ALL_POLICIES)
class TestUniversalInvariants:
    @given(seq=touch_sequences)
    @settings(max_examples=40)
    def test_victim_in_range(self, name, seq):
        policy = build(name)
        for way in seq:
            policy.touch(way)
        assert 0 <= policy.victim() < WAYS

    @given(seq=touch_sequences)
    @settings(max_examples=40)
    def test_invalid_way_always_preferred(self, name, seq):
        policy = build(name)
        for way in seq:
            policy.touch(way)
        valid = [True] * WAYS
        valid[5] = False
        assert policy.victim(valid) == 5

    @given(seq=touch_sequences)
    @settings(max_examples=40)
    def test_lowest_invalid_way_wins(self, name, seq):
        policy = build(name)
        for way in seq:
            policy.touch(way)
        valid = [True, False, True, False, True, True, True, True]
        assert policy.victim(valid) == 1

    def test_registry_contains_policy(self, name):
        assert name in POLICY_REGISTRY


@pytest.mark.parametrize("name", DETERMINISTIC_POLICIES)
class TestDeterministicInvariants:
    @given(seq=touch_sequences)
    @settings(max_examples=40)
    def test_victim_is_pure(self, name, seq):
        """victim() must not mutate state for deterministic policies."""
        policy = build(name)
        for way in seq:
            policy.touch(way)
        first = policy.victim()
        assert policy.victim() == first

    @given(seq=touch_sequences)
    @settings(max_examples=40)
    def test_snapshot_restore_roundtrip(self, name, seq):
        policy = build(name)
        for way in seq:
            policy.touch(way)
        snap = policy.state_snapshot()
        victim = policy.victim()
        policy.touch((victim + 1) % WAYS)
        policy.state_restore(snap)
        assert policy.state_snapshot() == snap
        assert policy.victim() == victim

    @given(seq=touch_sequences)
    @settings(max_examples=40)
    def test_same_history_same_state(self, name, seq):
        a, b = build(name), build(name)
        for way in seq:
            a.touch(way)
            b.touch(way)
        assert a.state_snapshot() == b.state_snapshot()


@pytest.mark.parametrize("name", ["lru", "tree-plru", "bit-plru"])
class TestLRUFamilyInvariants:
    """Properties specific to the recency-tracking (leaking) policies."""

    @given(seq=st.lists(st.integers(min_value=0, max_value=WAYS - 1), min_size=1, max_size=32))
    @settings(max_examples=40)
    def test_just_touched_way_never_victim(self, name, seq):
        policy = build(name)
        for way in seq:
            policy.touch(way)
        assert policy.victim() != seq[-1]

    @given(way=st.integers(min_value=0, max_value=WAYS - 1))
    @settings(max_examples=20)
    def test_hits_change_state(self, name, way):
        """The leaking transition: a *hit* updates the state (contrast
        with FIFO, where it does not)."""
        policy = build(name)
        for w in range(WAYS):
            policy.touch(w)
        before = policy.state_snapshot()
        policy.touch(way)
        # Either the state changed, or the way was already the most
        # recently used (touching it again is idempotent).
        if way != WAYS - 1:
            assert policy.state_snapshot() != before


class TestLRUvsPLRUDivergence:
    def test_plru_approximates_lru(self):
        """Quantify Table I's root cause: Tree-PLRU disagrees with true
        LRU on a noticeable fraction of random histories."""
        import random

        rng = random.Random(9)
        disagreements = 0
        trials = 300
        for _ in range(trials):
            lru, tree = TrueLRU(WAYS), TreePLRU(WAYS)
            for _ in range(24):
                way = rng.randrange(WAYS)
                lru.touch(way)
                tree.touch(way)
            if lru.victim() != tree.victim():
                disagreements += 1
        assert 0.2 < disagreements / trials < 0.95

    def test_fifo_ignores_reuse_lru_does_not(self):
        lru, fifo = TrueLRU(4), FIFO(4)
        for way in range(4):
            lru.touch(way)
            fifo.on_fill(way)
        # Reuse way 0 heavily: LRU protects it, FIFO doesn't care.
        for _ in range(3):
            lru.touch(0)
            fifo.touch(0)
        assert lru.victim() == 1
        assert fifo.victim() == 0
