"""Tests for the exact-LRU policy."""

import pytest

from repro.common.errors import ConfigurationError
from repro.replacement.true_lru import TrueLRU


class TestTrueLRU:
    def test_power_on_victim_is_last_way(self):
        assert TrueLRU(8).victim() == 7

    def test_touch_moves_to_front(self):
        lru = TrueLRU(4)
        lru.touch(3)
        assert lru.age_of(3) == 0

    def test_victim_is_least_recent(self):
        lru = TrueLRU(4)
        for way in (0, 1, 2, 3):
            lru.touch(way)
        assert lru.victim() == 0

    def test_sequence_1_always_evicts_line_0_way(self):
        # The Section IV-C claim: under true LRU the way holding the
        # oldest line is always the victim.
        lru = TrueLRU(8)
        for way in range(8):
            lru.touch(way)
        assert lru.victim() == 0
        lru.touch(0)  # sender refreshes line 0
        assert lru.victim() == 1

    def test_invalid_way_first(self):
        lru = TrueLRU(4)
        lru.touch(3)
        valid = [True, False, True, True]
        assert lru.victim(valid) == 1

    def test_invalid_mask_length_checked(self):
        with pytest.raises(ConfigurationError):
            TrueLRU(4).victim([True, True])

    def test_way_out_of_range(self):
        with pytest.raises(ConfigurationError):
            TrueLRU(4).touch(4)

    def test_zero_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            TrueLRU(0)

    def test_snapshot_roundtrip(self):
        lru = TrueLRU(4)
        lru.touch(2)
        snap = lru.state_snapshot()
        lru.touch(0)
        lru.state_restore(snap)
        assert lru.state_snapshot() == snap

    def test_bad_snapshot_rejected(self):
        with pytest.raises(ValueError):
            TrueLRU(4).state_restore((0, 0, 1, 2))

    def test_state_bits(self):
        assert TrueLRU(8).state_bits == 8 * 3
        assert TrueLRU(4).state_bits == 4 * 2
        assert TrueLRU(1).state_bits == 1

    def test_age_ordering_full_history(self):
        lru = TrueLRU(4)
        for way in (2, 0, 3, 1):
            lru.touch(way)
        assert [lru.age_of(w) for w in (1, 3, 0, 2)] == [0, 1, 2, 3]

    def test_reset(self):
        lru = TrueLRU(4)
        lru.touch(3)
        lru.reset()
        assert lru.victim() == 3
