"""Tests for the exhaustive Sequence-1 state-space analysis."""

import pytest

from repro.common.errors import ConfigurationError
from repro.replacement.analysis import sequence1_worst_case


class TestSequence1WorstCase:
    def test_true_lru_always_one_iteration(self):
        """Section IV-C: 'true LRU will always evict line 0'."""
        result = sequence1_worst_case("lru", ways=4)
        assert result.worst_iterations == 1
        assert result.histogram == {1: result.states_checked}

    def test_tree_plru_bounded_by_three(self):
        """The exact bound behind Table I's 99.2% at 3 iterations."""
        result = sequence1_worst_case("tree-plru", ways=8)
        assert result.worst_iterations == 3
        assert result.claim_holds

    def test_bit_plru_bounded_by_exactly_ways(self):
        """The exact bound behind Table I's '100% at >= 8 iterations':
        Bit-PLRU's worst case is exactly the associativity."""
        result = sequence1_worst_case("bit-plru", ways=8)
        assert result.worst_iterations == 8
        assert result.claim_holds

    def test_bit_plru_four_way(self):
        result = sequence1_worst_case("bit-plru", ways=4)
        assert result.worst_iterations == 4

    def test_tree_plru_four_way(self):
        result = sequence1_worst_case("tree-plru", ways=4)
        assert result.worst_iterations <= 3

    def test_histogram_accounts_for_all_pairs(self):
        result = sequence1_worst_case("tree-plru", ways=8)
        assert sum(result.histogram.values()) == result.states_checked

    def test_state_counts(self):
        # Tree-PLRU: 2^7 states x 8 placements.
        assert sequence1_worst_case("tree-plru", ways=8).states_checked == 1024
        # Bit-PLRU: (2^8 - 1) reachable states x 8 placements.
        assert sequence1_worst_case("bit-plru", ways=8).states_checked == 2040

    def test_unsupported_policy(self):
        with pytest.raises(ConfigurationError):
            sequence1_worst_case("srrip", ways=8)

    def test_no_state_escapes(self):
        """claim_holds is the channel's reliability guarantee: every
        possible prior state converges to line-0 eviction."""
        for policy in ("tree-plru", "bit-plru"):
            assert sequence1_worst_case(policy, ways=8).claim_holds
