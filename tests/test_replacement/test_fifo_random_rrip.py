"""Tests for the defense policies: FIFO, Random, and SRRIP."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.replacement.fifo import FIFO
from repro.replacement.random_policy import RandomPolicy
from repro.replacement.rrip import SRRIP


class TestFIFO:
    def test_power_on_victim(self):
        assert FIFO(4).victim() == 0

    def test_fill_advances_pointer(self):
        fifo = FIFO(4)
        fifo.on_fill(0)
        assert fifo.victim() == 1

    def test_hits_do_not_advance_pointer(self):
        # The security property of Section IX-A: FIFO state only moves
        # on fills, so hit-encoding senders leave no trace.
        fifo = FIFO(4)
        fifo.on_fill(0)
        before = fifo.state_snapshot()
        for way in (0, 1, 2, 3, 1, 0):
            fifo.touch(way)
        assert fifo.state_snapshot() == before

    def test_round_robin_wraps(self):
        fifo = FIFO(2)
        fifo.on_fill(0)
        fifo.on_fill(1)
        assert fifo.victim() == 0

    def test_fill_of_other_way_does_not_advance(self):
        fifo = FIFO(4)
        fifo.on_fill(2)  # not the pointer's way
        assert fifo.victim() == 0

    def test_invalid_first(self):
        fifo = FIFO(4)
        assert fifo.victim([True, True, False, True]) == 2

    def test_state_bits(self):
        assert FIFO(8).state_bits == 3
        assert FIFO(2).state_bits == 1

    def test_snapshot(self):
        fifo = FIFO(4)
        fifo.on_fill(0)
        snap = fifo.state_snapshot()
        fifo.on_fill(1)
        fifo.state_restore(snap)
        assert fifo.victim() == 1

    def test_bad_snapshot(self):
        with pytest.raises(ValueError):
            FIFO(4).state_restore((9,))


class TestRandomPolicy:
    def test_stateless(self):
        policy = RandomPolicy(4, rng=1)
        assert policy.state_bits == 0
        assert policy.state_snapshot() == ()

    def test_touch_has_no_effect_on_distribution(self):
        # Section IX-A: random replacement keeps no state, so the
        # sender's accesses cannot bias victim selection.
        a = RandomPolicy(4, rng=7)
        b = RandomPolicy(4, rng=7)
        for way in (0, 1, 2, 0, 1):
            a.touch(way)
        assert [a.victim() for _ in range(20)] == [b.victim() for _ in range(20)]

    def test_victims_cover_all_ways(self):
        policy = RandomPolicy(4, rng=3)
        seen = {policy.victim() for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_uniformity(self):
        policy = RandomPolicy(4, rng=5)
        counts = [0] * 4
        for _ in range(4000):
            counts[policy.victim()] += 1
        for c in counts:
            assert 800 < c < 1200

    def test_invalid_first(self):
        policy = RandomPolicy(4, rng=1)
        assert policy.victim([True, False, True, True]) == 1

    def test_bad_snapshot(self):
        with pytest.raises(ValueError):
            RandomPolicy(2).state_restore((1,))


class TestSRRIP:
    def test_power_on_all_distant(self):
        srrip = SRRIP(4)
        assert srrip.victim() == 0

    def test_fill_inserts_long(self):
        srrip = SRRIP(4, rrpv_bits=2)
        srrip.on_fill(1)
        assert srrip.state_snapshot()[1] == 2  # max_rrpv - 1

    def test_hit_promotes_to_near(self):
        srrip = SRRIP(4)
        srrip.on_fill(1)
        srrip.touch(1)
        assert srrip.state_snapshot()[1] == 0

    def test_aging_when_no_distant_way(self):
        srrip = SRRIP(2, rrpv_bits=2)
        srrip.touch(0)
        srrip.touch(1)
        # All RRPVs are 0; victim search must age everyone up to 3.
        assert srrip.victim() == 0
        assert all(r == 3 for r in srrip.state_snapshot())

    def test_victim_prefers_lowest_index(self):
        srrip = SRRIP(4)
        srrip.touch(0)
        assert srrip.victim() == 1

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            SRRIP(4, rrpv_bits=0)

    def test_state_bits(self):
        assert SRRIP(8, rrpv_bits=2).state_bits == 16

    def test_snapshot_roundtrip(self):
        srrip = SRRIP(4)
        srrip.on_fill(2)
        snap = srrip.state_snapshot()
        srrip.touch(2)
        srrip.state_restore(snap)
        assert srrip.state_snapshot() == snap

    def test_bad_snapshot(self):
        with pytest.raises(ValueError):
            SRRIP(4).state_restore((0, 0, 9, 0))
