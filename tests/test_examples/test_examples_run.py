"""Every example script must run cleanly end to end.

Examples are the library's public face; these tests execute each one in
a subprocess and check both the exit status and the key output lines,
so documentation drift breaks CI rather than users.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", "recovered byte: 0b10110010 (OK)"),
    ("covert_channel_demo.py", "Kbps"),
    ("spectre_demo.py", "== secret OK"),
    ("secure_cache_eval.py", "closes the transient channel"),
    ("defense_tradeoffs.py", "paper bound: <2%"),
    ("side_channel_demo.py", "attacker recovered"),
]


@pytest.mark.parametrize("script, marker", CASES)
def test_example_runs(script, marker):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout


def test_all_examples_covered():
    """Adding an example without a smoke test here should fail."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    tested = {script for script, _ in CASES}
    assert on_disk == tested
