"""The robustness sweep must reproduce the Figure 4 noise-floor shape."""

import pytest

from repro.experiments import EXPERIMENT_REGISTRY


@pytest.fixture(scope="module")
def result():
    return EXPERIMENT_REGISTRY["ext_robustness"]()


class TestExtRobustness:
    def test_registered_and_shaped(self, result):
        assert result.experiment_id == "ext_robustness"
        assert result.columns[0] == "intensity"
        assert len(result.rows) >= 4
        assert result.rows[0][0] == 0.0  # quiet baseline present

    def test_uncoded_error_grows_with_intensity(self, result):
        uncoded = [row[2] for row in result.rows]
        assert uncoded == sorted(uncoded), (
            "error rate must grow monotonically with fault intensity: "
            f"{uncoded}"
        )
        assert uncoded[-1] > uncoded[0], "faults have no visible effect"

    def test_coding_degrades_more_gracefully(self, result):
        for row in result.rows:
            intensity, _, uncoded, coded = row
            assert coded <= uncoded, (
                f"coded error {coded} above uncoded {uncoded} at "
                f"intensity {intensity}"
            )
        # At the calibrated noise floor (intensity 1) coding should
        # clean up the channel completely-ish.
        floor = next(row for row in result.rows if row[0] == 1.0)
        assert floor[3] <= 0.01
