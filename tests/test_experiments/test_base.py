"""Tests for the experiment scaffolding (rendering, registry)."""

import pytest

from repro.experiments.base import (
    EXPERIMENT_REGISTRY,
    ExperimentResult,
    register,
)


class TestRender:
    def test_includes_title_and_rows(self):
        result = ExperimentResult(
            experiment_id="t", title="A Title",
            columns=["x", "y"], rows=[[1, 2], [3, 4]],
        )
        text = result.render()
        assert "A Title" in text
        assert "[t]" in text
        assert "1" in text and "4" in text

    def test_column_alignment(self):
        result = ExperimentResult(
            experiment_id="t", title="T",
            columns=["long_column_name", "y"],
            rows=[[1, "value"]],
        )
        lines = result.render().splitlines()
        header = lines[1]
        assert header.index("y") > len("long_column_name")

    def test_float_formatting(self):
        result = ExperimentResult(
            experiment_id="t", title="T", columns=["v"],
            rows=[[0.123456789]],
        )
        assert "0.1235" in result.render()

    def test_paper_expectation_and_notes_shown(self):
        result = ExperimentResult(
            experiment_id="t", title="T",
            paper_expectation="expected X", notes="deviation Y",
        )
        text = result.render()
        assert "paper: expected X" in text
        assert "notes: deviation Y" in text

    def test_empty_rows_render(self):
        result = ExperimentResult(experiment_id="t", title="T")
        assert result.render().startswith("[t] T")


class TestRegistry:
    def test_register_decorator(self):
        @register("zz_test_only")
        def run():
            return ExperimentResult(experiment_id="zz_test_only", title="x")

        try:
            assert EXPERIMENT_REGISTRY["zz_test_only"] is run
        finally:
            del EXPERIMENT_REGISTRY["zz_test_only"]

    def test_run_all_subset(self):
        from repro.experiments.base import run_all

        results = run_all(["table2"])
        assert len(results) == 1
        assert results[0].experiment_id == "table2"
