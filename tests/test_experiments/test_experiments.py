"""Tests for the experiment modules (fast-parameter smoke + key claims).

Slow sweeps run with reduced trial counts here; the full-fidelity runs
live in benchmarks/.
"""

import pytest

from repro.experiments import EXPERIMENT_REGISTRY
from repro.experiments.base import ExperimentResult
from repro.experiments.table1 import PAPER_TABLE1, eviction_probability


class TestRegistry:
    def test_every_paper_experiment_registered(self):
        expected = {
            "table1", "table2", "table4", "table5", "table6", "table7",
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig11", "fig13", "fig14", "fig15",
        }
        assert expected <= set(EXPERIMENT_REGISTRY)


class TestTable1:
    def test_lru_always_evicts(self):
        for seq in (1, 2):
            for cond in ("random", "sequential"):
                p = eviction_probability(
                    "lru", seq, cond, iterations=1, trials=150, rng=1
                )
                assert p == 1.0

    def test_tree_plru_seq1_random_matches_paper(self):
        """Compare the most-cited Table I column within tolerance."""
        for iters, expected in [(1, 0.504), (2, 0.828), (3, 0.992)]:
            ours = eviction_probability(
                "tree-plru", 1, "random", iters, trials=400, rng=1
            )
            assert ours == pytest.approx(expected, abs=0.08)

    def test_tree_plru_seq2_plateaus_below_one(self):
        """Sequence 2 under Tree-PLRU converges to ~62%, never 100%."""
        p = eviction_probability(
            "tree-plru", 2, "sequential", iterations=8, trials=300, rng=1
        )
        assert 0.4 < p < 0.8

    def test_bit_plru_converges_to_certainty(self):
        p = eviction_probability(
            "bit-plru", 1, "random", iterations=8, trials=300, rng=1
        )
        assert p > 0.95

    def test_sequential_condition_not_worse_seq1(self):
        random_p = eviction_probability(
            "tree-plru", 1, "random", 2, trials=300, rng=1
        )
        seq_p = eviction_probability(
            "tree-plru", 1, "sequential", 2, trials=300, rng=1
        )
        assert seq_p >= random_p - 0.05

    def test_paper_reference_values_present(self):
        assert PAPER_TABLE1[("tree-plru", 1, "random", 1)] == 0.504


class TestFastExperiments:
    @pytest.mark.parametrize("eid", ["table2", "table5", "fig11"])
    def test_runs_and_renders(self, eid):
        result = EXPERIMENT_REGISTRY[eid]()
        assert isinstance(result, ExperimentResult)
        assert result.rows
        text = result.render()
        assert result.title in text

    def test_table2_latencies_match_spec(self):
        result = EXPERIMENT_REGISTRY["table2"]()
        by_machine = {row[0]: row for row in result.rows}
        assert by_machine["AMD EPYC 7571"][3] == 17.0
        assert by_machine["Intel Xeon E5-2690"][3] == 12.0

    def test_table5_ordering_claim(self):
        """LRU encode < F+R(L1) < F+R(mem) on every machine."""
        result = EXPERIMENT_REGISTRY["table5"]()
        for row in result.rows:
            fr_mem, fr_l1, lru = row[1], row[3], row[5]
            # On AMD the way-predictor penalty makes the LRU encode
            # nearly equal to F+R(L1) (paper: 52 vs 56 cycles).
            assert lru <= fr_l1 < fr_mem

    def test_fig11_contrast(self):
        result = EXPERIMENT_REGISTRY["fig11"]()
        by_design = {row[0]: row for row in result.rows}
        assert by_design["original PL"][1] == 1.0
        assert by_design["PL + LRU lock"][2] is True


class TestFig3AndFig13:
    def test_fig3_separable(self):
        from repro.experiments.fig3 import measure_chase_histograms
        from repro.sim.specs import INTEL_E5_2690

        hists = measure_chase_histograms(INTEL_E5_2690, samples=300)
        assert hists.separability > 0.9
        assert hists.miss.mode() > hists.hit.mode()

    def test_fig13_overlapping(self):
        from repro.experiments.fig13 import rdtscp_histograms
        from repro.sim.specs import INTEL_E5_2690

        l1_hist, l2_hist, mem_hist = rdtscp_histograms(
            INTEL_E5_2690, samples=300
        )
        assert l1_hist.overlap(l2_hist) > 0.8
        assert mem_hist.mode() > l1_hist.mode() + 100


class TestFig5Trace:
    def test_contrast_present_for_both_algorithms(self):
        from repro.experiments.fig5 import alternating_trace
        from repro.sim.specs import INTEL_E5_2690

        for algorithm in (1, 2):
            trace = alternating_trace(INTEL_E5_2690, algorithm, bits=12)
            assert trace.block_contrast > 2.0


class TestFig9:
    def test_cpi_overhead_under_two_percent(self):
        result = EXPERIMENT_REGISTRY["fig9"]()
        geomean_row = result.rows[-1]
        assert geomean_row[0] == "GEOMEAN"
        assert float(geomean_row[4]) < 1.02
        assert float(geomean_row[5]) < 1.02


class TestSpectreExperiment:
    def test_table7_all_variants_recover(self):
        result = EXPERIMENT_REGISTRY["table7"]()
        for row in result.rows:
            assert row[4] == "100%"

    def test_table7_fr_mem_l2_heavier(self):
        result = EXPERIMENT_REGISTRY["table7"]()
        e5 = [r for r in result.rows if "E5-2690" in r[0]]
        rates = {r[1]: float(r[3].rstrip("%")) for r in e5}
        assert rates["flush_reload"] > rates["lru_alg1"]
