"""Unit tests for the supervised crash-safe executor.

Worker functions live at module level so ``multiprocessing`` can pickle
them into worker processes.  Everything stochastic is seeded through
:class:`~repro.experiments.chaos.ChaosConfig`, so every crash in these
tests happens at the same point on every run.
"""

import os
import signal
import time

import pytest

from repro.common.errors import ExecutorError
from repro.experiments.chaos import ChaosConfig, schedule_signal
from repro.experiments.supervisor import (
    MAX_SLOT_RESPAWNS,
    ExecutorStats,
    SupervisedExecutor,
)


def echo_worker(spec):
    task_id, value = spec
    return (task_id, "result", {"value": value}, 0.0, None)


def sleepy_worker(spec):
    task_id, seconds = spec
    time.sleep(seconds)
    return (task_id, "result", {"slept": seconds}, seconds, None)


def suicidal_worker(spec):
    os._exit(9)


def echo_tasks(n):
    return [(f"t{i}", (f"t{i}", i * 10)) for i in range(n)]


def collect():
    records = []
    return records, records.append


def find_kill_seed(task_id, kill_probability):
    """A chaos seed that kills ``task_id``'s first attempt but not its
    second — the deterministic way to exercise requeue-then-success."""
    for seed in range(1000):
        config = ChaosConfig(
            seed=seed, kill_before_run=kill_probability, only_tasks=(task_id,)
        )
        if (
            config.decide(task_id, 0).kill_before_run
            and not config.decide(task_id, 1).kill_before_run
        ):
            return seed
    raise AssertionError("no suitable seed in range")


class TestHappyPath:
    def test_all_tasks_complete_once(self):
        records, on_record = collect()
        executor = SupervisedExecutor(
            worker_fn=echo_worker, jobs=2, heartbeat_interval=0.1
        )
        outcome = executor.run(echo_tasks(6), on_record)
        assert sorted(r[0] for r in records) == [f"t{i}" for i in range(6)]
        assert {r[2]["value"] for r in records} == {0, 10, 20, 30, 40, 50}
        assert not outcome.interrupted
        assert outcome.unfinished == []
        assert outcome.stats.clean
        assert outcome.stats.workers_spawned == 2

    def test_stats_to_dict_round_trips_every_counter(self):
        stats = ExecutorStats(
            workers_crashed=1,
            workers_killed_deadline=2,
            workers_killed_heartbeat=3,
            tasks_requeued=4,
            tasks_quarantined=5,
            workers_spawned=6,
        )
        assert stats.to_dict() == {
            "workers_crashed": 1,
            "workers_killed_deadline": 2,
            "workers_killed_heartbeat": 3,
            "tasks_requeued": 4,
            "tasks_quarantined": 5,
            "workers_spawned": 6,
        }
        assert not stats.clean
        assert ExecutorStats().clean


class TestValidation:
    def test_constructor_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SupervisedExecutor(worker_fn=echo_worker, jobs=0)
        with pytest.raises(ValueError):
            SupervisedExecutor(
                worker_fn=echo_worker, jobs=1, heartbeat_interval=0.0
            )
        with pytest.raises(ValueError):
            SupervisedExecutor(
                worker_fn=echo_worker, jobs=1, max_task_crashes=0
            )
        with pytest.raises(ValueError):
            SupervisedExecutor(
                worker_fn=echo_worker, jobs=1, drain_timeout=-1.0
            )
        with pytest.raises(ValueError):
            SupervisedExecutor(
                worker_fn=echo_worker, jobs=1, task_deadline=0.0
            )

    def test_duplicate_task_ids_rejected(self):
        executor = SupervisedExecutor(worker_fn=echo_worker, jobs=1)
        with pytest.raises(ValueError, match="duplicate"):
            executor.run(
                [("same", ("same", 1)), ("same", ("same", 2))],
                lambda record: None,
            )


class TestCrashRecovery:
    def test_killed_task_requeues_and_completes(self):
        seed = find_kill_seed("t1", 0.5)
        records, on_record = collect()
        executor = SupervisedExecutor(
            worker_fn=echo_worker,
            jobs=2,
            heartbeat_interval=0.1,
            chaos=ChaosConfig(
                seed=seed, kill_before_run=0.5, only_tasks=("t1",)
            ),
        )
        outcome = executor.run(echo_tasks(4), on_record)
        assert sorted(r[0] for r in records) == ["t0", "t1", "t2", "t3"]
        assert all(r[1] == "result" for r in records)
        assert outcome.stats.workers_crashed == 1
        assert outcome.stats.tasks_requeued == 1
        assert outcome.stats.tasks_quarantined == 0
        assert outcome.stats.workers_spawned == 3  # 2 initial + 1 respawn

    def test_poison_task_quarantined_as_structured_failure(self):
        records, on_record = collect()
        executor = SupervisedExecutor(
            worker_fn=echo_worker,
            jobs=2,
            heartbeat_interval=0.1,
            max_task_crashes=2,
            chaos=ChaosConfig(
                seed=0, kill_before_run=1.0, only_tasks=("t2",)
            ),
        )
        outcome = executor.run(echo_tasks(4), on_record)
        by_id = {r[0]: r for r in records}
        assert by_id["t2"][1] == "failure"
        payload = by_id["t2"][2]
        assert payload["error_type"] == "WorkerCrashed"
        assert "quarantined after 2 consecutive" in payload["message"]
        assert payload["attempts"] == 2
        # The rest of the batch is unharmed.
        for task_id in ("t0", "t1", "t3"):
            assert by_id[task_id][1] == "result"
        assert outcome.stats.tasks_quarantined == 1
        assert outcome.stats.workers_crashed == 2
        assert not outcome.interrupted

    def test_all_slots_dead_raises_executor_error(self):
        executor = SupervisedExecutor(
            worker_fn=suicidal_worker,
            jobs=1,
            heartbeat_interval=0.1,
            max_task_crashes=MAX_SLOT_RESPAWNS + 10,
        )
        with pytest.raises(ExecutorError, match="respawn"):
            executor.run([("doomed", ("doomed", 0))], lambda record: None)


class TestDeadlineAndHeartbeat:
    def test_deadline_kill_quarantines_the_wedged_task(self):
        records, on_record = collect()
        executor = SupervisedExecutor(
            worker_fn=sleepy_worker,
            jobs=1,
            heartbeat_interval=0.05,
            task_deadline=0.3,
            max_task_crashes=1,
        )
        outcome = executor.run([("wedged", ("wedged", 30.0))], on_record)
        assert records[0][1] == "failure"
        assert "deadline" in records[0][2]["message"]
        assert outcome.stats.workers_killed_deadline == 1
        assert outcome.stats.tasks_quarantined == 1

    def test_stale_heartbeat_kill(self):
        records, on_record = collect()
        executor = SupervisedExecutor(
            worker_fn=sleepy_worker,
            jobs=1,
            heartbeat_interval=0.05,
            heartbeat_timeout=0.4,
            max_task_crashes=1,
            chaos=ChaosConfig(
                seed=0, stall_heartbeat=1.0, stall_seconds=60.0
            ),
        )
        outcome = executor.run([("frozen", ("frozen", 30.0))], on_record)
        assert records[0][1] == "failure"
        assert "heartbeat" in records[0][2]["message"]
        assert outcome.stats.workers_killed_heartbeat == 1
        assert outcome.stats.tasks_quarantined == 1


class TestSignalDrain:
    def test_sigint_drains_in_flight_and_reports_unfinished(self):
        records, on_record = collect()
        tasks = [(f"s{i}", (f"s{i}", 0.4)) for i in range(4)]
        executor = SupervisedExecutor(
            worker_fn=sleepy_worker,
            jobs=2,
            heartbeat_interval=0.1,
            drain_timeout=10.0,
        )
        handler_before = signal.getsignal(signal.SIGINT)
        timer = schedule_signal(0.15, signal.SIGINT)
        try:
            outcome = executor.run(tasks, on_record)
        finally:
            timer.cancel()
        assert outcome.interrupted
        finished = {r[0] for r in records}
        assert finished  # the in-flight tasks were allowed to finish
        assert set(outcome.unfinished) == {t[0] for t in tasks} - finished
        assert outcome.unfinished  # and the rest was never started
        # The previous SIGINT handler was restored afterwards.
        assert signal.getsignal(signal.SIGINT) is handler_before
