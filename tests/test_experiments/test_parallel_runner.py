"""Tests for the process-parallel experiment runner and checkpoint costs.

The experiment functions live at module level so ``multiprocessing``
can pickle them into pool workers (lambdas, which the sequential tests
use freely, cannot cross a process boundary).
"""

import json

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner, _pool_worker

IDS = ["alpha", "beta", "gamma", "delta"]


def _result(experiment_id, rows=None):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"test result {experiment_id}",
        columns=["x"],
        rows=rows if rows is not None else [[1]],
    )


def run_alpha():
    return _result("alpha")


def run_beta():
    return _result("beta", rows=[[2]])


def run_gamma(rng: int = 42):
    # Embeds its seed so seed determinism is observable in the result.
    return _result("gamma", rows=[[rng]])


def run_delta():
    return _result("delta", rows=[[4]])


def run_broken():
    raise RuntimeError("intentional failure")


def make_registry():
    return {
        "alpha": run_alpha,
        "beta": run_beta,
        "gamma": run_gamma,
        "delta": run_delta,
    }


class TestParallelRunMany:
    def test_matches_sequential_run(self):
        sequential = ExperimentRunner(
            retries=0, registry=make_registry()
        ).run_many(IDS)
        parallel = ExperimentRunner(
            retries=0, registry=make_registry()
        ).run_many(IDS, jobs=2)
        assert [r.experiment_id for r in parallel.results] == IDS
        assert [r.to_dict() for r in parallel.results] == [
            r.to_dict() for r in sequential.results
        ]
        assert parallel.ok

    def test_results_reported_in_submission_order(self):
        report = ExperimentRunner(
            retries=0, registry=make_registry()
        ).run_many(list(reversed(IDS)), jobs=4)
        assert [r.experiment_id for r in report.results] == list(
            reversed(IDS)
        )

    def test_failure_isolation(self):
        registry = make_registry()
        registry["broken"] = run_broken
        ids = ["alpha", "broken", "beta", "gamma"]
        report = ExperimentRunner(retries=0, registry=registry).run_many(
            ids, jobs=2
        )
        assert not report.ok
        assert [f.experiment_id for f in report.failures] == ["broken"]
        assert report.failures[0].error_type == "RuntimeError"
        assert "intentional failure" in report.failures[0].message
        assert [r.experiment_id for r in report.results] == [
            "alpha",
            "beta",
            "gamma",
        ]

    def test_callbacks_fire_per_completion(self):
        seen_results, seen_failures = [], []
        registry = make_registry()
        registry["broken"] = run_broken
        ExperimentRunner(retries=0, registry=registry).run_many(
            ["alpha", "beta", "broken"],
            on_result=lambda result, elapsed: seen_results.append(
                result.experiment_id
            ),
            on_failure=lambda failure: seen_failures.append(
                failure.experiment_id
            ),
            jobs=2,
        )
        assert sorted(seen_results) == ["alpha", "beta"]
        assert seen_failures == ["broken"]

    def test_checkpoint_written_and_resumed(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        first = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        ).run_many(IDS, jobs=2)
        assert first.ok
        data = json.loads(checkpoint.read_text())
        assert sorted(data["results"]) == sorted(IDS)
        # Second run restores everything: even a registry of bombs never
        # gets called.
        bombs = {experiment_id: run_broken for experiment_id in IDS}
        second = ExperimentRunner(
            retries=0, checkpoint_path=str(checkpoint), registry=bombs
        ).run_many(IDS, jobs=2)
        assert second.ok
        assert sorted(second.resumed) == sorted(IDS)

    def test_seed_determinism_across_jobs(self):
        for jobs in (1, 3):
            report = ExperimentRunner(
                retries=0, registry=make_registry()
            ).run_many(IDS, jobs=jobs)
            gamma = next(
                r for r in report.results if r.experiment_id == "gamma"
            )
            assert gamma.rows == [[42]]

    def test_jobs_must_be_positive(self):
        runner = ExperimentRunner(registry=make_registry())
        with pytest.raises(ValueError):
            runner.run_many(IDS, jobs=0)

    def test_single_pending_experiment_stays_in_process(self):
        # jobs > 1 with one pending id takes the sequential path — no
        # pool overhead, and in-process registries with lambdas work.
        runner = ExperimentRunner(
            retries=0, registry={"solo": lambda: _result("solo")}
        )
        report = runner.run_many(["solo"], jobs=8)
        assert [r.experiment_id for r in report.results] == ["solo"]


class TestPoolWorker:
    def test_result_payload_round_trips(self):
        experiment_id, kind, payload, elapsed, obs = _pool_worker(
            ("beta", None, 0, False, run_beta, False, 0)
        )
        assert (experiment_id, kind) == ("beta", "result")
        assert ExperimentResult.from_dict(payload).rows == [[2]]
        assert elapsed >= 0.0
        assert obs is None

    def test_failure_payload_is_structured(self):
        experiment_id, kind, payload, _, obs = _pool_worker(
            ("broken", None, 1, False, run_broken, False, 0)
        )
        assert (experiment_id, kind) == ("broken", "failure")
        assert payload["error_type"] == "RuntimeError"
        assert payload["attempts"] == 2
        assert obs is None

    def test_observing_worker_returns_capture(self):
        _, kind, _, _, obs = _pool_worker(
            ("beta", None, 0, False, run_beta, True, 0)
        )
        assert kind == "result"
        assert obs is not None
        assert obs["manifest"]["experiment_id"] == "beta"
        assert "metrics" in obs and obs["events"] == []


class TestCheckpointCosts:
    def test_entries_encoded_once_per_completion(self, monkeypatch, tmp_path):
        import repro.experiments.runner as runner_module

        calls = []
        real_dumps = json.dumps

        def counting_dumps(obj, *args, **kwargs):
            calls.append(obj)
            return real_dumps(obj, *args, **kwargs)

        monkeypatch.setattr(runner_module.json, "dumps", counting_dumps)
        runner = ExperimentRunner(
            retries=0,
            checkpoint_path=str(tmp_path / "progress.json"),
            registry=make_registry(),
        )
        runner.run_many(IDS)
        # One encode per result body plus one per id key fragment —
        # linear in completions, not quadratic (the old code re-encoded
        # every prior result on every save: 1+2+3+4 = 10 bodies).
        bodies = [c for c in calls if isinstance(c, dict)]
        assert len(bodies) == len(IDS)

    def test_pure_resume_skips_the_write(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        ).run_many(IDS)
        stamp = checkpoint.stat().st_mtime_ns
        resumed = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        )
        report = resumed.run_many(IDS)
        assert sorted(report.resumed) == sorted(IDS)
        assert not resumed._checkpoint_dirty
        assert checkpoint.stat().st_mtime_ns == stamp

    def test_checkpoint_file_is_valid_json(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        ).run_many(IDS)
        data = json.loads(checkpoint.read_text())
        restored = {
            experiment_id: ExperimentResult.from_dict(entry)
            for experiment_id, entry in data["results"].items()
        }
        assert restored["gamma"].rows == [[42]]


class TestSignatureResolution:
    def test_rng_parameter_resolved_once(self):
        parameter = ExperimentRunner._rng_parameter(run_gamma)
        assert parameter is not None
        assert ExperimentRunner._rotated_seed(parameter, 1) == 1042
        assert ExperimentRunner._rotated_seed(parameter, 2) == 2042

    def test_rng_parameter_absent(self):
        assert ExperimentRunner._rng_parameter(run_alpha) is None

    def test_uninspectable_function_is_tolerated(self):
        assert ExperimentRunner._rng_parameter(dict.fromkeys) in (None,)
