"""Tests for the process-parallel experiment runner and checkpoint costs.

The experiment functions live at module level so ``multiprocessing``
can pickle them into pool workers (lambdas, which the sequential tests
use freely, cannot cross a process boundary).
"""

import json
import signal
import time

import pytest

from repro.common.errors import CheckpointCorruptWarning
from repro.experiments.base import ExperimentResult
from repro.experiments.chaos import schedule_signal, truncate_file
from repro.experiments.runner import ExperimentRunner, _pool_worker

IDS = ["alpha", "beta", "gamma", "delta"]


def _result(experiment_id, rows=None):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"test result {experiment_id}",
        columns=["x"],
        rows=rows if rows is not None else [[1]],
    )


def run_alpha():
    return _result("alpha")


def run_beta():
    return _result("beta", rows=[[2]])


def run_gamma(rng: int = 42):
    # Embeds its seed so seed determinism is observable in the result.
    return _result("gamma", rows=[[rng]])


def run_delta():
    return _result("delta", rows=[[4]])


def run_broken():
    raise RuntimeError("intentional failure")


def make_registry():
    return {
        "alpha": run_alpha,
        "beta": run_beta,
        "gamma": run_gamma,
        "delta": run_delta,
    }


def checkpoint_payload(path):
    """Unwrap a v2 checkpoint envelope, asserting its shape on the way."""
    envelope = json.loads(path.read_text())
    assert envelope["version"] == 2
    assert envelope["checksum"].startswith("sha256:")
    return envelope["data"]


class TestParallelRunMany:
    def test_matches_sequential_run(self):
        sequential = ExperimentRunner(
            retries=0, registry=make_registry()
        ).run_many(IDS)
        parallel = ExperimentRunner(
            retries=0, registry=make_registry()
        ).run_many(IDS, jobs=2)
        assert [r.experiment_id for r in parallel.results] == IDS
        assert [r.to_dict() for r in parallel.results] == [
            r.to_dict() for r in sequential.results
        ]
        assert parallel.ok

    def test_results_reported_in_submission_order(self):
        report = ExperimentRunner(
            retries=0, registry=make_registry()
        ).run_many(list(reversed(IDS)), jobs=4)
        assert [r.experiment_id for r in report.results] == list(
            reversed(IDS)
        )

    def test_failure_isolation(self):
        registry = make_registry()
        registry["broken"] = run_broken
        ids = ["alpha", "broken", "beta", "gamma"]
        report = ExperimentRunner(retries=0, registry=registry).run_many(
            ids, jobs=2
        )
        assert not report.ok
        assert [f.experiment_id for f in report.failures] == ["broken"]
        assert report.failures[0].error_type == "RuntimeError"
        assert "intentional failure" in report.failures[0].message
        assert [r.experiment_id for r in report.results] == [
            "alpha",
            "beta",
            "gamma",
        ]

    def test_callbacks_fire_per_completion(self):
        seen_results, seen_failures = [], []
        registry = make_registry()
        registry["broken"] = run_broken
        ExperimentRunner(retries=0, registry=registry).run_many(
            ["alpha", "beta", "broken"],
            on_result=lambda result, elapsed: seen_results.append(
                result.experiment_id
            ),
            on_failure=lambda failure: seen_failures.append(
                failure.experiment_id
            ),
            jobs=2,
        )
        assert sorted(seen_results) == ["alpha", "beta"]
        assert seen_failures == ["broken"]

    def test_checkpoint_written_and_resumed(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        first = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        ).run_many(IDS, jobs=2)
        assert first.ok
        data = checkpoint_payload(checkpoint)
        assert sorted(data["results"]) == sorted(IDS)
        # Second run restores everything: even a registry of bombs never
        # gets called.
        bombs = {experiment_id: run_broken for experiment_id in IDS}
        second = ExperimentRunner(
            retries=0, checkpoint_path=str(checkpoint), registry=bombs
        ).run_many(IDS, jobs=2)
        assert second.ok
        assert sorted(second.resumed) == sorted(IDS)

    def test_seed_determinism_across_jobs(self):
        for jobs in (1, 3):
            report = ExperimentRunner(
                retries=0, registry=make_registry()
            ).run_many(IDS, jobs=jobs)
            gamma = next(
                r for r in report.results if r.experiment_id == "gamma"
            )
            assert gamma.rows == [[42]]

    def test_jobs_must_be_positive(self):
        runner = ExperimentRunner(registry=make_registry())
        with pytest.raises(ValueError):
            runner.run_many(IDS, jobs=0)

    def test_oversubscribed_jobs_warn_but_still_run(self):
        import os

        runner = ExperimentRunner(
            retries=0, registry=make_registry(), observe=True
        )
        too_many = (os.cpu_count() or 1) + 63
        with pytest.warns(RuntimeWarning, match="exceeds os.cpu_count"):
            report = runner.run_many(IDS, jobs=too_many)
        assert report.ok
        counters = runner.batch_metrics["counters"]
        assert counters["runner.jobs.oversubscribed"] == 1

    def test_default_jobs_match_the_host(self):
        import os

        from repro.experiments.runner import auto_jobs

        assert auto_jobs() == (os.cpu_count() or 1)

    def test_single_pending_experiment_stays_in_process(self):
        # jobs > 1 with one pending id takes the sequential path — no
        # pool overhead, and in-process registries with lambdas work.
        runner = ExperimentRunner(
            retries=0, registry={"solo": lambda: _result("solo")}
        )
        report = runner.run_many(["solo"], jobs=8)
        assert [r.experiment_id for r in report.results] == ["solo"]


SLOW_IDS = [f"slow{i}" for i in range(6)]


def run_slow(experiment_id, rng: int = 5):
    # Slow enough that a mid-batch SIGINT reliably interrupts, seeded so
    # re-runs are bit-identical.
    time.sleep(0.35)
    return _result(experiment_id, rows=[[rng, experiment_id]])


def make_slow_registry():
    from functools import partial

    return {
        experiment_id: partial(run_slow, experiment_id)
        for experiment_id in SLOW_IDS
    }


class TestResumeSemantics:
    """SIGINT mid-batch → checkpoint flushed → re-run completes the
    remainder, and the union is bit-identical to an undisturbed run."""

    def test_sigint_then_rerun_is_bit_identical(self, tmp_path):
        expected = [
            r.to_dict()
            for r in ExperimentRunner(
                retries=0, registry=make_slow_registry()
            )
            .run_many(SLOW_IDS)
            .results
        ]

        checkpoint = tmp_path / "progress.json"
        first = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_slow_registry(),
            heartbeat_interval=0.1,
            drain_timeout=10.0,
        )
        timer = schedule_signal(0.4, signal.SIGINT)
        try:
            interrupted = first.run_many(SLOW_IDS, jobs=2)
        finally:
            timer.cancel()
        assert interrupted.interrupted
        assert not interrupted.ok
        assert interrupted.unfinished
        assert "unfinished" in interrupted.summary()
        done = {r.experiment_id for r in interrupted.results}
        assert set(interrupted.unfinished) == set(SLOW_IDS) - done
        # Everything that finished made it into the flushed checkpoint.
        saved = checkpoint_payload(checkpoint)
        assert sorted(saved["results"]) == sorted(done)

        second = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_slow_registry(),
        )
        resumed = second.run_many(SLOW_IDS, jobs=2)
        assert resumed.ok
        assert not resumed.interrupted
        assert sorted(resumed.resumed) == sorted(done)
        assert [r.to_dict() for r in resumed.results] == expected


class TestDurableCheckpoints:
    def test_truncated_checkpoint_quarantined_and_counted(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        ).run_many(IDS)
        truncate_file(str(checkpoint), keep_fraction=0.5)
        runner = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
            observe=True,
        )
        with pytest.warns(CheckpointCorruptWarning, match="quarantined"):
            report = runner.run_many(IDS, jobs=2)
        assert report.ok
        assert report.resumed == []
        assert (tmp_path / "progress.json.corrupt").exists()
        assert runner.corrupt_artifacts_detected == 1
        # The detection is catalogued as a batch-level metric.
        counters = runner.batch_metrics["counters"]
        assert counters["checkpoint.corrupt.detected"] == 1

    def test_legacy_checkpoint_migrates_to_envelope_on_load(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        # Write the PR 3/4 unversioned format by hand: payload at the
        # top level, no envelope, no checksum.
        legacy = {
            "results": {
                "alpha": _result("alpha").to_dict(),
                "beta": _result("beta", rows=[[2]]).to_dict(),
            },
            "obs": {},
        }
        checkpoint.write_text(json.dumps(legacy))
        runner = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        )
        report = runner.run_many(IDS)
        assert sorted(report.resumed) == ["alpha", "beta"]
        assert report.ok
        # One-step migration: the file is now a v2 envelope carrying
        # both the restored and the new results.
        data = checkpoint_payload(checkpoint)
        assert sorted(data["results"]) == sorted(IDS)
        # And it restores through the checksummed path next time.
        again = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        ).run_many(IDS)
        assert sorted(again.resumed) == sorted(IDS)

    def test_unsupported_future_version_is_quarantined(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        checkpoint.write_text(
            '{"version": 99, "checksum": "sha256:00", "data": {}}'
        )
        runner = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        )
        with pytest.warns(CheckpointCorruptWarning, match="version"):
            report = runner.run_many(IDS)
        assert report.ok
        assert report.resumed == []
        assert (tmp_path / "progress.json.corrupt").exists()

    def test_no_tmp_file_left_behind(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        ).run_many(IDS, jobs=2)
        assert not (tmp_path / "progress.json.tmp").exists()
        assert checkpoint.exists()


class TestPoolWorker:
    def test_result_payload_round_trips(self):
        experiment_id, kind, payload, elapsed, obs = _pool_worker(
            ("beta", None, 0, False, run_beta, False, 0)
        )
        assert (experiment_id, kind) == ("beta", "result")
        assert ExperimentResult.from_dict(payload).rows == [[2]]
        assert elapsed >= 0.0
        assert obs is None

    def test_failure_payload_is_structured(self):
        experiment_id, kind, payload, _, obs = _pool_worker(
            ("broken", None, 1, False, run_broken, False, 0)
        )
        assert (experiment_id, kind) == ("broken", "failure")
        assert payload["error_type"] == "RuntimeError"
        assert payload["attempts"] == 2
        assert obs is None

    def test_observing_worker_returns_capture(self):
        _, kind, _, _, obs = _pool_worker(
            ("beta", None, 0, False, run_beta, True, 0)
        )
        assert kind == "result"
        assert obs is not None
        assert obs["manifest"]["experiment_id"] == "beta"
        assert "metrics" in obs and obs["events"] == []


class TestCheckpointCosts:
    def test_entries_encoded_once_per_completion(self, monkeypatch, tmp_path):
        import repro.experiments.runner as runner_module

        calls = []
        real_dumps = json.dumps

        def counting_dumps(obj, *args, **kwargs):
            calls.append(obj)
            return real_dumps(obj, *args, **kwargs)

        monkeypatch.setattr(runner_module.json, "dumps", counting_dumps)
        runner = ExperimentRunner(
            retries=0,
            checkpoint_path=str(tmp_path / "progress.json"),
            registry=make_registry(),
        )
        runner.run_many(IDS)
        # One encode per result body plus one per id key fragment —
        # linear in completions, not quadratic (the old code re-encoded
        # every prior result on every save: 1+2+3+4 = 10 bodies).
        bodies = [c for c in calls if isinstance(c, dict)]
        assert len(bodies) == len(IDS)

    def test_pure_resume_skips_the_write(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        ).run_many(IDS)
        stamp = checkpoint.stat().st_mtime_ns
        resumed = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        )
        report = resumed.run_many(IDS)
        assert sorted(report.resumed) == sorted(IDS)
        assert not resumed._checkpoint_dirty
        assert checkpoint.stat().st_mtime_ns == stamp

    def test_checkpoint_file_is_valid_json(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        ).run_many(IDS)
        data = checkpoint_payload(checkpoint)
        restored = {
            experiment_id: ExperimentResult.from_dict(entry)
            for experiment_id, entry in data["results"].items()
        }
        assert restored["gamma"].rows == [[42]]


class TestSignatureResolution:
    def test_rng_parameter_resolved_once(self):
        parameter = ExperimentRunner._rng_parameter(run_gamma)
        assert parameter is not None
        assert ExperimentRunner._rotated_seed(parameter, 1) == 1042
        assert ExperimentRunner._rotated_seed(parameter, 2) == 2042

    def test_rng_parameter_absent(self):
        assert ExperimentRunner._rng_parameter(run_alpha) is None

    def test_uninspectable_function_is_tolerated(self):
        assert ExperimentRunner._rng_parameter(dict.fromkeys) in (None,)
