"""Tests for the extension experiment modules and CSV export."""

import pytest

from repro.experiments import EXPERIMENT_REGISTRY
from repro.experiments.base import ExperimentResult


class TestExtensionRegistry:
    def test_all_extensions_registered(self):
        expected = {
            "ext_llc", "ext_side_channel", "ext_randomized_index",
            "ext_multiset", "ext_verify_table1", "ext_detector",
            "ext_coding",
        }
        assert expected <= set(EXPERIMENT_REGISTRY)


class TestExtVerifyTable1:
    def test_exact_bounds(self):
        result = EXPERIMENT_REGISTRY["ext_verify_table1"]()
        bounds = {row[0].split(" ")[0]: row[2] for row in result.rows}
        assert bounds["lru"] == 1
        assert bounds["tree-plru"] == 3
        assert bounds["bit-plru"] == 8


class TestExtDetector:
    def test_verdicts(self):
        result = EXPERIMENT_REGISTRY["ext_detector"]()
        verdicts = {row[0]: row[3] for row in result.rows}
        assert verdicts["F+R (mem) sender"] == "YES"
        assert verdicts["LRU Alg.1 sender"] == "no"
        assert verdicts["benign gcc-like process"] == "no"


class TestExtCoding:
    def test_coding_never_hurts_much_and_usually_helps(self):
        result = EXPERIMENT_REGISTRY["ext_coding"]()
        for row in result.rows:
            raw, coded = row[1], row[2]
            assert coded <= raw + 0.01
        # At the lowest noise point coding should clean up fully-ish.
        assert result.rows[0][2] <= result.rows[0][1] / 2


class TestExtRandomizedIndex:
    def test_defense_verdict(self):
        result = EXPERIMENT_REGISTRY["ext_randomized_index"]()
        labels = {row[0]: row[2] for row in result.rows}
        assert labels["baseline Tree-PLRU"] == "yes"
        assert labels["randomized index"] == "no"


class TestExtSideChannel:
    def test_all_keys_recovered(self):
        result = EXPERIMENT_REGISTRY["ext_side_channel"]()
        assert all(row[0] == row[1] for row in result.rows)


class TestCSVExport:
    def test_to_csv_shape(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            columns=["a", "b"],
            rows=[[1, "two"], [3.5, "four"]],
        )
        lines = result.to_csv().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,two"
        assert len(lines) == 3

    def test_save_csv(self, tmp_path):
        result = ExperimentResult(
            experiment_id="x", title="t", columns=["a"], rows=[[1]]
        )
        path = tmp_path / "out.csv"
        result.save_csv(str(path))
        assert path.read_text().startswith("a")


class TestExtAlg2TimeSliced:
    def test_negative_result_reproduced(self):
        result = EXPERIMENT_REGISTRY["ext_alg2_timesliced"]()
        contrasts = {row[0]: float(row[3].rstrip("%")) for row in result.rows}
        # Algorithm 1 carries signal; Algorithm 2 does not (paper V-B).
        assert contrasts["Alg 1"] > 3 * contrasts["Alg 2"]


class TestExtCapacity:
    def test_capacity_ordering(self):
        result = EXPERIMENT_REGISTRY["ext_capacity"]()
        rows = {row[0]: row for row in result.rows}
        healthy = rows["Alg 1, d=8"][3]
        defended = rows["Alg 1 vs random-replacement L1"][3]
        assert healthy > 0.9
        assert defended < 0.05
        # Bad Tree-PLRU parity collapses capacity well below healthy.
        assert rows["Alg 2, d=4 (bad parity)"][3] < healthy / 4
