"""Seeded chaos suite: prove the recovery machinery, don't trust it.

The acceptance bar (ISSUE 5): a batch of 20 experiments run under
worker kills *and* checkpoint truncation completes with results
bit-identical to an undisturbed sequential run, poison tasks surface as
structured failures, and no corrupt artifact is ever loaded.  All chaos
is derived from seeds, so these tests fail reproducibly or not at all.

Experiment functions are built with ``functools.partial`` over a
module-level function so ``multiprocessing`` can pickle them into
worker processes.
"""

import json
from functools import partial

import pytest

from repro.common.errors import CheckpointCorruptWarning
from repro.common.rng import make_rng
from repro.experiments.base import ExperimentResult
from repro.experiments.chaos import (
    CHAOS_EXIT_CODE,
    ChaosConfig,
    ChaosDecision,
    bit_flip_file,
    truncate_file,
)
from repro.experiments.runner import ExperimentRunner

EXP_IDS = [f"exp{i:02d}" for i in range(20)]


def run_seeded(experiment_id, rng: int = 11):
    """A deterministic toy experiment: rows derive from (id, seed) only."""
    gen = make_rng(rng + sum(ord(c) for c in experiment_id))
    rows = [[i, gen.randrange(10_000)] for i in range(4)]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"chaos probe {experiment_id}",
        columns=["i", "draw"],
        rows=rows,
    )


def make_registry():
    return {
        experiment_id: partial(run_seeded, experiment_id)
        for experiment_id in EXP_IDS
    }


def pick_survivable_seed(ids, config_kwargs, max_task_crashes):
    """A chaos seed under which no task is ever quarantined.

    Decisions are pure functions of (seed, task, attempt), so the test
    can prove *up front* that every task survives within its crash
    budget — the suite asserts full completion, not luck.
    """
    for seed in range(200):
        config = ChaosConfig(seed=seed, **config_kwargs)
        survivable = all(
            any(
                not config.decide(task_id, attempt).kill_before_run
                and not config.decide(task_id, attempt).kill_before_report
                for attempt in range(max_task_crashes)
            )
            for task_id in ids
        )
        some_kill = any(
            config.decide(task_id, 0).kill_before_run
            or config.decide(task_id, 0).kill_before_report
            for task_id in ids
        )
        if survivable and some_kill:
            return seed
    raise AssertionError("no survivable chaos seed in range")


class TestChaosConfig:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(kill_before_run=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(stall_heartbeat=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(stall_seconds=-1.0)

    def test_decisions_are_deterministic(self):
        config = ChaosConfig(
            seed=7, kill_before_run=0.5, kill_before_report=0.5
        )
        decisions = [config.decide("task", attempt) for attempt in range(20)]
        again = [config.decide("task", attempt) for attempt in range(20)]
        assert decisions == again
        # and not degenerate: both outcomes occur across attempts
        assert any(d.kill_before_run for d in decisions)
        assert any(not d.kill_before_run for d in decisions)

    def test_decisions_vary_by_attempt(self):
        # Retries draw fresh decisions — a killed task converges.
        config = ChaosConfig(seed=3, kill_before_run=0.5)
        assert len(
            {config.decide("t", a).kill_before_run for a in range(20)}
        ) == 2

    def test_only_tasks_gates_chaos(self):
        config = ChaosConfig(
            seed=1, kill_before_run=1.0, only_tasks=("victim",)
        )
        assert config.decide("victim", 0).kill_before_run
        assert config.decide("bystander", 0) == ChaosDecision()

    def test_round_trips_through_dict(self):
        config = ChaosConfig(
            seed=5,
            kill_before_run=0.25,
            stall_heartbeat=0.5,
            stall_seconds=2.0,
            only_tasks=("a", "b"),
        )
        assert ChaosConfig.from_dict(config.to_dict()) == config

    def test_chaos_exit_code_is_distinctive(self):
        assert CHAOS_EXIT_CODE == 86
        assert CHAOS_EXIT_CODE not in (0, 1, 2)


class TestArtifactCorruption:
    def test_truncate_file(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_bytes(b"x" * 100)
        kept = truncate_file(str(path), keep_fraction=0.3)
        assert kept == 30
        assert path.stat().st_size == 30

    def test_truncate_to_empty(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_bytes(b"x" * 10)
        assert truncate_file(str(path), keep_fraction=0.0) == 0
        assert path.read_bytes() == b""

    def test_truncate_validates_fraction(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_bytes(b"x")
        with pytest.raises(ValueError):
            truncate_file(str(path), keep_fraction=1.0)

    def test_bit_flip_changes_exactly_one_bit(self, tmp_path):
        path = tmp_path / "artifact.json"
        original = bytes(range(64))
        path.write_bytes(original)
        offset = bit_flip_file(str(path), seed=9)
        flipped = path.read_bytes()
        assert len(flipped) == len(original)
        diff = [i for i in range(64) if flipped[i] != original[i]]
        assert diff == [offset]
        assert bin(flipped[offset] ^ original[offset]).count("1") == 1

    def test_bit_flip_is_seeded(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        for path in (a, b):
            path.write_bytes(b"y" * 128)
        assert bit_flip_file(str(a), seed=4) == bit_flip_file(str(b), seed=4)
        assert a.read_bytes() == b.read_bytes()

    def test_bit_flip_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            bit_flip_file(str(path))


class TestChaosAcceptance:
    """The headline guarantees, proven end to end through the runner."""

    def test_batch_survives_kills_and_truncation_bit_identically(
        self, tmp_path
    ):
        baseline = ExperimentRunner(retries=0, registry=make_registry())
        expected = [
            r.to_dict() for r in baseline.run_many(EXP_IDS).results
        ]

        # Populate a checkpoint with the first few results, then tear it
        # the way a power loss mid-write would.
        checkpoint = tmp_path / "progress.json"
        ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        ).run_many(EXP_IDS[:5])
        truncate_file(str(checkpoint), keep_fraction=0.6)

        kwargs = {"kill_before_run": 0.2, "kill_before_report": 0.1}
        seed = pick_survivable_seed(EXP_IDS, kwargs, max_task_crashes=3)
        runner = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
            max_task_crashes=3,
            heartbeat_interval=0.1,
            chaos=ChaosConfig(seed=seed, **kwargs),
        )
        with pytest.warns(CheckpointCorruptWarning, match="quarantined"):
            report = runner.run_many(EXP_IDS, jobs=2)

        # The torn checkpoint was detected and quarantined, not loaded.
        assert report.resumed == []
        assert (tmp_path / "progress.json.corrupt").exists()
        assert runner.corrupt_artifacts_detected == 1
        # Chaos actually struck, and recovery still produced the exact
        # sequential results, in order, with nothing quarantined.
        assert not runner.executor_stats.clean
        assert runner.executor_stats.workers_crashed > 0
        assert report.failures == []
        assert [r.to_dict() for r in report.results] == expected
        # The rewritten checkpoint is a valid v2 envelope again.
        envelope = json.loads(checkpoint.read_text())
        assert envelope["version"] == 2
        assert sorted(envelope["data"]["results"]) == sorted(EXP_IDS)

    def test_poison_task_is_a_structured_failure_not_a_batch_abort(self):
        runner = ExperimentRunner(
            retries=0,
            registry=make_registry(),
            max_task_crashes=2,
            heartbeat_interval=0.1,
            chaos=ChaosConfig(
                seed=0, kill_before_run=1.0, only_tasks=("exp07",)
            ),
        )
        report = runner.run_many(EXP_IDS, jobs=2)
        assert [f.experiment_id for f in report.failures] == ["exp07"]
        failure = report.failures[0]
        assert failure.error_type == "WorkerCrashed"
        assert "quarantined" in failure.message
        assert failure.attempts == 2
        assert runner.executor_stats.tasks_quarantined == 1
        completed = [r.experiment_id for r in report.results]
        assert completed == [i for i in EXP_IDS if i != "exp07"]

    def test_bit_flipped_checkpoint_is_detected_and_recomputed(
        self, tmp_path
    ):
        checkpoint = tmp_path / "progress.json"
        first = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        )
        expected = [
            r.to_dict() for r in first.run_many(EXP_IDS[:6]).results
        ]
        bit_flip_file(str(checkpoint), seed=13)

        runner = ExperimentRunner(
            retries=0,
            checkpoint_path=str(checkpoint),
            registry=make_registry(),
        )
        with pytest.warns(CheckpointCorruptWarning):
            report = runner.run_many(EXP_IDS[:6])
        assert report.resumed == []  # the corrupt file was never trusted
        assert (tmp_path / "progress.json.corrupt").exists()
        assert [r.to_dict() for r in report.results] == expected


class TestServiceChaosConfig:
    def test_probabilities_validated(self):
        from repro.experiments.chaos import ServiceChaosConfig

        with pytest.raises(ValueError):
            ServiceChaosConfig(corrupt_cache=1.5)
        with pytest.raises(ValueError):
            ServiceChaosConfig(client_disconnect=-0.1)

    def test_decisions_are_deterministic_and_seed_sensitive(self):
        from repro.experiments.chaos import ServiceChaosConfig

        a = ServiceChaosConfig(seed=1, corrupt_cache=0.5, client_disconnect=0.5)
        b = ServiceChaosConfig(seed=1, corrupt_cache=0.5, client_disconnect=0.5)
        c = ServiceChaosConfig(seed=2, corrupt_cache=0.5, client_disconnect=0.5)
        keys = [f"key-{i}" for i in range(64)]
        assert [a.decide_corrupt(k) for k in keys] == [
            b.decide_corrupt(k) for k in keys
        ]
        assert [a.decide_corrupt(k) for k in keys] != [
            c.decide_corrupt(k) for k in keys
        ]
        indexes = list(range(64))
        assert [a.decide_disconnect(i) for i in indexes] == [
            b.decide_disconnect(i) for i in indexes
        ]

    def test_zero_probability_never_strikes(self):
        from repro.experiments.chaos import ServiceChaosConfig

        chaos = ServiceChaosConfig(seed=9)
        assert not any(chaos.decide_corrupt(f"k{i}") for i in range(50))
        assert not any(chaos.decide_disconnect(i) for i in range(50))

    def test_round_trips_through_dict_with_nested_worker(self):
        from repro.experiments.chaos import ChaosConfig, ServiceChaosConfig

        chaos = ServiceChaosConfig(
            seed=4,
            corrupt_cache=0.25,
            client_disconnect=0.1,
            worker=ChaosConfig(seed=4, kill_before_run=0.3),
        )
        assert ServiceChaosConfig.from_dict(chaos.to_dict()) == chaos
        bare = ServiceChaosConfig(seed=5)
        assert ServiceChaosConfig.from_dict(bare.to_dict()) == bare
