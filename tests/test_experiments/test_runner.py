"""Tests for the resilient experiment runner."""

import json
import threading
import time

import pytest

from repro.common.deadline import Deadline
from repro.common.errors import CheckpointCorruptWarning, ExperimentTimeout
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import (
    ExperimentFailure,
    ExperimentRunner,
    RunReport,
    _AttemptBox,
)


def _result(experiment_id, rows=None):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"test result {experiment_id}",
        columns=["x"],
        rows=rows if rows is not None else [[1]],
    )


class TestRunOne:
    def test_passes_through_a_healthy_experiment(self):
        registry = {"good": lambda: _result("good")}
        runner = ExperimentRunner(registry=registry)
        assert runner.run_one("good").experiment_id == "good"

    def test_retries_until_success(self):
        calls = []

        def flaky():
            calls.append(True)
            if len(calls) < 3:
                raise RuntimeError("stochastic failure")
            return _result("flaky")

        runner = ExperimentRunner(retries=2, registry={"flaky": flaky})
        assert runner.run_one("flaky").experiment_id == "flaky"
        assert len(calls) == 3

    def test_rotates_seed_for_rng_experiments(self):
        seeds = []

        def seeded(rng: int = 7):
            seeds.append(rng)
            if len(seeds) < 3:
                raise RuntimeError("bad noise realization")
            return _result("seeded")

        runner = ExperimentRunner(retries=2, registry={"seeded": seeded})
        runner.run_one("seeded")
        # First attempt uses the experiment's own default; retries rotate.
        assert seeds == [7, 1007, 2007]

    def test_raises_after_exhausting_retries(self):
        def broken():
            raise ValueError("deterministically broken")

        runner = ExperimentRunner(retries=1, registry={"broken": broken})
        with pytest.raises(ValueError, match="deterministically broken"):
            runner.run_one("broken")

    def test_timeout_surfaces_as_experiment_timeout(self):
        def wedged():
            time.sleep(30.0)
            return _result("wedged")

        runner = ExperimentRunner(
            timeout_seconds=0.1, retries=0, registry={"wedged": wedged}
        )
        with pytest.raises(ExperimentTimeout, match="wall-clock"):
            runner.run_one("wedged")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ExperimentRunner(timeout_seconds=0.0)
        with pytest.raises(ValueError):
            ExperimentRunner(retries=-1)


class TestRunMany:
    def test_failures_do_not_stop_the_batch(self):
        def broken():
            raise RuntimeError("boom")

        registry = {
            "a": lambda: _result("a"),
            "b": broken,
            "c": lambda: _result("c"),
        }
        runner = ExperimentRunner(retries=0, registry=registry)
        report = runner.run_many(["a", "b", "c"])
        assert [r.experiment_id for r in report.results] == ["a", "c"]
        assert [f.experiment_id for f in report.failures] == ["b"]
        assert not report.ok
        assert "2 completed" in report.summary()
        assert "1 failed" in report.summary()

    def test_callbacks_fire_per_outcome(self):
        def broken():
            raise RuntimeError("boom")

        registry = {"a": lambda: _result("a"), "b": broken}
        completed, failed = [], []
        runner = ExperimentRunner(retries=0, registry=registry)
        runner.run_many(
            ["a", "b"],
            on_result=lambda result, elapsed: completed.append(
                result.experiment_id
            ),
            on_failure=lambda failure: failed.append(failure.experiment_id),
        )
        assert completed == ["a"]
        assert failed == ["b"]

    def test_failure_record_is_structured(self):
        def broken():
            raise KeyError("missing table")

        runner = ExperimentRunner(retries=2, registry={"x": broken})
        report = runner.run_many(["x"])
        failure = report.failures[0]
        assert isinstance(failure, ExperimentFailure)
        assert failure.error_type == "KeyError"
        assert failure.attempts == 3
        assert "missing table" in failure.message
        assert "FAILED" in failure.render()


class TestCheckpointing:
    def test_completed_results_survive_a_restart(self, tmp_path):
        checkpoint = str(tmp_path / "progress.json")
        calls = []

        def tracked():
            calls.append(True)
            return _result("a", rows=[[41], [42]])

        registry = {"a": tracked}
        first = ExperimentRunner(
            retries=0, checkpoint_path=checkpoint, registry=registry
        ).run_many(["a"])
        assert first.resumed == []
        second = ExperimentRunner(
            retries=0, checkpoint_path=checkpoint, registry=registry
        ).run_many(["a"])
        assert second.resumed == ["a"]
        assert len(calls) == 1  # not recomputed
        assert second.results[0].rows == [[41], [42]]

    def test_interrupted_batch_resumes_after_the_failure(self, tmp_path):
        checkpoint = str(tmp_path / "progress.json")

        def broken():
            raise RuntimeError("boom")

        registry = {"a": lambda: _result("a"), "b": broken}
        report = ExperimentRunner(
            retries=0, checkpoint_path=checkpoint, registry=registry
        ).run_many(["a", "b"])
        assert not report.ok
        envelope = json.loads((tmp_path / "progress.json").read_text())
        saved = envelope["data"]
        assert list(saved["results"]) == ["a"]  # failure not checkpointed

        registry["b"] = lambda: _result("b")
        retry = ExperimentRunner(
            retries=0, checkpoint_path=checkpoint, registry=registry
        ).run_many(["a", "b"])
        assert retry.ok
        assert retry.resumed == ["a"]

    def test_corrupt_checkpoint_only_costs_recomputation(self, tmp_path):
        checkpoint = tmp_path / "progress.json"
        checkpoint.write_text("{ not json")
        registry = {"a": lambda: _result("a")}
        with pytest.warns(CheckpointCorruptWarning, match="quarantined"):
            report = ExperimentRunner(
                retries=0, checkpoint_path=str(checkpoint), registry=registry
            ).run_many(["a"])
        assert report.ok
        assert report.resumed == []
        # The bad file was moved aside for inspection, never overwritten
        # in place or silently discarded.
        assert (tmp_path / "progress.json.corrupt").read_text() == "{ not json"


class TestResultSerialization:
    def test_round_trip(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            columns=["a", "b"],
            rows=[[1, "two"], [3.5, None]],
            paper_expectation="expected",
            notes="noted",
        )
        assert ExperimentResult.from_dict(result.to_dict()) == result

    def test_save_csv_uses_binary_safe_newlines(self, tmp_path):
        result = _result("csv", rows=[[1], [2]])
        path = tmp_path / "out.csv"
        result.save_csv(str(path))
        raw = path.read_bytes()
        assert b"\r\r\n" not in raw
        assert raw.count(b"\r\n") == 3  # header + two rows


class TestRunReport:
    def test_empty_report_is_ok(self):
        assert RunReport().ok


class TestAttemptBox:
    def test_publish_before_seal_is_kept(self):
        box = _AttemptBox()
        assert box.publish("result", 42)
        assert box.seal() == {"result": 42}

    def test_publish_after_seal_is_rejected(self):
        # The exact race the box exists to close: a worker finishing
        # between the join timeout and the parent's verdict must find
        # the box already sealed.
        box = _AttemptBox()
        assert box.seal() == {}
        assert not box.publish("result", "too late")
        assert box.seal() == {}


class TestTimeoutDiscard:
    def test_late_result_is_discarded_and_leak_counted(self):
        release = threading.Event()
        finished = threading.Event()

        def wedged():
            release.wait(5.0)
            finished.set()
            return _result("wedged")

        runner = ExperimentRunner(
            timeout_seconds=0.1, retries=0, registry={"wedged": wedged}
        )
        with pytest.raises(ExperimentTimeout):
            runner.run_one("wedged")
        assert runner.leaked_timeout_threads == 1
        # Let the stuck worker finish *after* the verdict: its result
        # lands in a sealed box, so nothing observable changes.
        release.set()
        assert finished.wait(5.0)
        assert runner.leaked_timeout_threads == 1

    def test_leak_metric_lands_on_the_active_session(self):
        from repro.obs.session import ObsSession, observe

        def wedged():
            time.sleep(5.0)
            return _result("wedged")

        runner = ExperimentRunner(
            timeout_seconds=0.05, retries=0, registry={"wedged": wedged}
        )
        session = ObsSession()
        with observe(session):
            with pytest.raises(ExperimentTimeout):
                runner.run_one("wedged")
        counters = session.metrics.snapshot()["counters"]
        assert counters["runner.timeouts.leaked_threads"] == 1

    def test_fast_attempt_leaks_nothing(self):
        runner = ExperimentRunner(
            timeout_seconds=5.0, retries=0, registry={"quick": lambda: _result("quick")}
        )
        assert runner.run_one("quick").experiment_id == "quick"
        assert runner.leaked_timeout_threads == 0


class TestRunOneDeadline:
    def test_expired_deadline_refuses_to_start(self):
        calls = []

        def fn():
            calls.append(True)
            return _result("x")

        runner = ExperimentRunner(retries=0, registry={"x": fn})
        deadline = Deadline.after(0.0)
        with pytest.raises(ExperimentTimeout, match="not started"):
            runner.run_one("x", deadline=deadline)
        assert calls == []

    def test_deadline_bounds_attempt_even_without_configured_timeout(self):
        def wedged():
            time.sleep(5.0)
            return _result("wedged")

        runner = ExperimentRunner(retries=0, registry={"wedged": wedged})
        start = time.monotonic()
        with pytest.raises(ExperimentTimeout):
            runner.run_one("wedged", deadline=Deadline.after(0.2))
        assert time.monotonic() - start < 2.0

    def test_deadline_stops_the_retry_loop_early(self):
        calls = []

        def slow_failure():
            calls.append(True)
            time.sleep(0.15)
            raise RuntimeError("failing slowly")

        runner = ExperimentRunner(
            retries=10, registry={"slow": slow_failure}
        )
        with pytest.raises((RuntimeError, ExperimentTimeout)):
            runner.run_one("slow", deadline=Deadline.after(0.2))
        assert len(calls) <= 2

    def test_generous_deadline_changes_nothing(self):
        runner = ExperimentRunner(
            retries=1, registry={"ok": lambda: _result("ok")}
        )
        result = runner.run_one("ok", deadline=Deadline.after(60.0))
        assert result.experiment_id == "ok"


class TestRunTrials:
    def test_rejects_bad_arguments(self):
        runner = ExperimentRunner()
        with pytest.raises(ValueError, match="unknown batch algorithm"):
            runner.run_trials("alg9", trials=4)
        with pytest.raises(ValueError, match="trials"):
            runner.run_trials("alg1", trials=0)
        with pytest.raises(ValueError, match="block_size"):
            runner.run_trials("alg1", trials=4, block_size=0)
        with pytest.raises(ValueError, match="message_length"):
            runner.run_trials("alg1", trials=4, message_length=0)

    def test_blocks_cover_the_trial_range_exactly_once(self):
        results = []
        runner = ExperimentRunner()
        report = runner.run_trials(
            "alg1",
            trials=11,
            message_length=4,
            block_size=4,
            on_result=lambda r, _t: results.append(r),
        )
        assert report.ok
        assert [r.experiment_id for r in results] == [
            "alg1@trials0-4",
            "alg1@trials4-8",
            "alg1@trials8-11",
        ]
        trial_ids = [row[0] for r in results for row in r.rows]
        assert trial_ids == list(range(11))

    def test_rows_do_not_depend_on_block_size(self):
        def rows(block_size):
            collected = []
            ExperimentRunner().run_trials(
                "alg2",
                trials=10,
                message_length=4,
                block_size=block_size,
                on_result=lambda r, _t: collected.extend(r.rows),
            )
            return collected

        assert rows(3) == rows(10)

    def test_checkpoint_resume_restores_completed_blocks(self, tmp_path):
        checkpoint = tmp_path / "trials.json"
        first = ExperimentRunner(checkpoint_path=checkpoint)
        first.run_trials("alg1", trials=8, message_length=4, block_size=4)

        restored = []
        second = ExperimentRunner(checkpoint_path=checkpoint)
        report = second.run_trials(
            "alg1",
            trials=8,
            message_length=4,
            block_size=4,
            on_result=lambda r, _t: restored.append(r),
        )
        assert report.ok
        assert sorted(report.resumed) == [
            "alg1@trials0-4",
            "alg1@trials4-8",
        ]
        assert [r.experiment_id for r in restored] == [
            "alg1@trials0-4",
            "alg1@trials4-8",
        ]

    def test_observed_run_captures_batch_counters(self):
        runner = ExperimentRunner(observe=True)
        runner.run_trials("alg1", trials=6, message_length=4, block_size=6)
        assert list(runner.captures) == ["alg1@trials0-6"]
        counters = runner.captures["alg1@trials0-6"].metrics["counters"]
        assert counters["batch.trials"] == 6
        assert counters["batch.steps"] > 0
