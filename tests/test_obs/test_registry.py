"""Registry arithmetic and catalogue enforcement."""

import pytest

from repro.common.errors import ObservabilityError
from repro.obs.catalog import LATENCY_EDGES_CYCLES, METRIC_CATALOG
from repro.obs.registry import Histogram, MetricsRegistry


class TestCounters:
    def test_inc_arithmetic(self):
        registry = MetricsRegistry()
        counter = registry.counter("cache.l1.hits")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_same_name_shares_one_series(self):
        registry = MetricsRegistry()
        registry.counter("cache.l1.hits").inc(3)
        registry.counter("cache.l1.hits").inc(4)
        assert registry.snapshot()["counters"]["cache.l1.hits"] == 7

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("cache.fills", label="L1D").inc(2)
        registry.counter("cache.fills", label="L2").inc(5)
        assert registry.snapshot()["counters"]["cache.fills"] == {
            "L1D": 2,
            "L2": 5,
        }

    def test_unknown_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="not in the catalogue"):
            registry.counter("cache.l1.hitz")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="declared as a gauge"):
            registry.counter("channel.threshold")
        with pytest.raises(ObservabilityError, match="declared as a counter"):
            registry.gauge("cache.l1.hits")

    def test_label_on_unlabelled_metric_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="not declared as labelled"):
            registry.counter("cache.l1.hits", label="L1D")


class TestGauges:
    def test_set_replaces(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("channel.threshold")
        gauge.set(10)
        gauge.set(8)
        assert registry.snapshot()["gauges"]["channel.threshold"] == 8

    def test_unset_gauges_absent_from_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("channel.threshold")
        assert registry.snapshot()["gauges"] == {}


class TestHistogramBuckets:
    def test_edges_are_strictly_increasing(self):
        assert list(LATENCY_EDGES_CYCLES) == sorted(set(LATENCY_EDGES_CYCLES))

    def test_edge_value_lands_in_its_own_bucket(self):
        # Buckets are (edge[i-1], edge[i]]: a 4-cycle L1 hit belongs to
        # the bucket labelled <=4, not the next one up.
        histogram = Histogram(edges=(4.0, 8.0, 16.0))
        histogram.observe(4.0)
        histogram.observe(3)
        histogram.observe(4.5)
        histogram.observe(8.0)
        assert histogram.counts == [2, 2, 0, 0]

    def test_overflow_bucket(self):
        histogram = Histogram(edges=(4.0, 8.0))
        histogram.observe(9)
        histogram.observe(10_000)
        assert histogram.counts == [0, 0, 2]

    def test_count_total_mean(self):
        histogram = Histogram(edges=(4.0, 8.0))
        for value in (2, 4, 6):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 12
        assert histogram.mean() == 4.0
        assert Histogram(edges=(1.0,)).mean() == 0.0

    def test_unsorted_or_duplicate_edges_rejected(self):
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            Histogram(edges=(8.0, 4.0))
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            Histogram(edges=(4.0, 4.0))

    def test_registry_histogram_snapshot_is_self_describing(self):
        registry = MetricsRegistry()
        registry.histogram("access.latency").observe(4)
        snap = registry.snapshot()["histograms"]["access.latency"]
        assert snap["edges"] == list(LATENCY_EDGES_CYCLES)
        assert len(snap["counts"]) == len(LATENCY_EDGES_CYCLES) + 1
        assert snap["count"] == 1
        assert snap["sum"] == 4


class TestCatalog:
    def test_catalog_kinds_and_units(self):
        for spec in METRIC_CATALOG.values():
            assert spec.kind in ("counter", "gauge", "histogram")
            assert spec.unit
            assert spec.module.startswith("repro.")
            assert spec.description.endswith(".")

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("cache.l1.hits").inc()
        registry.counter("cache.fills", label="L1D").inc()
        registry.gauge("channel.threshold").set(8)
        registry.histogram("access.latency").observe(4)
        json.dumps(registry.snapshot())
