"""Ring-buffer truncation and span structure of the trace bus."""

import pytest

from repro.common.errors import ObservabilityError
from repro.obs.registry import Counter
from repro.obs.tracebus import TraceBus


class TestRingBuffer:
    def test_truncates_oldest_first(self):
        bus = TraceBus(depth=4)
        for i in range(10):
            bus.event("tick", i=i)
        assert len(bus) == 4
        assert bus.dropped == 6
        assert [r["i"] for r in bus.records()] == [6, 7, 8, 9]

    def test_seq_numbers_survive_truncation(self):
        bus = TraceBus(depth=3)
        for i in range(8):
            bus.event("tick", i=i)
        assert [r["seq"] for r in bus.records()] == [5, 6, 7]

    def test_dropped_counter_is_bumped(self):
        counter = Counter()
        bus = TraceBus(depth=2, dropped_counter=counter)
        for i in range(5):
            bus.event("tick", i=i)
        assert counter.value == 3
        assert bus.dropped == 3

    def test_under_capacity_drops_nothing(self):
        bus = TraceBus(depth=100)
        for i in range(10):
            bus.event("tick", i=i)
        assert bus.dropped == 0
        assert len(bus) == 10

    def test_depth_must_be_positive(self):
        with pytest.raises(ObservabilityError, match="depth"):
            TraceBus(depth=0)


class TestSpans:
    def test_span_start_end_pair(self):
        bus = TraceBus()
        with bus.span("experiment", experiment_id="fig4") as span_id:
            bus.event("inner")
        records = bus.records()
        assert [r["type"] for r in records] == [
            "span_start",
            "event",
            "span_end",
        ]
        start, inner, end = records
        assert start["id"] == end["id"] == span_id
        assert start["experiment_id"] == "fig4"
        assert inner["span"] == span_id

    def test_nested_spans_record_parents(self):
        bus = TraceBus()
        with bus.span("experiment") as outer:
            with bus.span("protocol.hyper_threaded") as inner:
                bus.event("channel.bit", bit=1)
        records = {(r["type"], r.get("name")): r for r in bus.records()}
        assert (
            records[("span_start", "protocol.hyper_threaded")]["span"]
            == outer
        )
        assert records[("event", "channel.bit")]["span"] == inner
        assert outer != inner

    def test_span_ids_never_reused(self):
        bus = TraceBus()
        ids = []
        for _ in range(3):
            with bus.span("experiment") as span_id:
                ids.append(span_id)
        assert len(set(ids)) == 3

    def test_span_stack_unwinds_on_error(self):
        bus = TraceBus()
        with pytest.raises(RuntimeError):
            with bus.span("experiment"):
                raise RuntimeError("boom")
        bus.event("after")
        assert "span" not in bus.records()[-1]
