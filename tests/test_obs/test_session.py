"""Session scoping: activation, nesting, and trace-disabled no-ops."""

from repro.obs.session import ObsSession, active, observe


class TestActivation:
    def test_inactive_by_default(self):
        assert active() is None

    def test_observe_scopes_and_restores(self):
        with observe() as session:
            assert active() is session
        assert active() is None

    def test_nesting_replaces_then_restores(self):
        with observe() as outer:
            with observe() as inner:
                assert active() is inner
            assert active() is outer

    def test_restores_on_error(self):
        try:
            with observe():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert active() is None


class TestTraceDepthZero:
    def test_metrics_only_session_has_no_bus(self):
        session = ObsSession(trace_depth=0)
        assert session.bus is None
        session.event("ignored")
        with session.span("ignored") as span_id:
            assert span_id is None
        # metrics still work without a bus
        session.metrics.counter("cache.l1.hits").inc()
        assert session.metrics.snapshot()["counters"]["cache.l1.hits"] == 1

    def test_traced_session_wires_dropped_counter(self):
        session = ObsSession(trace_depth=2)
        for i in range(5):
            session.event("tick", i=i)
        snapshot = session.metrics.snapshot()
        assert snapshot["counters"]["trace.events.dropped"] == 3


class TestManifestNotes:
    def test_machines_dedupe_with_multiplicity(self):
        session = ObsSession(trace_depth=0)
        session.note_machine("Intel Xeon E5-2690", "reference")
        session.note_machine("Intel Xeon E5-2690", "reference")
        session.note_machine("AMD EPYC 7571", "fast")
        assert session.machines() == [
            {"spec": "Intel Xeon E5-2690", "engine": "reference", "count": 2},
            {"spec": "AMD EPYC 7571", "engine": "fast", "count": 1},
        ]

    def test_fault_models_sorted_unique(self):
        session = ObsSession(trace_depth=0)
        session.note_fault_model("tsc_jitter")
        session.note_fault_model("interrupt_burst")
        session.note_fault_model("tsc_jitter")
        assert session.fault_models() == ["interrupt_burst", "tsc_jitter"]
