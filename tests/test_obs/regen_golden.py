"""Regenerate golden_report.md from the synthetic trace in
test_report.py (run after deliberate report-format changes):

    PYTHONPATH=src:tests python tests/test_obs/regen_golden.py
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))

from test_obs.test_report import GOLDEN, sample_records  # noqa: E402

from repro.obs.report import render_report  # noqa: E402

if __name__ == "__main__":
    with open(GOLDEN, "w") as handle:
        handle.write(render_report(sample_records()) + "\n")
    print(f"wrote {GOLDEN}")
