"""Manifest round-trips and footer rendering."""

import repro
from repro.obs.manifest import RunManifest, git_revision


def _manifest(**overrides):
    base = dict(
        experiment_id="fig4",
        seed=7,
        attempts=1,
        machines=[{"spec": "Intel Xeon E5-2690", "engine": "reference",
                   "count": 2}],
        fault_models=[],
        engine="reference",
        sanitize=False,
        git_rev="abc1234",
        python_version="3.11.0",
    )
    base.update(overrides)
    return RunManifest(**base)


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        manifest = _manifest(fault_models=["tsc_jitter"], sanitize=True)
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_from_dict_defaults_for_missing_fields(self):
        manifest = RunManifest.from_dict({"experiment_id": "fig4"})
        assert manifest.seed is None
        assert manifest.attempts == 1
        assert manifest.machines == []
        assert manifest.engine == "reference"

    def test_with_provenance_stamps_checkout(self):
        manifest = RunManifest.with_provenance(experiment_id="fig4")
        assert manifest.git_rev  # "unknown" at worst, never empty
        assert manifest.python_version
        assert manifest.package_version == repro.__version__

    def test_git_revision_never_raises(self):
        assert isinstance(git_revision(), str)


class TestFooterLine:
    def test_deterministic_fields_only(self):
        footer = _manifest().footer_line()
        assert footer == (
            "_run: seed 7 · 2× Intel Xeon E5-2690 (reference) · "
            f"repro {repro.__version__}_"
        )
        # provenance must stay out of regenerated doc blocks
        assert "abc1234" not in footer
        assert "3.11.0" not in footer

    def test_seedless_run_renders_dash(self):
        assert "_run: seed -" in _manifest(seed=None).footer_line()

    def test_retry_sanitize_and_faults_are_called_out(self):
        footer = _manifest(
            attempts=2, sanitize=True, fault_models=["a", "b"]
        ).footer_line()
        assert "attempt 2" in footer
        assert "sanitized" in footer
        assert "faults a,b" in footer

    def test_no_machines_summary(self):
        assert "no machines" in _manifest(machines=[]).footer_line()
