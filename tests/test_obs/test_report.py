"""Report rendering: blocks, summaries, JSONL parsing, golden output."""

import hashlib
import json
import os

import pytest

from repro.common.errors import CheckpointCorruptWarning, ObservabilityError
from repro.experiments.base import ExperimentResult
from repro.obs.catalog import catalog_markdown
from repro.obs.manifest import RunManifest
from repro.obs.report import (
    CATALOG_BEGIN,
    CATALOG_END,
    experiment_block,
    metrics_summary_line,
    read_records,
    render_report,
    replace_generated_section,
    update_catalog_doc,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_report.md")


def _result():
    return ExperimentResult(
        experiment_id="fig4",
        title="Figure 4: error rate vs transmission rate",
        columns=["d", "error"],
        rows=[[4, 0.05], [8, 0.02]],
        paper_expectation="errors stay under 15%.",
    )


def _manifest():
    return RunManifest(
        experiment_id="fig4",
        seed=7,
        machines=[{"spec": "Intel Xeon E5-2690", "engine": "reference",
                   "count": 1}],
        engine="reference",
        package_version="1.0.0",
        git_rev="abc1234",
        python_version="3.11.0",
    )


def _metrics():
    return {
        "counters": {
            "cache.l1.hits": 100,
            "cache.fills": {"L1D": 10, "L2": 4},
            "channel.bits.sent": 8,
        },
        "gauges": {"channel.threshold": 8},
        "histograms": {
            "access.latency": {
                "edges": [4.0, 8.0],
                "counts": [90, 10, 0],
                "count": 100,
                "sum": 440.0,
            }
        },
    }


def sample_records():
    """The synthetic trace the golden file renders (kept tiny on
    purpose: regenerate with
    ``python tests/test_obs/regen_golden.py`` after format changes)."""
    return [
        {
            "type": "run",
            "experiment_ids": ["fig4"],
            "package_version": "1.0.0",
            "git_rev": "abc1234",
            "python_version": "3.11.0",
            "engine": "reference",
            "jobs": 1,
            "sanitize": False,
            "summary": "1 ok, 0 failed",
        },
        dict(_manifest().to_dict(), type="manifest"),
        {"type": "result", "experiment_id": "fig4",
         "result": _result().to_dict()},
        {"type": "metrics", "experiment_id": "fig4", "metrics": _metrics()},
        {"type": "span_start", "name": "experiment", "id": 1, "seq": 0,
         "experiment_id": "fig4"},
        {"type": "event", "name": "channel.bit", "bit": 1, "cycle": 600,
         "span": 1, "seq": 1, "experiment_id": "fig4"},
        {"type": "span_end", "name": "experiment", "id": 1, "seq": 2,
         "experiment_id": "fig4"},
    ]


class TestSummaryLine:
    def test_orders_and_skips_zero_counters(self):
        line = metrics_summary_line(
            {"counters": {"cache.l1.hits": 3, "cache.l1.misses": 0,
                          "channel.bits.sent": 8}}
        )
        assert line == "_metrics: cache.l1.hits=3 · channel.bits.sent=8_"

    def test_labelled_counters_are_summed(self):
        line = metrics_summary_line(
            {"counters": {"cache.evictions": {"lru": 10, "tree-plru": 4}}}
        )
        assert "cache.evictions=14" in line

    def test_empty_metrics(self):
        assert metrics_summary_line(None) == "_metrics: none recorded_"
        assert metrics_summary_line({}) == "_metrics: none recorded_"


class TestExperimentBlock:
    def test_shape(self):
        block = experiment_block(_result(), _manifest(), _metrics())
        lines = block.splitlines()
        assert lines[0] == "### fig4"
        assert lines[2] == "```"
        assert block.endswith(
            "_metrics: cache.l1.hits=100 · channel.bits.sent=8_\n"
        )
        assert "_run: seed 7 · Intel Xeon E5-2690 (reference) " in block
        assert "abc1234" not in block  # provenance never in blocks

    def test_manifest_optional(self):
        block = experiment_block(_result())
        assert "_run:" not in block
        assert "_metrics: none recorded_" in block


class TestReadRecords:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        records = sample_records()
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n\n"
        )
        assert read_records(str(path)) == records

    def test_bad_json_reports_line_and_quarantines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"type": "run"}\nnot json\n')
        with pytest.warns(CheckpointCorruptWarning):
            with pytest.raises(ObservabilityError, match=":2:"):
                read_records(str(path))
        assert not path.exists()
        assert (tmp_path / "run.jsonl.corrupt").exists()

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("\n")
        with pytest.raises(ObservabilityError, match="empty trace"):
            read_records(str(path))


def _footered_trace(records):
    """Serialize records the way the runner writes a v2 trace."""
    body = "\n".join(json.dumps(r) for r in records) + "\n"
    digest = "sha256:" + hashlib.sha256(body.encode("utf-8")).hexdigest()
    footer = json.dumps(
        {
            "type": "trace-footer",
            "trace_version": 2,
            "records": len(records),
            "checksum": digest,
        }
    )
    return body + footer + "\n"


class TestTraceFooter:
    def test_valid_footer_verified_and_stripped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        records = sample_records()
        path.write_text(_footered_trace(records))
        assert read_records(str(path)) == records

    def test_footerless_legacy_trace_still_reads(self, tmp_path):
        path = tmp_path / "run.jsonl"
        records = sample_records()
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        assert read_records(str(path)) == records

    def test_tampered_body_is_detected_and_quarantined(self, tmp_path):
        path = tmp_path / "run.jsonl"
        text = _footered_trace(sample_records())
        path.write_text(text.replace('"jobs": 1', '"jobs": 8'))
        with pytest.warns(CheckpointCorruptWarning, match="checksum"):
            with pytest.raises(ObservabilityError, match="checksum"):
                read_records(str(path))
        assert not path.exists()
        assert (tmp_path / "run.jsonl.corrupt").exists()

    def test_truncated_record_is_detected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        text = _footered_trace(sample_records())
        # Tear the file mid-record, the way a torn write would.
        path.write_text(text[: len(text) // 2])
        with pytest.warns(CheckpointCorruptWarning):
            with pytest.raises(ObservabilityError):
                read_records(str(path))
        assert (tmp_path / "run.jsonl.corrupt").exists()

    def test_footer_only_file_is_empty(self, tmp_path):
        path = tmp_path / "run.jsonl"
        body = ""
        digest = (
            "sha256:" + hashlib.sha256(body.encode("utf-8")).hexdigest()
        )
        path.write_text(
            json.dumps({"type": "trace-footer", "checksum": digest}) + "\n"
        )
        with pytest.raises(ObservabilityError, match="empty trace"):
            read_records(str(path))

    def test_executor_stats_rendered_from_header(self):
        records = sample_records()
        records[0] = dict(
            records[0],
            executor={
                "workers_spawned": 2,
                "workers_crashed": 3,
                "workers_killed_deadline": 1,
                "workers_killed_heartbeat": 0,
                "tasks_requeued": 2,
                "tasks_quarantined": 1,
            },
        )
        rendered = render_report(records)
        assert (
            "_executor: crashed 3 · requeued 2 · quarantined 1 · "
            "deadline-kills 1 · heartbeat-kills 0_" in rendered
        )

    def test_no_executor_line_without_header_stats(self):
        assert "_executor:" not in render_report(sample_records())


class TestGoldenReport:
    def test_render_matches_golden(self):
        with open(GOLDEN) as handle:
            golden = handle.read()
        assert render_report(sample_records()) + "\n" == golden

    def test_report_block_identical_to_doc_block(self):
        # The one invariant everything hangs off: report and generator
        # share the formatter byte-for-byte.
        rendered = render_report(sample_records())
        assert experiment_block(_result(), _manifest(), _metrics()) in rendered


class TestCatalogDoc:
    def _doc(self, tmp_path, body="stale"):
        path = tmp_path / "OBS.md"
        path.write_text(
            f"intro\n\n{CATALOG_BEGIN}\n{body}\n{CATALOG_END}\n\ntail\n"
        )
        return str(path)

    def test_update_rewrites_section_only(self, tmp_path):
        path = self._doc(tmp_path)
        assert update_catalog_doc(path) is False  # was stale
        with open(path) as handle:
            text = handle.read()
        assert catalog_markdown() in text
        assert text.startswith("intro\n")
        assert text.endswith("\ntail\n")
        assert update_catalog_doc(path) is True  # now current

    def test_check_mode_never_writes(self, tmp_path):
        path = self._doc(tmp_path)
        assert update_catalog_doc(path, check=True) is False
        with open(path) as handle:
            assert "stale" in handle.read()

    def test_missing_markers_rejected(self):
        with pytest.raises(ObservabilityError, match="markers"):
            replace_generated_section("no markers here", "content")

    def test_committed_doc_is_current(self):
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(GOLDEN)))
        doc = os.path.join(repo_root, "docs", "OBSERVABILITY.md")
        assert update_catalog_doc(doc, check=True) is True
