"""Observability must read the simulation, never steer it: results are
bit-identical with no session, with a metrics-only session, and with
full tracing."""

import repro.experiments  # noqa: F401 - populates the registry
from repro.channels import (
    CovertChannelProtocol,
    ProtocolConfig,
    SharedMemoryLRUChannel,
    runlength_decode,
    sample_bits,
)
from repro.experiments import EXPERIMENT_REGISTRY
from repro.obs.session import ObsSession, observe
from repro.sim import INTEL_E5_2690, Machine

MESSAGE = [1, 0, 1, 1, 0, 0, 1, 0]


def _transfer():
    machine = Machine(INTEL_E5_2690, rng=2024)
    channel = SharedMemoryLRUChannel.build(
        machine.spec.hierarchy.l1, target_set=1, d=8
    )
    protocol = CovertChannelProtocol(
        machine, channel, ProtocolConfig(ts=6000, tr=600)
    )
    run = protocol.run_hyper_threaded(MESSAGE)
    return (
        runlength_decode(sample_bits(run), 10)[: len(MESSAGE)],
        run.latencies(),
    )


class TestBitIdentity:
    def test_protocol_run_identical_under_observation(self):
        bare = _transfer()
        with observe(ObsSession(trace_depth=0)):
            metrics_only = _transfer()
        with observe(ObsSession(trace_depth=4096)) as session:
            traced = _transfer()
        assert metrics_only == bare
        assert traced == bare
        # and the session actually saw the run (this is not a no-op)
        counters = session.metrics.snapshot()["counters"]
        assert counters["channel.bits.sent"] == len(MESSAGE)
        assert len(session.bus.records()) > 0

    def test_experiment_identical_under_observation(self):
        run = EXPERIMENT_REGISTRY["table2"]
        bare = run()
        with observe(ObsSession(trace_depth=0)):
            observed = run()
        assert observed.to_dict() == bare.to_dict()
