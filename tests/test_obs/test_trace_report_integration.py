"""End-to-end: run --trace → report reproduces the EXPERIMENTS.md block
verbatim, and checkpoints round-trip the observability capture."""

import json
import os
import re

import repro.experiments  # noqa: F401 - populates the registry
from repro.experiments.runner import ExperimentRunner
from repro.obs.report import (
    RunRecords,
    experiment_block,
    read_records,
    render_report,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def committed_block(experiment_id):
    with open(os.path.join(REPO_ROOT, "EXPERIMENTS.md")) as handle:
        text = handle.read()
    match = re.search(
        rf"^### {experiment_id}\n.*?(?=^### |\Z)",
        text,
        re.MULTILINE | re.DOTALL,
    )
    assert match, f"no committed block for {experiment_id}"
    return match.group(0).rstrip("\n") + "\n"


class TestTraceToReport:
    def test_trace_artifact_regenerates_committed_block(self, tmp_path):
        trace = str(tmp_path / "run.jsonl")
        runner = ExperimentRunner(trace_path=trace)
        report = runner.run_many(["table2"])
        assert report.ok
        assert runner.write_trace(report, ["table2"]) == trace

        records = read_records(trace)
        run = RunRecords(records)
        block = experiment_block(
            run.results["table2"],
            run.manifests["table2"],
            run.metrics["table2"],
        )
        assert block == committed_block("table2")
        # the full rendered report embeds the same bytes
        assert block in render_report(records)

    def test_trace_stream_shape(self, tmp_path):
        trace = str(tmp_path / "run.jsonl")
        runner = ExperimentRunner(trace_path=trace)
        report = runner.run_many(["table2"])
        runner.write_trace(report, ["table2"])
        records = read_records(trace)
        assert records[0]["type"] == "run"
        assert records[0]["experiment_ids"] == ["table2"]
        kinds = {record["type"] for record in records}
        assert {"run", "manifest", "result", "metrics"} <= kinds
        for record in records:
            if record["type"] in ("event", "span_start", "span_end"):
                assert record["experiment_id"] == "table2"

    def test_observe_without_trace_skips_artifact(self, tmp_path):
        runner = ExperimentRunner(observe=True)
        report = runner.run_many(["table2"])
        assert runner.write_trace(report, ["table2"]) is None
        capture = runner.captures["table2"]
        assert capture.manifest.experiment_id == "table2"
        assert capture.metrics["counters"]


class TestCheckpointRoundTrip:
    def test_capture_survives_checkpoint_restore(self, tmp_path):
        checkpoint = str(tmp_path / "ckpt.json")
        first = ExperimentRunner(observe=True, checkpoint_path=checkpoint)
        assert first.run_many(["table2"]).ok
        with open(checkpoint) as handle:
            data = json.load(handle)["data"]
        assert "table2" in data["obs"]

        second = ExperimentRunner(observe=True, checkpoint_path=checkpoint)
        report = second.run_many(["table2"])
        assert report.ok
        restored = second.captures["table2"]
        assert restored.manifest.to_dict() == first.captures[
            "table2"
        ].manifest.to_dict()
        assert restored.metrics == first.captures["table2"].metrics
