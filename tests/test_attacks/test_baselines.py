"""Tests for Flush+Reload, Prime+Probe, and Evict+Time baselines."""

import pytest

from repro.attacks.evict_time import EvictTimeAttack
from repro.attacks.flush_reload import FlushReloadChannel
from repro.attacks.prime_probe import PrimeProbeChannel
from repro.cache.config import HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ProtocolError


@pytest.fixture
def hierarchy():
    return CacheHierarchy(HierarchyConfig(), rng=2)


SHARED = 3 * 64


class TestFlushReloadMem:
    def test_transfers_bits(self, hierarchy):
        channel = FlushReloadChannel(hierarchy, SHARED, variant="mem")
        message = [1, 0, 1, 1, 0, 0, 1]
        assert [channel.transfer_bit(b) for b in message] == [
            bool(b) for b in message
        ]

    def test_sender_encode_is_memory_miss(self, hierarchy):
        """The paper's contrast: F+R(mem) sender must miss to memory."""
        channel = FlushReloadChannel(hierarchy, SHARED, variant="mem")
        channel.receiver_flush()
        cost = channel.sender_encode(1)
        assert cost.deeper_misses == 1
        assert cost.cycles >= hierarchy.config.memory_latency

    def test_bit_zero_costs_almost_nothing(self, hierarchy):
        channel = FlushReloadChannel(hierarchy, SHARED, variant="mem")
        assert channel.sender_encode(0).cycles < 10

    def test_flush_cost_is_flush_latency(self, hierarchy):
        channel = FlushReloadChannel(hierarchy, SHARED, variant="mem")
        assert channel.receiver_flush().cycles == hierarchy.config.flush_latency

    def test_invalid_bit(self, hierarchy):
        channel = FlushReloadChannel(hierarchy, SHARED)
        with pytest.raises(ProtocolError):
            channel.sender_encode(2)

    def test_invalid_variant(self, hierarchy):
        with pytest.raises(ProtocolError):
            FlushReloadChannel(hierarchy, SHARED, variant="l3")


class TestFlushReloadL1:
    def test_transfers_bits(self, hierarchy):
        channel = FlushReloadChannel(hierarchy, SHARED, variant="l1")
        hierarchy.load(SHARED, count=False)  # line starts cached
        message = [1, 0, 1, 0, 1]
        assert [channel.transfer_bit(b) for b in message] == [
            bool(b) for b in message
        ]

    def test_sender_encode_is_l2_hit_not_memory(self, hierarchy):
        """F+R(L1) evicts only from L1: the encode is an L1 miss served
        by L2 — cheaper than F+R(mem), dearer than the LRU channel."""
        channel = FlushReloadChannel(hierarchy, SHARED, variant="l1")
        hierarchy.load(SHARED, count=False)
        channel.receiver_flush()
        cost = channel.sender_encode(1)
        assert cost.l1_misses == 1
        assert cost.deeper_misses == 0
        assert cost.cycles == hierarchy.config.l2.hit_latency


class TestPrimeProbe:
    def test_transfers_bits(self, hierarchy):
        channel = PrimeProbeChannel(hierarchy, target_set=5)
        message = [1, 0, 0, 1, 1, 0]
        assert [channel.transfer_bit(b) for b in message] == [
            bool(b) for b in message
        ]

    def test_no_shared_memory(self, hierarchy):
        channel = PrimeProbeChannel(hierarchy, target_set=5)
        assert channel.sender_line not in channel.prime_lines

    def test_sender_encode_is_miss(self, hierarchy):
        channel = PrimeProbeChannel(hierarchy, target_set=5)
        channel.prime()
        assert channel.sender_encode(1) > hierarchy.config.l1.hit_latency

    def test_prime_fills_whole_set(self, hierarchy):
        channel = PrimeProbeChannel(hierarchy, target_set=5)
        channel.prime()
        resident = hierarchy.l1.set_for(5 * 64).resident_addresses()
        assert set(channel.prime_lines) <= set(resident)

    def test_invalid_bit(self, hierarchy):
        with pytest.raises(ProtocolError):
            PrimeProbeChannel(hierarchy, 5).sender_encode(7)


class TestEvictTime:
    def _victim(self, used_set):
        def victim(hierarchy):
            total = 0.0
            for tag in range(4):
                address = used_set * 64 + tag * 64 * 64
                total += hierarchy.load(address, thread_id=9).latency
            return total

        return victim

    def test_detects_used_set(self, hierarchy):
        attack = EvictTimeAttack(hierarchy)
        victim = self._victim(used_set=7)
        victim(hierarchy)  # warm
        slowdowns = attack.scan_sets(victim, sets=[6, 7, 8], trials=2)
        assert slowdowns[7] > slowdowns[6]
        assert slowdowns[7] > slowdowns[8]

    def test_eviction_removes_victim_lines(self, hierarchy):
        attack = EvictTimeAttack(hierarchy)
        hierarchy.load(7 * 64, count=False)
        attack.evict_set(7)
        assert not hierarchy.l1.probe(7 * 64)
