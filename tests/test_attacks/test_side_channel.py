"""Tests for the LRU side-channel key-recovery attack."""

import pytest

from repro.attacks.side_channel import (
    TABLE_ENTRIES,
    LRUSideChannelAttack,
    SideChannelResult,
    TableLookupVictim,
)
from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ProtocolError
from repro.sim.specs import INTEL_E5_2690


def fresh_hierarchy(rng=4):
    return CacheHierarchy(INTEL_E5_2690.hierarchy, rng=rng)


class TestVictim:
    def test_key_validated(self):
        with pytest.raises(ProtocolError):
            TableLookupVictim(fresh_hierarchy(), key=64)

    def test_lookup_touches_key_dependent_set(self):
        hierarchy = fresh_hierarchy()
        victim = TableLookupVictim(hierarchy, key=13)
        victim.encrypt(plaintext=5)
        touched_entry = (5 ^ 13) % TABLE_ENTRIES
        assert hierarchy.l1.probe(victim.table_base + touched_entry * 64)

    def test_warm_table_makes_lookups_hits(self):
        hierarchy = fresh_hierarchy()
        victim = TableLookupVictim(hierarchy, key=13)
        victim.warm_table()
        hierarchy.reset_counters()
        for p in range(16):
            victim.encrypt(p)
        # All lookups hit L1 (no attacker pressure yet).
        assert hierarchy.l1.counters.miss_rate(1) == 0.0


class TestAttack:
    @pytest.mark.parametrize("key", [0, 7, 33, 63])
    def test_recovers_key(self, key):
        hierarchy = fresh_hierarchy()
        victim = TableLookupVictim(hierarchy, key=key)
        attack = LRUSideChannelAttack(hierarchy, target_set=5, rng=11)
        result = attack.recover_key(victim, encryptions=256)
        assert result.recovered_key == key

    def test_votes_unanimous_in_clean_conditions(self):
        hierarchy = fresh_hierarchy()
        victim = TableLookupVictim(hierarchy, key=42)
        attack = LRUSideChannelAttack(hierarchy, target_set=5, rng=11)
        result = attack.recover_key(victim, encryptions=256)
        assert result.confidence() == 1.0

    def test_different_target_sets_work(self):
        for target_set in (1, 20, 63):
            hierarchy = fresh_hierarchy()
            victim = TableLookupVictim(hierarchy, key=9)
            attack = LRUSideChannelAttack(
                hierarchy, target_set=target_set, rng=11
            )
            assert attack.recover_key(victim, encryptions=256).recovered_key == 9

    def test_no_observations_no_key(self):
        hierarchy = fresh_hierarchy()
        victim = TableLookupVictim(hierarchy, key=9)
        attack = LRUSideChannelAttack(hierarchy, target_set=5, rng=11)
        result = attack.recover_key(victim, encryptions=0)
        assert result.recovered_key is None
        assert result.confidence() == 0.0

    def test_needs_enough_sets(self):
        small = HierarchyConfig(
            l1=CacheConfig(size=8 * 1024, ways=8, line_size=64),  # 16 sets
            l2=CacheConfig(name="L2", size=256 * 1024, hit_latency=12.0),
        )
        hierarchy = CacheHierarchy(small, rng=1)
        with pytest.raises(ProtocolError):
            LRUSideChannelAttack(hierarchy, target_set=5)

    def test_result_confidence_math(self):
        result = SideChannelResult(recovered_key=3)
        result.votes[3] = 8
        result.votes[4] = 2
        assert result.confidence() == pytest.approx(0.8)
