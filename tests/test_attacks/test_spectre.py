"""Tests for the Spectre v1 model and its disclosure channels."""

import pytest

from repro.attacks.branch_predictor import TwoBitPredictor
from repro.attacks.spectre import (
    CHAIN_SET,
    TRAINING_VALUE,
    SpectreConfig,
    SpectreV1,
)
from repro.cache.prefetcher import StridePrefetcher
from repro.common.errors import ProtocolError
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E5_2690

SECRET = [7, 42, 13]


def make_attack(disclosure="lru_alg1", rng=9, machine=None, **config_kw):
    machine = machine or Machine(INTEL_E5_2690, rng=5)
    config = SpectreConfig(rounds=3, **config_kw)
    return machine, SpectreV1(
        machine, SECRET, disclosure=disclosure, config=config, rng=rng
    )


class TestBranchPredictor:
    def test_initial_weakly_not_taken(self):
        assert not TwoBitPredictor(initial=1).predict(1)

    def test_training_to_taken(self):
        predictor = TwoBitPredictor()
        for _ in range(2):
            predictor.update(1, taken=True)
        assert predictor.predict(1)

    def test_single_mispredict_does_not_flip_strong(self):
        predictor = TwoBitPredictor()
        for _ in range(4):
            predictor.update(1, taken=True)
        predictor.update(1, taken=False)
        assert predictor.predict(1)

    def test_per_branch_state(self):
        predictor = TwoBitPredictor()
        predictor.update(1, True)
        predictor.update(1, True)
        assert predictor.predict(1)
        assert not predictor.predict(2)

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(initial=4)

    def test_reset(self):
        predictor = TwoBitPredictor()
        predictor.update(1, True)
        predictor.update(1, True)
        predictor.reset()
        assert not predictor.predict(1)


class TestSpectreValidation:
    def test_secret_range_checked(self):
        machine = Machine(INTEL_E5_2690, rng=1)
        with pytest.raises(ProtocolError):
            SpectreV1(machine, [64], rng=1)

    def test_reserved_values_rejected(self):
        machine = Machine(INTEL_E5_2690, rng=1)
        with pytest.raises(ProtocolError):
            SpectreV1(machine, [CHAIN_SET], rng=1)
        with pytest.raises(ProtocolError):
            SpectreV1(machine, [TRAINING_VALUE], rng=1)

    def test_unknown_disclosure(self):
        machine = Machine(INTEL_E5_2690, rng=1)
        with pytest.raises(ProtocolError):
            SpectreV1(machine, SECRET, disclosure="evict_time", rng=1)


@pytest.mark.parametrize(
    "disclosure", ["flush_reload", "flush_reload_l1", "lru_alg1", "lru_alg2"]
)
class TestSpectreRecovery:
    def test_recovers_secret(self, disclosure):
        _, attack = make_attack(disclosure)
        result = attack.recover()
        assert result.recovered == SECRET

    def test_scores_favor_secret(self, disclosure):
        _, attack = make_attack(disclosure)
        result = attack.recover()
        for index, scores in enumerate(result.scores):
            best = max(scores.items(), key=lambda kv: kv[1])
            assert best[0] == SECRET[index]


class TestSpeculationWindow:
    def test_lru_survives_tiny_window(self):
        _, attack = make_attack("lru_alg1", speculation_window=30)
        assert attack.recover().accuracy(SECRET) == 1.0

    def test_flush_reload_needs_wide_window(self):
        """Table V's consequence: the miss-based disclosure needs the
        full memory round-trip inside the window."""
        _, attack = make_attack("flush_reload", speculation_window=100)
        assert attack.recover().accuracy(SECRET) < 1.0

    def test_flush_reload_works_with_wide_window(self):
        _, attack = make_attack("flush_reload", speculation_window=450)
        assert attack.recover().accuracy(SECRET) == 1.0

    def test_no_transient_execution_without_training(self):
        machine = Machine(INTEL_E5_2690, rng=5)
        attack = SpectreV1(
            machine, SECRET, disclosure="lru_alg1",
            config=SpectreConfig(rounds=3, train_calls=0), rng=9,
        )
        # Predictor never trained: the malicious call is predicted
        # not-taken and nothing leaks.
        result = attack.recover()
        assert result.recovered != SECRET


class TestVictimModel:
    def test_in_bounds_call_touches_training_line(self):
        machine, attack = make_attack()
        attack.victim_call(0)
        assert machine.hierarchy.l1.probe(
            attack._probe_address(TRAINING_VALUE)
        )

    def test_out_of_bounds_untrained_no_access(self):
        machine, attack = make_attack()
        attack.victim_call(attack.array1_size + 0)  # predictor cold
        assert not machine.hierarchy.l1.probe(attack._probe_address(SECRET[0]))

    def test_out_of_bounds_trained_touches_secret_line(self):
        machine, attack = make_attack()
        for i in range(4):
            attack.victim_call(i % attack.array1_size)
        # Warm the secret so it resolves within the window.
        attack.victim_call(attack.array1_size + 0)
        attack.victim_call(attack.array1_size + 0)
        assert machine.hierarchy.l1.probe(attack._probe_address(SECRET[0]))


class TestPrefetcherNoise:
    def test_recovery_despite_prefetcher(self):
        """Appendix C: random per-round orders average the prefetcher
        pollution away."""
        machine = Machine(
            INTEL_E5_2690, rng=5, prefetcher=StridePrefetcher(degree=2)
        )
        attack = SpectreV1(
            machine, SECRET, disclosure="lru_alg1",
            config=SpectreConfig(rounds=5), rng=9,
        )
        assert attack.recover().accuracy(SECRET) >= 2 / 3
