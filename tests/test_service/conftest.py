"""Shared harness: run an ExperimentService on a background thread.

The service is pure asyncio; the tests (and the real CLI clients) are
blocking code.  The harness owns a thread running ``asyncio.run`` and
exposes the blocking :class:`~repro.service.client.ServiceClient` plus a
graceful ``stop()`` that exercises the same drain path as SIGINT.
"""

import asyncio
import threading

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ExperimentService, ServiceConfig


class ServiceHarness:
    def __init__(self, config, registry=None):
        self.config = config
        self.registry = registry
        self.service = None
        self.port = None
        self._loop = None
        self._stop = None
        self._thread = None
        self._ready = threading.Event()
        self._error = None

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(30.0), "service failed to start in time"
        if self._error is not None:
            raise self._error
        return self

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        try:
            self.service = ExperimentService(
                self.config, registry=self.registry
            )
            await self.service.start()
            self.port = self.service.port
        except BaseException as error:  # noqa: BLE001 - surfaced in start()
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        await self.service.serve_until(self._stop)

    def stop(self, timeout=30.0):
        """Graceful drain — the same path a SIGINT takes."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "service failed to drain"

    def client(self, timeout=15.0):
        return ServiceClient("127.0.0.1", self.port, timeout=timeout)


@pytest.fixture
def harness_factory(tmp_path):
    """Build-and-start harnesses; every one is drained at teardown."""
    started = []
    counter = [0]

    def factory(registry=None, **overrides):
        counter[0] += 1
        overrides.setdefault(
            "cache_dir", str(tmp_path / f"cache-{counter[0]}")
        )
        overrides.setdefault("drain_timeout", 5.0)
        harness = ServiceHarness(
            ServiceConfig(**overrides), registry=registry
        )
        started.append(harness)
        return harness.start()

    yield factory
    for harness in started:
        harness.stop()
