"""The service's ``analyze`` op: static leakage answers over the wire.

Contract: every well-formed analyze request gets a deterministic,
cacheable answer computed from the policy tables with zero simulation —
including under chaos (corrupted cache entries, clients vanishing
mid-request) and across server restarts.  Refusals (state space beyond
the eager budget) are structured ``ok`` payloads, never errors.
"""

import json
import threading

from repro.analysis.leakage import analyze_policy
from repro.experiments.chaos import ServiceChaosConfig
from tests.test_service import fakes


def _analyze(client, policy, ways=4, **kwargs):
    response = client.analyze(policy, ways, **kwargs)
    assert response["status"] == "ok", response
    return response


class TestAnalyzeOp:
    def test_exact_analysis_over_the_wire(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = _analyze(client, "lru")
        result = response["result"]
        assert response["source"] == "analysis"
        assert not response["degraded"]
        assert result["mode"] == "exact"
        # Bit-identical to calling the analyzer in-process.
        assert result == analyze_policy("lru", 4).to_dict()

    def test_second_request_is_served_from_cache(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            first = _analyze(client, "tree-plru")
            second = _analyze(client, "tree-plru")
            stats = client.stats()
        assert first["source"] == "analysis"
        assert second["source"] == "cache"
        assert second["result"] == first["result"]
        counters = stats["metrics"]["counters"]
        assert counters["analysis.leakage.computed"] == {"tree-plru": 1}
        assert counters["analysis.leakage.requests"] == 2

    def test_defense_and_ways_are_distinct_cache_keys(
        self, harness_factory
    ):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            plain = _analyze(client, "lru", 4)
            defended = _analyze(client, "lru", 4, defense="no-hit-update")
            wider = _analyze(client, "tree-plru", 8)
        keys = {
            plain["cache_key"],
            defended["cache_key"],
            wider["cache_key"],
        }
        assert len(keys) == 3
        assert plain["result"]["capacity_bits"]["hit-miss-limit"] > 0.0
        assert (
            defended["result"]["capacity_bits"]["hit-miss-limit"] == 0.0
        )

    def test_refusal_is_a_structured_ok_payload(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = _analyze(client, "lru", 16)
            stats = client.stats()
        result = response["result"]
        assert result["mode"] == "refused"
        assert "eager budget" in result["refusal"]
        counters = stats["metrics"]["counters"]
        assert counters["analysis.leakage.refused"] == 1

    def test_analytic_policy_answers_without_tables(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = _analyze(client, "random")
        assert response["result"]["mode"] == "analytic"
        assert (
            response["result"]["capacity_bits"]["hit-miss-limit"] == 0.0
        )

    def test_unknown_policy_is_a_protocol_error(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = client.analyze("clairvoyant", 4)
            assert response["status"] == "error"
            assert "clairvoyant" in response["error"]["message"]
            # The engine alias is rejected too, with the same shape.
            assert client.analyze("tabled", 4)["status"] == "error"
            # The connection survives the error.
            assert client.ping()["status"] == "pong"

    def test_malformed_analyze_requests_are_rejected(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            for payload in (
                {"op": "analyze"},  # no policy
                {"op": "analyze", "policy": "lru", "ways": 0},
                {"op": "analyze", "policy": "lru", "ways": True},
                {"op": "analyze", "policy": "lru", "ways": 4,
                 "defense": "prayer"},
            ):
                response = client.roundtrip(payload)
                assert response["status"] == "error", payload

    def test_admission_control_applies_to_analyze(self, harness_factory):
        harness = harness_factory(
            registry=dict(fakes.FAST_REGISTRY), rate=0.001, burst=1
        )
        with harness.client() as client:
            assert client.analyze("lru", 4)["status"] == "ok"
            rejected = client.analyze("lru", 4)
        assert rejected["status"] == "rejected"
        assert rejected["retry_after_ms"] > 0

    def test_expired_deadline_degrades_instead_of_running(
        self, harness_factory
    ):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = client.analyze("bit-plru", 4, deadline_ms=0)
        # Nothing cached yet and no time to compute: a degraded stub.
        assert response["status"] == "ok"
        assert response["degraded"]
        assert response["error"]["type"] == "ExperimentTimeout"

    def test_refresh_bypasses_the_cache_read(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            first = _analyze(client, "fifo")
            again = _analyze(client, "fifo", refresh=True)
        assert first["source"] == "analysis"
        assert again["source"] == "analysis"
        assert again["result"] == first["result"]


class TestAnalyzeUnderChaos:
    def test_corrupted_cache_entries_are_quarantined_and_recomputed(
        self, harness_factory
    ):
        # Every write is corrupted on disk: each read must detect the
        # bad checksum, quarantine the file, and recompute — the client
        # never sees an error or a wrong answer.
        harness = harness_factory(
            registry=dict(fakes.FAST_REGISTRY),
            chaos=ServiceChaosConfig(seed=5, corrupt_cache=1.0),
        )
        with harness.client() as client:
            first = _analyze(client, "lru")
            second = _analyze(client, "lru")
            stats = client.stats()
        assert first["source"] == "analysis"
        assert second["source"] == "analysis"  # cache entry was corrupt
        assert second["result"] == first["result"]
        counters = stats["metrics"]["counters"]
        assert counters["service.cache.corrupt"] >= 1

    def test_client_disconnect_mid_analyze_leaves_server_healthy(
        self, harness_factory
    ):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        client = harness.client()
        client.send_only(
            {"op": "analyze", "policy": "srrip", "ways": 4,
             "defense": "none"}
        )
        client.close()  # vanish without reading the response
        with harness.client() as fresh:
            response = _analyze(fresh, "srrip")
            assert fresh.ping()["status"] == "pong"
        assert response["result"]["mode"] == "exact"

    def test_concurrent_analyze_burst_has_zero_client_errors(
        self, harness_factory
    ):
        harness = harness_factory(
            registry=dict(fakes.FAST_REGISTRY), rate=500.0, burst=200
        )
        policies = ["lru", "tree-plru", "bit-plru", "fifo", "random"]
        responses = []
        errors = []
        lock = threading.Lock()

        def worker(policy):
            try:
                with harness.client() as client:
                    for _ in range(4):
                        response = client.analyze(policy, 4)
                        with lock:
                            responses.append((policy, response))
            except Exception as error:  # noqa: BLE001 - the assertion
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(p,)) for p in policies
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not errors
        assert len(responses) == len(policies) * 4
        expected = {
            p: analyze_policy(p, 4).to_dict() for p in policies
        }
        for policy, response in responses:
            assert response["status"] == "ok", response
            assert response["result"] == expected[policy]


class TestAnalyzeDurability:
    def test_restart_serves_identical_results_from_disk(
        self, harness_factory, tmp_path
    ):
        cache_dir = str(tmp_path / "analyze-durable")
        first_harness = harness_factory(
            registry=dict(fakes.FAST_REGISTRY), cache_dir=cache_dir
        )
        with first_harness.client() as client:
            original = _analyze(client, "lru")
        first_harness.stop()

        second_harness = harness_factory(
            registry=dict(fakes.FAST_REGISTRY), cache_dir=cache_dir
        )
        with second_harness.client() as client:
            revived = _analyze(client, "lru")
        assert revived["source"] == "cache"
        assert revived["result"] == original["result"]

    def test_draining_server_tells_analyze_clients_to_retry(
        self, harness_factory
    ):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        harness.service.draining = True
        try:
            with harness.client() as client:
                response = client.analyze("lru", 4)
            assert response["status"] == "draining"
        finally:
            harness.service.draining = False

    def test_wire_result_is_canonical_json_safe(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = _analyze(client, "srrip", 4)
        # The payload survives a JSON round-trip bit-identically (no
        # floats that lose precision, no non-JSON types).
        result = response["result"]
        assert json.loads(json.dumps(result)) == result
