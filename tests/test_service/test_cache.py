"""Result cache: keying, durability, checksums, quarantine."""

import json
import os

import pytest

import repro
from repro.experiments.chaos import bit_flip_file, truncate_file
from repro.obs.registry import MetricsRegistry
from repro.service.cache import (
    CACHE_VERSION,
    ResultCache,
    key_fields,
    request_key,
)


def fields(**overrides):
    base = key_fields(
        experiment_id="alpha", seed=11, engine="reference", sanitize=False
    )
    base.update(overrides)
    return base


class TestRequestKey:
    def test_deterministic(self):
        assert request_key(fields()) == request_key(fields())

    def test_every_key_field_matters(self):
        baseline = request_key(fields())
        assert request_key(fields(experiment_id="beta")) != baseline
        assert request_key(fields(seed=12)) != baseline
        assert request_key(fields(engine="fast")) != baseline
        assert request_key(fields(sanitize=True)) != baseline
        assert request_key(fields(package_version="99.0")) != baseline

    def test_version_is_baked_in(self):
        assert fields()["package_version"] == repro.__version__

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            request_key({"experiment_id": "x"})


class TestResultCache:
    def test_miss_then_put_then_memory_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.get("k" * 8) is None
        cache.put("k" * 8, {"key": "k" * 8, "result": {"rows": [[1]]}})
        assert cache.get("k" * 8) == {
            "key": "k" * 8,
            "result": {"rows": [[1]]},
        }

    def test_disk_hit_is_bit_identical_to_memory_hit(self, tmp_path):
        root = str(tmp_path / "c")
        writer = ResultCache(root)
        payload = writer.put("deadbeef", {"key": "deadbeef", "result": [1]})
        # A fresh instance (post-drain restart) reads through disk.
        reader = ResultCache(root)
        assert reader.get_payload("deadbeef") == payload

    def test_entry_envelope_is_checksummed(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put("feedface", {"key": "feedface", "result": [2]})
        raw = json.loads(open(cache.path("feedface")).read())
        assert raw["version"] == CACHE_VERSION
        assert raw["checksum"].startswith("sha256:")

    def test_bit_flip_is_detected_and_quarantined(self, tmp_path):
        root = str(tmp_path / "c")
        metrics = MetricsRegistry()
        cache = ResultCache(root, metrics=metrics)
        cache.put("cafebabe", {"key": "cafebabe", "result": [3]})
        cache.discard_memory("cafebabe")
        bit_flip_file(cache.path("cafebabe"), seed=5)
        assert cache.get("cafebabe") is None  # never served corrupt
        assert not os.path.exists(cache.path("cafebabe"))
        assert os.path.exists(cache.path("cafebabe") + ".corrupt")
        counters = metrics.snapshot()["counters"]
        assert counters["service.cache.corrupt"] == 1
        assert counters["service.cache.miss"] == 1

    def test_truncation_is_detected(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put("0badf00d", {"key": "0badf00d", "result": [4]})
        cache.discard_memory("0badf00d")
        truncate_file(cache.path("0badf00d"), keep_fraction=0.5)
        assert cache.get("0badf00d") is None

    def test_recompute_after_quarantine_overwrites(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put("abad1dea", {"key": "abad1dea", "result": [5]})
        cache.discard_memory("abad1dea")
        bit_flip_file(cache.path("abad1dea"), seed=6)
        assert cache.get("abad1dea") is None
        cache.put("abad1dea", {"key": "abad1dea", "result": [5]})
        assert cache.get("abad1dea")["result"] == [5]

    def test_hit_and_miss_counters(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ResultCache(str(tmp_path / "c"), metrics=metrics)
        cache.get("11111111")
        cache.put("11111111", {"key": "11111111", "result": []})
        cache.get("11111111")
        counters = metrics.snapshot()["counters"]
        assert counters["service.cache.miss"] == 1
        assert counters["service.cache.hit"] == 1

    def test_keys_and_len_cover_disk_and_memory(self, tmp_path):
        root = str(tmp_path / "c")
        cache = ResultCache(root)
        cache.put("aa", {"key": "aa", "result": []})
        cache.put("bb", {"key": "bb", "result": []})
        assert cache.keys() == ["aa", "bb"]
        assert len(cache) == 2
        fresh = ResultCache(root)
        assert fresh.keys() == ["aa", "bb"]
