"""Wire-format validation: every malformed line becomes a clean error."""

import json

import pytest

from repro.common.errors import ServiceError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    MAX_TRIALS,
    PROTOCOL_VERSION,
    Request,
    encode_line,
    error_response,
    parse_request,
)


def _line(payload):
    return (json.dumps(payload) + "\n").encode("utf-8")


class TestParseRequest:
    def test_minimal_run_request(self):
        request = parse_request(
            _line({"op": "run", "experiment_id": "table2"})
        )
        assert request == Request(op="run", experiment_id="table2")

    def test_all_fields(self):
        request = parse_request(
            _line(
                {
                    "op": "run",
                    "experiment_id": "fig5",
                    "deadline_ms": 250,
                    "request_id": "r-1",
                    "refresh": True,
                }
            )
        )
        assert request.deadline_ms == 250
        assert request.request_id == "r-1"
        assert request.refresh

    def test_ping_and_stats_need_no_experiment(self):
        assert parse_request(_line({"op": "ping"})).op == "ping"
        assert parse_request(_line({"op": "stats"})).op == "stats"

    @pytest.mark.parametrize(
        "raw",
        [
            b"not json\n",
            b"[1, 2, 3]\n",
            b'"just a string"\n',
            b"\xff\xfe\n",
        ],
    )
    def test_non_object_lines_rejected(self, raw):
        with pytest.raises(ServiceError):
            parse_request(raw)

    @pytest.mark.parametrize(
        "payload",
        [
            {"op": "explode"},
            {"experiment_id": "table2"},  # no op
            {"op": "run"},  # run without experiment id
            {"op": "run", "experiment_id": ""},
            {"op": "run", "experiment_id": "x", "deadline_ms": "fast"},
            {"op": "run", "experiment_id": "x", "deadline_ms": -5},
            {"op": "run", "experiment_id": "x", "deadline_ms": True},
            {"op": "run", "experiment_id": "x", "request_id": 7},
            {"op": "run", "experiment_id": "x", "refresh": "yes"},
        ],
    )
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(ServiceError):
            parse_request(_line(payload))

    def test_overlong_line_rejected(self):
        padding = "x" * MAX_LINE_BYTES
        raw = _line({"op": "run", "experiment_id": padding})
        with pytest.raises(ServiceError, match="exceeds"):
            parse_request(raw)


class TestEncodeLine:
    def test_canonical_and_newline_terminated(self):
        line = encode_line({"b": 1, "a": 2})
        assert line.endswith(b"\n")
        assert line.index(b'"a"') < line.index(b'"b"')  # sorted keys

    def test_error_response_shape(self):
        response = error_response("boom", "r-9")
        assert response["v"] == PROTOCOL_VERSION
        assert response["status"] == "error"
        assert response["request_id"] == "r-9"
        assert response["error"]["type"] == "ServiceError"
        assert response["error"]["message"] == "boom"


class TestTrialsField:
    def test_default_is_zero(self):
        request = parse_request(_line({"op": "run", "experiment_id": "x"}))
        assert request.trials == 0

    def test_batch_run_request(self):
        request = parse_request(
            _line({"op": "run", "experiment_id": "alg1", "trials": 5000})
        )
        assert request.trials == 5000

    @pytest.mark.parametrize(
        "trials",
        [-1, True, "many", 1.5, MAX_TRIALS + 1],
    )
    def test_invalid_trials_rejected(self, trials):
        payload = {"op": "run", "experiment_id": "alg1", "trials": trials}
        with pytest.raises(ServiceError):
            parse_request(_line(payload))
