"""End-to-end service behaviour over a real socket.

Admission control, backpressure, circuit breaking, degraded serving,
singleflight, deadlines, and graceful drain — all through the blocking
client, exactly the way a real caller sees them.
"""

import json
import threading
import time

import pytest

from repro.common.errors import ServiceError
from tests.test_service import fakes


def canonical(result):
    return json.dumps(result, sort_keys=True)


class TestBasicServing:
    def test_execute_then_cache(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            first = client.request("alpha", request_id="r1")
            second = client.request("alpha", request_id="r2")
        assert first["status"] == "ok"
        assert first["source"] == "pool"
        assert not first["degraded"]
        assert second["source"] == "cache"
        # Bit-identity: the cached payload is the stored canonical form.
        assert canonical(first["result"]) == canonical(second["result"])
        assert first["cache_key"] == second["cache_key"]

    def test_result_matches_direct_execution(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = client.request("beta")
        direct = fakes.run_beta().to_dict()
        assert canonical(response["result"]) == canonical(direct)

    def test_refresh_bypasses_the_cache_read(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            client.request("gamma")
            refreshed = client.request("gamma", refresh=True)
        assert refreshed["source"] == "pool"

    def test_ping_and_stats(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            assert client.ping()["status"] == "pong"
            stats = client.stats()
        assert stats["status"] == "stats"
        assert not stats["draining"]
        assert len(stats["pools"]) == 2
        for pool in stats["pools"].values():
            assert pool["breaker"] == "closed"

    def test_unknown_experiment_is_an_error(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = client.request("nope")
        assert response["status"] == "error"
        assert "unknown experiment" in response["error"]["message"]

    def test_malformed_line_gets_error_and_connection_survives(
        self, harness_factory
    ):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            client.connect()
            client._sock.sendall(b"this is not json\n")
            line = client._file.readline()
            response = json.loads(line)
            assert response["status"] == "error"
            # Same connection still works.
            assert client.ping()["status"] == "pong"


class TestAdmissionControl:
    def test_burst_exhaustion_rejects_with_retry_hint(
        self, harness_factory
    ):
        harness = harness_factory(
            registry=dict(fakes.FAST_REGISTRY), rate=0.001, burst=2
        )
        with harness.client() as client:
            assert client.request("alpha")["status"] == "ok"
            assert client.request("alpha")["status"] == "ok"
            third = client.request("alpha")
        assert third["status"] == "rejected"
        assert third["retry_after_ms"] > 0
        with harness.client() as client:
            stats = client.stats()  # ping/stats are never admission-gated
        counters = stats["metrics"]["counters"]
        assert counters["service.requests.rejected"] == 1
        assert counters["service.requests.admitted"] == 2

    def test_bucket_refills_over_time(self, harness_factory):
        harness = harness_factory(
            registry=dict(fakes.FAST_REGISTRY), rate=50.0, burst=1
        )
        with harness.client() as client:
            assert client.request("alpha")["status"] == "ok"
            rejected = client.request("alpha")
            assert rejected["status"] == "rejected"
            time.sleep(0.1)  # > 1/50 s: one token back
            assert client.request("alpha")["status"] == "ok"


class TestBackpressure:
    def test_full_queue_sheds(self, harness_factory):
        registry = dict(fakes.FAST_REGISTRY)
        registry["slow"] = fakes.run_slow
        harness = harness_factory(
            registry=registry, pools=1, queue_depth=1, burst=50
        )

        def occupy():
            with harness.client(timeout=30.0) as client:
                client.request("slow")

        def queue_one():
            with harness.client(timeout=30.0) as client:
                client.request("sleepy" if False else "alpha")

        occupier = threading.Thread(target=occupy)
        occupier.start()
        time.sleep(0.5)  # slow is executing now, queue is empty
        filler = threading.Thread(target=queue_one)
        filler.start()
        time.sleep(0.5)  # alpha occupies the single queue slot
        with harness.client() as client:
            shed = client.request("beta")
        assert shed["status"] == "shed"
        assert shed["retry_after_ms"] >= 0
        occupier.join(30.0)
        filler.join(30.0)
        with harness.client() as client:
            counters = client.stats()["metrics"]["counters"]
        assert counters["service.requests.shed"] == 1


class TestDegradedServing:
    def test_failures_trip_breaker_and_serve_stub(self, harness_factory):
        registry = {"boom": fakes.run_boom, "alpha": fakes.run_alpha}
        harness = harness_factory(
            registry=registry,
            pools=1,
            breaker_failures=2,
            breaker_reset=60.0,
        )
        with harness.client() as client:
            first = client.request("boom", refresh=True)
            second = client.request("boom", refresh=True)
            third = client.request("boom", refresh=True)
            stats = client.stats()
        # Every failure is served degraded, not errored.
        for response in (first, second, third):
            assert response["status"] == "ok"
            assert response["degraded"]
            assert response["source"] == "stub"
            assert response["result"]["experiment_id"] == "boom"
        # The first two executed (and failed); the third hit the open
        # breaker without executing.
        assert first["error"]["type"] == "RuntimeError"
        assert second["error"]["type"] == "RuntimeError"
        assert third["error"]["type"] == "CircuitOpen"
        assert stats["pools"]["pool-0"]["breaker"] == "open"
        counters = stats["metrics"]["counters"]
        assert counters["service.requests.degraded"] == 3
        gauges = stats["metrics"]["gauges"]
        assert gauges["service.breaker.state"]["pool-0"] == 2  # open

    def test_open_breaker_serves_cached_result_for_healthy_key(
        self, harness_factory
    ):
        # alpha succeeds and is cached; boom then trips the shared
        # pool's breaker; a *refresh* request for alpha now cannot
        # execute, but the cached result keeps serving, tagged degraded.
        registry = {"boom": fakes.run_boom, "alpha": fakes.run_alpha}
        harness = harness_factory(
            registry=registry,
            pools=1,
            breaker_failures=1,
            breaker_reset=60.0,
        )
        with harness.client() as client:
            exact = client.request("alpha")
            client.request("boom")  # trips the breaker
            degraded = client.request("alpha", refresh=True)
        assert exact["status"] == "ok" and not exact["degraded"]
        assert degraded["degraded"]
        assert degraded["source"] == "cache"
        assert canonical(degraded["result"]) == canonical(exact["result"])

    def test_breaker_recovers_through_half_open_probe(
        self, harness_factory
    ):
        flip = {"broken": True}

        def flaky():
            if flip["broken"]:
                raise RuntimeError("still broken")
            return fakes.run_gamma()

        harness = harness_factory(
            registry={"flaky": flaky},
            pools=1,
            breaker_failures=1,
            breaker_reset=0.2,
        )
        with harness.client() as client:
            assert client.request("flaky", refresh=True)["degraded"]
            flip["broken"] = False
            time.sleep(0.5)  # past reset_timeout * (1 + jitter)
            recovered = client.request("flaky", refresh=True)
            stats = client.stats()
        assert not recovered["degraded"]
        assert recovered["source"] == "pool"
        assert stats["pools"]["pool-0"]["breaker"] == "closed"


class TestDeadlines:
    def test_blown_deadline_degrades_with_timeout_error(
        self, harness_factory
    ):
        registry = {"sleepy": fakes.run_sleepy}
        harness = harness_factory(registry=registry, pools=1)
        with harness.client() as client:
            response = client.request("sleepy", deadline_ms=100)
        assert response["status"] == "ok"
        assert response["degraded"]
        assert response["error"]["type"] == "ExperimentTimeout"

    def test_generous_deadline_is_exact(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = client.request("delta", deadline_ms=30000)
        assert not response["degraded"]
        assert response["source"] == "pool"


class TestSingleflight:
    def test_concurrent_identical_requests_execute_once(
        self, harness_factory
    ):
        calls = []
        lock = threading.Lock()

        def counted():
            with lock:
                calls.append(True)
            time.sleep(0.5)
            return fakes.run_gamma()

        harness = harness_factory(registry={"counted": counted}, pools=1)
        responses = []

        def fire():
            with harness.client(timeout=30.0) as client:
                responses.append(client.request("counted"))

        threads = [threading.Thread(target=fire) for _ in range(4)]
        for thread in threads:
            thread.start()
            time.sleep(0.05)  # all land while the first executes
        for thread in threads:
            thread.join(30.0)
        assert len(calls) == 1  # one execution, four answers
        assert len(responses) == 4
        payloads = {canonical(r["result"]) for r in responses}
        assert len(payloads) == 1
        assert all(r["status"] == "ok" for r in responses)


class TestDrain:
    def test_drain_then_reconnect_served_bit_identically_from_cache(
        self, harness_factory, tmp_path
    ):
        cache_dir = str(tmp_path / "shared-cache")
        first = harness_factory(
            registry=dict(fakes.FAST_REGISTRY), cache_dir=cache_dir
        )
        with first.client() as client:
            original = client.request("alpha")
        first.stop()
        # The socket is gone after the drain.
        with pytest.raises((OSError, ServiceError)):
            with first.client(timeout=2.0) as client:
                client.ping()
        # A restarted service over the same cache dir serves the result
        # without re-executing, bit-identically.
        second = harness_factory(
            registry=dict(fakes.FAST_REGISTRY), cache_dir=cache_dir
        )
        with second.client() as client:
            replay = client.request("alpha")
        assert replay["source"] == "cache"
        assert canonical(replay["result"]) == canonical(original["result"])

    def test_drain_waits_for_inflight_request(self, harness_factory):
        registry = {"sleepy": fakes.run_sleepy}
        harness = harness_factory(registry=registry, pools=1)
        responses = []

        def fire():
            with harness.client(timeout=30.0) as client:
                responses.append(client.request("sleepy"))

        thread = threading.Thread(target=fire)
        thread.start()
        time.sleep(0.15)  # request is executing now
        harness.stop()  # graceful drain must let it finish
        thread.join(30.0)
        assert len(responses) == 1
        assert responses[0]["status"] == "ok"
        assert not responses[0]["degraded"]


class TestBatchTrials:
    def test_trials_request_answers_with_an_aggregate(
        self, harness_factory
    ):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = client.request("alg1", trials=50)
        assert response["status"] == "ok"
        assert response["source"] == "pool"
        result = response["result"]
        assert result["experiment_id"] == "alg1@trials50"
        assert result["columns"] == [
            "trials",
            "mean_error_rate",
            "min_error_rate",
            "max_error_rate",
        ]
        (row,) = result["rows"]
        assert row[0] == 50
        assert 0.0 <= row[1] <= 1.0

    def test_trials_result_is_cached(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            first = client.request("alg1", trials=50)
            second = client.request("alg1", trials=50)
        assert first["source"] == "pool"
        assert second["source"] == "cache"
        assert canonical(first["result"]) == canonical(second["result"])

    def test_trials_cache_key_is_distinct_per_count(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            a = client.request("alg1", trials=50)
            b = client.request("alg1", trials=60)
        assert a["cache_key"] != b["cache_key"]
        assert b["source"] == "pool"

    def test_unknown_batch_algorithm_is_an_error(self, harness_factory):
        harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
        with harness.client() as client:
            response = client.request("alpha", trials=10)
        assert response["status"] == "error"
        assert "unknown batch algorithm" in response["error"]["message"]
