"""Load generator: schedule determinism and report arithmetic."""

import pytest

from repro.service.loadgen import LoadReport, build_schedule


class TestBuildSchedule:
    def test_deterministic_in_seed(self):
        ids = ["a", "b", "c"]
        assert build_schedule(50, ids, seed=4) == build_schedule(
            50, ids, seed=4
        )
        assert build_schedule(50, ids, seed=4) != build_schedule(
            50, ids, seed=5
        )

    def test_repeat_bias_skews_popularity(self):
        # With heavy repeat bias, a few ids dominate; with none, every
        # draw is fresh-uniform.
        ids = [f"x{i}" for i in range(10)]
        skewed = build_schedule(200, ids, seed=1, repeat_bias=0.9)
        top_share = max(skewed.count(i) for i in ids) / len(skewed)
        assert top_share > 0.3
        flat = build_schedule(200, ids, seed=1, repeat_bias=0.0)
        assert set(flat) == set(ids)

    def test_only_known_ids_appear(self):
        ids = ["a", "b"]
        assert set(build_schedule(100, ids, seed=0)) <= set(ids)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0, "experiment_ids": ["a"]},
            {"n": 5, "experiment_ids": []},
            {"n": 5, "experiment_ids": ["a"], "repeat_bias": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            build_schedule(**kwargs)


class TestLoadReport:
    def _report(self, latencies):
        report = LoadReport()
        for index, latency in enumerate(latencies):
            report.record(
                {"status": "ok", "source": "cache" if index else "pool"},
                latency,
            )
        return report

    def test_percentiles_nearest_rank(self):
        report = self._report([float(i) for i in range(1, 101)])
        assert report.p50_ms == 50.0
        assert report.p99_ms == 99.0
        assert report.percentile_ms(100.0) == 100.0

    def test_empty_report_is_all_zero(self):
        report = LoadReport()
        assert report.p50_ms == 0.0
        assert report.hit_rate == 0.0

    def test_hit_rate_counts_cache_over_ok(self):
        report = self._report([1.0, 1.0, 1.0, 1.0])  # 1 pool + 3 cache
        assert report.hit_rate == 0.75

    def test_degraded_and_statuses_tallied(self):
        report = LoadReport()
        report.record({"status": "ok", "degraded": True, "source": "stub"}, 1.0)
        report.record({"status": "shed"}, 0.1)
        assert report.degraded == 1
        assert report.by_status == {"ok": 1, "shed": 1}
        summary = report.summary()
        assert summary["total"] == 2
        assert summary["degraded"] == 1

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            self._report([1.0]).percentile_ms(150.0)
