"""Chaos acceptance: the service under seeded faults.

The contract under chaos — worker kills (injected and real SIGKILL),
cache corruption, vanishing clients — is exactly this:

* zero unhandled client errors;
* every answered request is either **exact** (bit-identical to a
  sequential no-chaos run) or explicitly tagged ``degraded=true``.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.experiments.chaos import ChaosConfig, ServiceChaosConfig
from repro.service.loadgen import build_schedule, run_load
from tests.test_service import fakes


def canonical(result):
    return json.dumps(result, sort_keys=True)


def exact_baselines():
    """Sequential ground truth: experiment id -> canonical payload."""
    return {
        experiment_id: canonical(fn().to_dict())
        for experiment_id, fn in fakes.FAST_REGISTRY.items()
    }


class TestSupervisedBackend:
    def test_supervised_execution_matches_inline(self, harness_factory):
        harness = harness_factory(
            registry=dict(fakes.FAST_REGISTRY),
            backend="supervised",
            pools=1,
        )
        with harness.client(timeout=60.0) as client:
            response = client.request("alpha")
        assert response["status"] == "ok"
        assert not response["degraded"]
        assert canonical(response["result"]) == exact_baselines()["alpha"]

    def test_sigkill_worker_mid_request_is_survived(self, harness_factory):
        registry = dict(fakes.FAST_REGISTRY)
        registry["slow"] = fakes.run_slow
        harness = harness_factory(
            registry=registry,
            backend="supervised",
            pools=1,
            max_task_crashes=3,
        )
        responses = []

        def fire():
            with harness.client(timeout=120.0) as client:
                responses.append(client.request("slow"))

        thread = threading.Thread(target=fire)
        thread.start()
        # Wait for the worker process to appear, then SIGKILL it.
        killed = None
        deadline = time.monotonic() + 30.0
        while killed is None and time.monotonic() < deadline:
            for pids in harness.service.worker_pids().values():
                for pid in pids:
                    os.kill(pid, signal.SIGKILL)
                    killed = pid
                    break
                if killed:
                    break
            time.sleep(0.05)
        assert killed is not None, "no worker process ever appeared"
        thread.join(120.0)
        assert len(responses) == 1
        response = responses[0]
        # The kill was retried (exact result) — never an unhandled error.
        assert response["status"] == "ok"
        assert not response["degraded"]
        assert canonical(response["result"]) == canonical(
            fakes._result("slow", 1).to_dict()
        )

    def test_poison_task_degrades_instead_of_wedging(self, harness_factory):
        # Chaos kills the worker before it can report, every attempt:
        # the supervisor quarantines the task and the service serves a
        # degraded stub — the client never sees a transport error.
        chaos = ServiceChaosConfig(
            seed=3,
            worker=ChaosConfig(
                seed=3, kill_before_report=1.0, only_tasks=("alpha",)
            ),
        )
        harness = harness_factory(
            registry=dict(fakes.FAST_REGISTRY),
            backend="supervised",
            pools=1,
            max_task_crashes=2,
            chaos=chaos,
        )
        with harness.client(timeout=120.0) as client:
            poisoned = client.request("alpha")
            healthy = client.request("beta")
        assert poisoned["status"] == "ok"
        assert poisoned["degraded"]
        assert poisoned["source"] == "stub"
        assert healthy["status"] == "ok"
        assert not healthy["degraded"]


class TestChaosBatch:
    def test_200_request_batch_zero_errors_exact_or_degraded(
        self, harness_factory
    ):
        chaos = ServiceChaosConfig(
            seed=7,
            corrupt_cache=0.5,
            client_disconnect=0.05,
        )
        harness = harness_factory(
            registry=dict(fakes.FAST_REGISTRY),
            pools=2,
            queue_depth=8,
            rate=500.0,
            burst=100,
            chaos=chaos,
        )
        schedule = build_schedule(
            200, sorted(fakes.FAST_REGISTRY), seed=1, repeat_bias=0.7
        )
        report = run_load(
            "127.0.0.1", harness.port, schedule, chaos=chaos, timeout=60.0
        )

        # The acceptance bar, verbatim.
        assert report.client_errors == 0
        baselines = exact_baselines()
        for response in report.responses:
            assert response["status"] in ("ok", "rejected", "shed")
            if response["status"] != "ok":
                continue
            if response.get("degraded"):
                continue  # explicitly tagged substitute
            experiment_id = response["result"]["experiment_id"]
            assert canonical(response["result"]) == baselines[experiment_id]

        # The chaos actually struck: some clients vanished, and at
        # least one cache entry was bit-flipped, detected, and
        # quarantined (never served corrupt).
        assert report.disconnected > 0
        with harness.client() as client:
            counters = client.stats()["metrics"]["counters"]
        assert counters.get("service.cache.corrupt", 0) >= 1
        # Under 50% write-corruption the cache still carries real load.
        assert report.hit_rate > 0.2
        assert report.total == 200 - report.disconnected

    def test_batch_replays_identically_from_its_seed(self, harness_factory):
        chaos = ServiceChaosConfig(seed=7, client_disconnect=0.05)
        schedule = build_schedule(
            60, sorted(fakes.FAST_REGISTRY), seed=2, repeat_bias=0.7
        )

        def one_run():
            harness = harness_factory(registry=dict(fakes.FAST_REGISTRY))
            report = run_load(
                "127.0.0.1", harness.port, schedule, chaos=chaos
            )
            harness.stop()
            return (
                report.disconnected,
                report.total,
                [canonical(r["result"]) for r in report.responses],
            )

        assert one_run() == one_run()
