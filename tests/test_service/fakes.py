"""Fast, deterministic fake experiments for service tests.

Module-level functions so they are picklable: the supervised backend
ships the callable to its worker process by qualified name.
"""

import time

from repro.experiments.base import ExperimentResult


def _result(experiment_id, value):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"fake {experiment_id}",
        columns=["value"],
        rows=[[value]],
    )


def run_alpha(rng: int = 11):
    return _result("alpha", rng * 2)


def run_beta(rng: int = 22):
    return _result("beta", rng + 1)


def run_gamma():
    return _result("gamma", 333)


def run_delta(rng: int = 44):
    return _result("delta", rng * rng)


def run_slow():
    time.sleep(2.0)
    return _result("slow", 1)


def run_sleepy():
    time.sleep(0.4)
    return _result("sleepy", 2)


def run_boom():
    raise RuntimeError("deterministically broken experiment")


FAST_REGISTRY = {
    "alpha": run_alpha,
    "beta": run_beta,
    "gamma": run_gamma,
    "delta": run_delta,
}
