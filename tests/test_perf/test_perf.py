"""Tests for performance counters and the CPI model."""

import pytest

from repro.perf.counters import CounterBank, MissRateReport
from repro.perf.cpi import CPIModel, CPIModelConfig


class TestCounterBank:
    def test_record_and_rates(self):
        bank = CounterBank("L1D")
        bank.record(1, miss=True)
        bank.record(1, miss=False)
        bank.record(1, miss=False)
        assert bank.miss_rate(1) == pytest.approx(1 / 3)

    def test_per_thread_isolation(self):
        bank = CounterBank()
        bank.record(1, miss=True)
        bank.record(2, miss=False)
        assert bank.miss_rate(1) == 1.0
        assert bank.miss_rate(2) == 0.0

    def test_aggregate_rate(self):
        bank = CounterBank()
        bank.record(1, miss=True)
        bank.record(2, miss=False)
        assert bank.miss_rate(None) == 0.5

    def test_zero_references(self):
        assert CounterBank().miss_rate(9) == 0.0

    def test_totals(self):
        bank = CounterBank()
        for _ in range(5):
            bank.record(3, miss=True)
        assert bank.total_references(3) == 5
        assert bank.total_misses(3) == 5
        assert bank.total_references(None) == 5

    def test_reset(self):
        bank = CounterBank()
        bank.record(1, miss=True)
        bank.reset()
        assert bank.total_references(None) == 0


class TestMissRateReport:
    def test_render_contains_rows(self):
        report = MissRateReport("Table VI")
        report.add("F+R (mem)", 0.0007, 0.62, 0.88)
        text = report.render()
        assert "Table VI" in text
        assert "F+R (mem)" in text
        assert "62.00%" in text

    def test_add_from_banks(self):
        l1 = CounterBank("L1D")
        l2 = CounterBank("L2")
        l1.record(1, miss=True)
        l2.record(1, miss=False)
        report = MissRateReport()
        report.add_from_banks("sender", [l1, l2], thread_id=1)
        assert report.rows[0].l1d == 1.0
        assert report.rows[0].l2 == 0.0


class TestCPIModel:
    def test_zero_misses_gives_base(self):
        model = CPIModel(CPIModelConfig(base_cpi=0.6))
        assert model.cpi(0.0, 0.0) == pytest.approx(0.6)

    def test_monotone_in_l1_misses(self):
        model = CPIModel()
        assert model.cpi(0.2, 0.3) > model.cpi(0.1, 0.3) > model.cpi(0.0, 0.3)

    def test_monotone_in_l2_misses(self):
        model = CPIModel()
        assert model.cpi(0.1, 0.5) > model.cpi(0.1, 0.1)

    def test_memory_dominates(self):
        model = CPIModel()
        # All-miss workload should be memory-latency bound.
        assert model.cpi(1.0, 1.0) > 20

    def test_rate_validation(self):
        model = CPIModel()
        with pytest.raises(ValueError):
            model.cpi(-0.1, 0.0)
        with pytest.raises(ValueError):
            model.cpi(0.0, 1.5)

    def test_normalized_cpi(self):
        model = CPIModel()
        norm = model.normalized_cpi(0.05, 0.3, 0.05, 0.3)
        assert norm == pytest.approx(1.0)

    def test_normalized_direction(self):
        model = CPIModel()
        assert model.normalized_cpi(0.06, 0.3, 0.05, 0.3) > 1.0

    def test_mlp_reduces_stalls(self):
        fast = CPIModel(CPIModelConfig(mlp=4.0))
        slow = CPIModel(CPIModelConfig(mlp=1.0))
        assert fast.cpi(0.1, 0.3) < slow.cpi(0.1, 0.3)
