"""Differential tests: the fast engine against the reference oracle.

The fast engine (``repro.sim.fastpath`` + ``repro.replacement.tables``)
claims bit-identical behaviour to the reference engine.  These tests
hold it to that claim at three levels:

* policy level — a :class:`TabledPolicy` driven by a random operation
  stream must track the reference policy snapshot-for-snapshot;
* cache level — reference and fast caches fed identical access traces
  must agree on every hit/miss, every evicted address, every counter,
  and every final set snapshot;
* machine level — a full covert-channel protocol run must decode the
  same bits with the same latencies under both engines, including with
  the PR 2 runtime sanitizer armed on the fast engine.
"""

import random

import pytest

from repro.analysis.proxies import sanitize_cache
from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.common.types import AccessType, MemoryAccess
from repro.replacement.tables import (
    TABLEABLE_POLICIES,
    PolicyTables,
    TabledPolicy,
    clear_table_cache,
    compile_tables,
    estimated_state_count,
)
from repro.sim.fastpath import (
    ENGINE_ENV,
    FastSetAssociativeCache,
    default_engine,
    resolve_engine,
    set_default_engine,
)

POLICIES = sorted(TABLEABLE_POLICIES)
WAYS = [4, 8, 16]


def reference_policy(name, ways):
    return TABLEABLE_POLICIES[name](ways)


@pytest.mark.parametrize("ways", WAYS)
@pytest.mark.parametrize("name", POLICIES)
class TestPolicyEquivalence:
    """TabledPolicy vs reference policy on identical operation streams."""

    def test_random_op_stream_matches_reference(self, name, ways):
        ref = reference_policy(name, ways)
        fast = TabledPolicy(ways, base=name)
        rng = random.Random(0xC0FFEE + ways)
        for step in range(600):
            op = rng.randrange(4)
            if op == 0:
                way = rng.randrange(ways)
                ref.touch(way)
                fast.touch(way)
            elif op == 1:
                way = rng.randrange(ways)
                ref_fill = getattr(ref, "on_fill", ref.touch)
                ref_fill(way)
                fast.on_fill(way)
            elif op == 2:
                assert ref.victim(None) == fast.victim(None), (
                    f"victim diverged at step {step}"
                )
            else:
                way = rng.randrange(ways)
                ref.invalidate(way)
                fast.invalidate(way)
            assert ref.state_snapshot() == fast.state_snapshot(), (
                f"state diverged at step {step} (op {op})"
            )

    def test_victim_sequence_from_power_on(self, name, ways):
        ref = reference_policy(name, ways)
        fast = TabledPolicy(ways, base=name)
        for way in range(ways):
            ref_fill = getattr(ref, "on_fill", ref.touch)
            ref_fill(way)
            fast.on_fill(way)
        victims_ref = [ref.victim(None) for _ in range(2 * ways)]
        victims_fast = [fast.victim(None) for _ in range(2 * ways)]
        assert victims_ref == victims_fast

    def test_valid_mask_prefers_invalid_way(self, name, ways):
        ref = reference_policy(name, ways)
        fast = TabledPolicy(ways, base=name)
        valid = [True] * ways
        valid[2] = False
        assert ref.victim(valid) == fast.victim(valid) == 2
        assert ref.state_snapshot() == fast.state_snapshot()

    def test_snapshot_round_trips_through_either_engine(self, name, ways):
        ref = reference_policy(name, ways)
        fast = TabledPolicy(ways, base=name)
        for way in (1, 0, min(3, ways - 1)):
            ref.touch(way)
        snapshot = ref.state_snapshot()
        fast.state_restore(snapshot)
        assert fast.state_snapshot() == snapshot
        assert fast.victim(None) == ref.victim(None)

    def test_reset_restores_power_on_state(self, name, ways):
        ref = reference_policy(name, ways)
        fast = TabledPolicy(ways, base=name)
        for way in range(ways):
            fast.touch(way)
        fast.reset()
        assert fast.state_snapshot() == ref.state_snapshot()

    def test_metadata_mirrors_reference(self, name, ways):
        ref = reference_policy(name, ways)
        fast = TabledPolicy(ways, base=name)
        assert fast.name == ref.name
        assert fast.state_bits == ref.state_bits
        assert fast.table_base_type is type(ref)


def make_pair(policy, ways, sets=8, line_size=64):
    config = CacheConfig(
        name="L1D",
        size=sets * ways * line_size,
        ways=ways,
        line_size=line_size,
        policy=policy,
    )
    return (
        SetAssociativeCache(config, rng=7),
        FastSetAssociativeCache(config, rng=7),
    )


def random_trace(config_sets, ways, seed, length=4000):
    """Address stream with enough reuse to exercise hits and evictions."""
    rng = random.Random(seed)
    lines = config_sets * (ways + 3)
    trace = []
    for _ in range(length):
        address = rng.randrange(lines) * 64
        access_type = (
            AccessType.STORE if rng.random() < 0.25 else AccessType.LOAD
        )
        trace.append(
            MemoryAccess(
                address=address,
                access_type=access_type,
                thread_id=rng.randrange(2),
            )
        )
    return trace


def drive(cache, trace):
    """Reference control flow: lookup, fill on miss; collect observables."""
    events = []
    for access in trace:
        result = cache.lookup(access)
        if result.hit:
            events.append(("hit", result.way))
        else:
            fill = cache.fill(access)
            events.append(("miss", fill.evicted_address))
    return events


@pytest.mark.parametrize("ways", WAYS)
@pytest.mark.parametrize("policy", POLICIES)
class TestCacheEquivalence:
    """Whole-cache differential runs over identical access traces."""

    def test_trace_observables_match(self, policy, ways):
        ref, fast = make_pair(policy, ways)
        trace = random_trace(ref.config.num_sets, ways, seed=ways * 31)
        assert drive(ref, trace) == drive(fast, trace)

    def test_final_state_matches(self, policy, ways):
        ref, fast = make_pair(policy, ways)
        trace = random_trace(ref.config.num_sets, ways, seed=ways * 87)
        drive(ref, trace)
        drive(fast, trace)
        for ref_set, fast_set in zip(ref.sets, fast.sets):
            assert ref_set.snapshot() == fast_set.snapshot()
        assert ref.counters.references == fast.counters.references
        assert ref.counters.misses == fast.counters.misses

    def test_flush_keeps_engines_aligned(self, policy, ways):
        ref, fast = make_pair(policy, ways)
        trace = random_trace(ref.config.num_sets, ways, seed=5, length=600)
        rng = random.Random(99)
        for access in trace:
            for cache in (ref, fast):
                if not cache.lookup(access).hit:
                    cache.fill(access)
            if rng.random() < 0.1:
                target = rng.randrange(64) * 64
                assert ref.flush(target) == fast.flush(target)
        for ref_set, fast_set in zip(ref.sets, fast.sets):
            assert ref_set.snapshot() == fast_set.snapshot()

    def test_probe_is_side_effect_free_and_equivalent(self, policy, ways):
        ref, fast = make_pair(policy, ways)
        trace = random_trace(ref.config.num_sets, ways, seed=3, length=300)
        drive(ref, trace)
        drive(fast, trace)
        for address in range(0, 64 * 64, 64):
            assert ref.probe(address) == fast.probe(address)
        for ref_set, fast_set in zip(ref.sets, fast.sets):
            assert ref_set.snapshot() == fast_set.snapshot()


class TestSanitizedFastEngine:
    """The PR 2 runtime sanitizer must hold on the fast engine too."""

    def test_sanitized_fast_cache_runs_clean_and_identical(self):
        for policy in POLICIES:
            ref, fast = make_pair(policy, ways=8)
            sanitize_cache(fast)
            trace = random_trace(ref.config.num_sets, 8, seed=11, length=1500)
            assert drive(ref, trace) == drive(fast, trace)
            for ref_set, fast_set in zip(ref.sets, fast.sets):
                assert ref_set.snapshot() == fast_set.snapshot()


class TestMachineEquivalence:
    """Full protocol runs decode identically under both engines."""

    @staticmethod
    def _run_protocol(engine, sanitize=False):
        from repro.channels import (
            CovertChannelProtocol,
            ProtocolConfig,
            SharedMemoryLRUChannel,
            sample_bits,
        )
        from repro.sim import INTEL_E5_2690, Machine

        machine = Machine(INTEL_E5_2690, rng=2024, engine=engine)
        if sanitize:
            from repro.analysis.sanitize import sanitize_machine

            sanitize_machine(machine)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, target_set=1, d=8
        )
        protocol = CovertChannelProtocol(
            machine, channel, ProtocolConfig(ts=3000, tr=600)
        )
        run = protocol.run_hyper_threaded([1, 0, 1, 1])
        latencies = [
            (o.latency, o.timestamp) for o in run.observations
        ]
        return sample_bits(run), latencies

    def test_protocol_bit_identical(self):
        assert self._run_protocol("reference") == self._run_protocol("fast")

    def test_protocol_bit_identical_under_sanitizer(self):
        reference = self._run_protocol("reference")
        assert self._run_protocol("fast", sanitize=True) == reference


class TestTableCompilation:
    """Eager/lazy compilation strategy and the shared-table memo."""

    def test_small_spaces_compile_eagerly(self):
        tables = PolicyTables("tree-plru", 8)
        assert tables.eager
        assert tables.state_count == estimated_state_count("tree-plru", 8)
        # Eager closure materialises every transition up front.
        assert tables.transition_count() == 2 * 8 * tables.state_count

    def test_large_spaces_compile_lazily(self):
        tables = PolicyTables("lru", 16)
        assert not tables.eager
        assert tables.state_count == 1  # just the power-on state
        policy = TabledPolicy(16, base="lru", tables=tables)
        for way in range(16):
            policy.touch(way)
        # Visited states only — nowhere near 16!.
        assert 1 < tables.state_count <= 17

    def test_estimates(self):
        assert estimated_state_count("lru", 4) == 24
        assert estimated_state_count("fifo", 8) == 8
        assert estimated_state_count("bit-plru", 8) == 256
        assert estimated_state_count("srrip", 4, rrpv_bits=2) == 256
        assert estimated_state_count("random", 4) is None

    def test_compile_tables_memoises_per_shape(self):
        clear_table_cache()
        try:
            a = compile_tables("fifo", 4)
            b = compile_tables("fifo", 4)
            c = compile_tables("fifo", 8)
            assert a is b
            assert a is not c
        finally:
            clear_table_cache()

    def test_untableable_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            PolicyTables("random", 4)

    def test_mismatched_shared_tables_rejected(self):
        tables = compile_tables("fifo", 4)
        with pytest.raises(ConfigurationError):
            TabledPolicy(8, base="fifo", tables=tables)

    def test_untableable_cache_policy_falls_back_to_reference(self):
        config = CacheConfig(
            name="L1D", size=2048, ways=4, line_size=64, policy="random"
        )
        cache = FastSetAssociativeCache(config, rng=1)
        assert not isinstance(cache.sets[0].policy, TabledPolicy)
        ref = SetAssociativeCache(config, rng=1)
        trace = random_trace(ref.config.num_sets, 4, seed=21, length=800)
        assert drive(ref, trace) == drive(cache, trace)


class TestEngineSelection:
    """Engine resolution helpers and the REPRO_ENGINE environment knob."""

    def test_resolve_defaults_to_reference(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert default_engine() == "reference"
        assert resolve_engine(None) == "reference"
        assert resolve_engine("fast") == "fast"

    def test_env_var_sets_process_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "fast")
        assert resolve_engine(None) == "fast"

    def test_set_default_engine_round_trip(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        set_default_engine("fast")
        assert default_engine() == "fast"
        set_default_engine(None)
        assert default_engine() == "reference"

    def test_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        with pytest.raises(ConfigurationError):
            set_default_engine("warp")
        with pytest.raises(ConfigurationError):
            resolve_engine("warp")

    def test_hierarchy_engine_selection(self):
        from repro.cache.config import HierarchyConfig
        from repro.cache.hierarchy import CacheHierarchy

        fast = CacheHierarchy(HierarchyConfig(), rng=1, engine="fast")
        ref = CacheHierarchy(HierarchyConfig(), rng=1, engine="reference")
        assert fast.engine == "fast"
        assert isinstance(fast.l1, FastSetAssociativeCache)
        assert ref.engine == "reference"
        assert not isinstance(ref.l1, FastSetAssociativeCache)

    def test_batch_engine_is_resolvable(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine("batch") == "batch"
        set_default_engine("batch")
        assert default_engine() == "batch"
        set_default_engine(None)

    def test_batch_hierarchy_uses_fast_scalar_caches(self):
        from repro.cache.config import HierarchyConfig
        from repro.cache.hierarchy import CacheHierarchy

        batch = CacheHierarchy(HierarchyConfig(), rng=1, engine="batch")
        assert batch.engine == "batch"
        assert isinstance(batch.l1, FastSetAssociativeCache)


# ----------------------------------------------------------------------
# The batch engine: dense table arrays and lockstep transfers
# ----------------------------------------------------------------------


class TestTableArrays:
    """The dense ``as_arrays`` export: memoization and fidelity."""

    def test_as_arrays_is_memoised(self):
        clear_table_cache()
        try:
            tables = compile_tables("fifo", 4)
            arrays = tables.as_arrays()
            assert tables.as_arrays() is arrays
        finally:
            clear_table_cache()

    def test_clear_table_cache_drops_arrays(self):
        clear_table_cache()
        tables = compile_tables("tree-plru", 4)
        arrays = tables.as_arrays()
        clear_table_cache()
        assert tables._arrays is None
        fresh = compile_tables("tree-plru", 4)
        assert fresh is not tables
        assert fresh.as_arrays() is not arrays

    def test_open_tables_refuse_dense_export(self):
        # True LRU at 16 ways has 16! states: never eagerly closed.
        tables = compile_tables("lru", 16)
        with pytest.raises(ConfigurationError):
            tables.as_arrays()

    def test_arrays_are_read_only(self):
        arrays = compile_tables("fifo", 4).as_arrays()
        with pytest.raises(ValueError):
            arrays.touch[0] = 1

    def test_arrays_mirror_scalar_tables(self):
        tables = compile_tables("tree-plru", 4)
        arrays = tables.as_arrays()
        assert arrays.initial == tables.initial
        for state in range(arrays.state_count):
            for way in range(4):
                index = state * 4 + way
                assert arrays.touch[index] == tables.touch_to(state, way)
                assert arrays.fill[index] == tables.fill_to(state, way)
            victim, after = tables.victim_of(state)
            assert arrays.victim_way[state] == victim
            assert arrays.victim_next[state] == after
            # evict_to is the full-miss composition, one entry per state:
            # victim search then fill into the victim way.
            assert arrays.evict_to[state] == tables.fill_to(after, victim)


def batch_hierarchy(policy, ways, sets=8):
    """A small two-level hierarchy whose L1 runs the given policy."""
    from repro.cache.config import HierarchyConfig

    l1 = CacheConfig(
        name="L1D",
        size=sets * ways * 64,
        ways=ways,
        line_size=64,
        policy=policy,
    )
    return HierarchyConfig(l1=l1)


def scalar_trial(
    algorithm, hierarchy, trial_index, message_length, sanitized=False
):
    """Fast-engine scalar oracle for one absolute trial index.

    Drives a :class:`FastSetAssociativeCache` through the exact per-bit
    schedule the batch engine executes — init, bit-conditional sender,
    decode, timed probe — drawing message bits and timer noise from the
    same counter-based streams, so its hits and observed latencies must
    equal the batch engine's row for this trial bit-for-bit.
    """
    import numpy as np

    from repro.common.rng import spawn_streams, stream_bits, trial_streams
    from repro.sim.batch import BATCH_CHANNELS, CHAIN_LENGTH, default_d
    from repro.timing.measurement import batch_observed_latency
    from repro.timing.tsc import INTEL_TSC

    l1 = hierarchy.l1
    keys = trial_streams(2020, 1, offset=trial_index)
    noise_keys = spawn_streams(keys, "tsc")
    sent = stream_bits(spawn_streams(keys, "message"), message_length)[0]
    channel = BATCH_CHANNELS[algorithm].build(
        l1, target_set=1, d=default_d(algorithm, l1.ways)
    )
    cache = FastSetAssociativeCache(l1, rng=1)
    if sanitized:
        sanitize_cache(cache)

    def access(address):
        probe = MemoryAccess(address=address)
        result = cache.lookup(probe, count=False)
        if not result.hit:
            cache.fill(probe)
        return result.hit

    hits, latencies = [], []
    for position in range(message_length):
        for address in channel.init_addresses():
            access(address)
        for address in channel.sender_addresses(int(sent[position])):
            access(address)
        for address in channel.decode_addresses():
            access(address)
        hit = access(channel.probe_address)
        hits.append(bool(hit))
        latencies.append(
            float(
                batch_observed_latency(
                    np.array([hit]),
                    l1.hit_latency,
                    hierarchy.l2.hit_latency,
                    INTEL_TSC,
                    noise_keys,
                    position,
                    CHAIN_LENGTH,
                )[0]
            )
        )
    return [int(b) for b in sent], hits, latencies


@pytest.mark.parametrize("ways", WAYS)
@pytest.mark.parametrize("policy", POLICIES)
class TestBatchEngineEquivalence:
    """Batch engine vs the fast scalar oracle, per trial and per bit.

    Covers every tableable policy at 4/8/16 ways — including true LRU
    at 16 ways, whose open (lazily grown) tables exercise the scalar
    per-trial fallback path — and batch widths 1/7/256.
    """

    BITS = 12

    def test_batch_rows_match_scalar_oracle(self, policy, ways):
        from repro.sim.batch import BatchEngine

        hierarchy = batch_hierarchy(policy, ways)
        for algorithm in ("alg1", "alg2"):
            engine = BatchEngine(algorithm, hierarchy=hierarchy)
            result = engine.run_transfer(7, message_length=self.BITS)
            for trial in (0, 3, 6):
                sent, hits, latencies = scalar_trial(
                    algorithm, hierarchy, trial, self.BITS
                )
                assert list(result.sent[trial]) == sent
                assert list(result.probe_hits[trial]) == hits
                assert [float(x) for x in result.latencies[trial]] == latencies

    def test_trial_rows_independent_of_batch_width(self, policy, ways):
        import numpy as np

        from repro.sim.batch import BatchEngine

        hierarchy = batch_hierarchy(policy, ways)
        engine = BatchEngine("alg1", hierarchy=hierarchy)
        wide = engine.run_transfer(256, message_length=4)
        narrow = engine.run_transfer(7, message_length=4)
        solo = engine.run_transfer(1, message_length=4, trial_offset=200)
        np.testing.assert_array_equal(narrow.sent, wide.sent[:7])
        np.testing.assert_array_equal(narrow.decoded, wide.decoded[:7])
        np.testing.assert_array_equal(narrow.latencies, wide.latencies[:7])
        np.testing.assert_array_equal(solo.sent[0], wide.sent[200])
        np.testing.assert_array_equal(solo.decoded[0], wide.decoded[200])
        np.testing.assert_array_equal(solo.latencies[0], wide.latencies[200])


class TestBatchEngineDetails:
    """Fallback accounting, sanitizer spot-check, validation errors."""

    def test_open_table_fallback_is_counted_and_identical(self):
        from repro.sim.batch import BatchCache, BatchEngine

        hierarchy = batch_hierarchy("lru", 16)
        cache = BatchCache(hierarchy.l1, trials=2)
        assert cache.arrays is None  # 16! states: no dense export
        engine = BatchEngine("alg2", hierarchy=hierarchy)
        result = engine.run_transfer(3, message_length=6)
        assert result.fallback_steps > 0
        sent, hits, latencies = scalar_trial("alg2", hierarchy, 1, 6)
        assert list(result.sent[1]) == sent
        assert list(result.probe_hits[1]) == hits

    def test_dense_path_never_falls_back(self):
        from repro.sim.batch import BatchEngine

        engine = BatchEngine("alg1", hierarchy=batch_hierarchy("tree-plru", 8))
        result = engine.run_transfer(16, message_length=8)
        assert result.fallback_steps == 0
        # steps aggregates over the trial axis: lockstep steps * trials.
        assert result.steps > 0
        assert result.steps % 16 == 0

    def test_sanitized_scalar_oracle_matches_batch_trial_zero(self):
        from repro.sim.batch import BatchEngine

        hierarchy = batch_hierarchy("tree-plru", 8)
        engine = BatchEngine("alg1", hierarchy=hierarchy)
        result = engine.run_transfer(4, message_length=10)
        sent, hits, latencies = scalar_trial(
            "alg1", hierarchy, 0, 10, sanitized=True
        )
        assert list(result.sent[0]) == sent
        assert list(result.probe_hits[0]) == hits
        assert [float(x) for x in result.latencies[0]] == latencies

    def test_decoded_bits_follow_threshold(self):
        import numpy as np

        from repro.sim.batch import BatchEngine

        engine = BatchEngine("alg1", hierarchy=batch_hierarchy("lru", 8))
        result = engine.run_transfer(32, message_length=16)
        # Channel decodes well at these shapes: overwhelming agreement.
        assert result.mean_error_rate() < 0.1
        rates = result.error_rates()
        assert rates.shape == (32,)
        assert np.all((rates >= 0.0) & (rates <= 1.0))

    def test_batch_cache_validation(self):
        from repro.sim.batch import BatchCache, BatchEngine

        with pytest.raises(ConfigurationError):
            BatchCache(batch_hierarchy("lru", 4).l1, trials=0)
        with pytest.raises(ConfigurationError):
            BatchCache(
                CacheConfig(
                    name="L1D", size=2048, ways=4, line_size=64,
                    policy="random",
                ),
                trials=2,
            )
        with pytest.raises(ConfigurationError):
            BatchEngine("alg9")
