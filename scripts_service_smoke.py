"""End-to-end smoke test for the experiment service CLI.

Usage::

    PYTHONPATH=src python scripts_service_smoke.py [--requests 30] \
        [--ids table2 table5 fig5]

The channel-as-a-service claim, exercised out-of-process against the
*real* experiment registry (the CI ``service`` job runs this on every
push; the in-process suite lives in ``tests/test_service/``):

1. start ``python -m repro serve --port 0`` as a subprocess and parse
   the announced ephemeral port;
2. drive a seeded loadgen batch through it: zero client errors, every
   response exact (no degradation on a healthy host), repeats served
   from the cache;
3. deliver SIGINT: the server must drain gracefully (exit code 0,
   drain message printed) and refuse new connections afterwards;
4. restart over the same cache directory: the first request must be
   served from the durable cache, bit-identical to the pre-drain
   answer, without re-executing the experiment.

Exit code 0 when every leg holds, 1 otherwise.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time

#: Cheap, registry-real experiments — fast enough for a CI smoke, real
#: enough to cover the full serve path (registry, runner, cache).
DEFAULT_IDS = ["table2", "table5", "fig5"]


def start_server(cache_dir, extra_args=()):
    """Spawn ``repro serve`` on an ephemeral port; return (proc, port)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-dir",
            cache_dir,
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"      server: {line}")
        if line.startswith("serving on "):
            port = int(line.rsplit(":", 1)[1])
            return process, port
    process.kill()
    raise RuntimeError("server never announced its port")


def drain(process):
    """SIGINT the server and return (exit_code, remaining_output)."""
    process.send_signal(signal.SIGINT)
    try:
        code = process.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        process.kill()
        return None, process.stdout.read()
    return code, process.stdout.read()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ids",
        nargs="+",
        default=DEFAULT_IDS,
        help="experiment ids for the batch (default: %(default)s)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=30,
        help="loadgen batch size (default: %(default)s)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="schedule seed (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir",
        default="service_smoke_cache",
        help="durable cache directory (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    from repro.service.client import ServiceClient
    from repro.service.loadgen import build_schedule, run_load

    def canonical(result):
        return json.dumps(result, sort_keys=True)

    shutil.rmtree(args.cache_dir, ignore_errors=True)

    print(f"[1/4] serve {' '.join(args.ids)} on an ephemeral port")
    process, port = start_server(args.cache_dir)
    try:
        print(f"[2/4] loadgen batch: {args.requests} requests, "
              f"seed {args.seed}")
        schedule = build_schedule(
            args.requests, args.ids, seed=args.seed, repeat_bias=0.7
        )
        report = run_load("127.0.0.1", port, schedule, timeout=120.0)
        summary = report.summary()
        print(f"      {summary}")
        if report.client_errors:
            print(f"loadgen saw {report.client_errors} client error(s)")
            return 1
        if report.total != args.requests:
            print(f"answered {report.total}/{args.requests} requests")
            return 1
        exact = {}
        for response in report.responses:
            if response["status"] != "ok" or response.get("degraded"):
                print(f"non-exact response: {response}")
                return 1
            experiment_id = response["result"]["experiment_id"]
            payload = canonical(response["result"])
            if exact.setdefault(experiment_id, payload) != payload:
                print(f"{experiment_id}: repeat differs from first answer")
                return 1
        if report.hit_rate <= 0.0:
            print("repeated requests never hit the cache")
            return 1

        print("[3/4] SIGINT: graceful drain")
        code, tail = drain(process)
        for line in tail.splitlines():
            print(f"      server: {line}")
        if code != 0:
            print(f"server exited {code}, expected 0")
            return 1
        if "drained" not in tail:
            print("server never reported the drain")
            return 1
        try:
            with ServiceClient("127.0.0.1", port, timeout=2.0) as client:
                client.ping()
            print("drained server still accepts connections")
            return 1
        except Exception:
            pass  # refused, as required
    finally:
        if process.poll() is None:
            process.kill()

    print("[4/4] restart over the same cache: bit-identical replay")
    process, port = start_server(args.cache_dir)
    try:
        with ServiceClient("127.0.0.1", port, timeout=120.0) as client:
            replay = client.request(args.ids[0])
        if replay["status"] != "ok" or replay.get("degraded"):
            print(f"replay not exact: {replay}")
            return 1
        if replay["source"] != "cache":
            print(f"replay source {replay['source']!r}, expected 'cache'")
            return 1
        if canonical(replay["result"]) != exact[args.ids[0]]:
            print("replay differs from the pre-drain answer")
            return 1
        code, _ = drain(process)
        if code != 0:
            print(f"second server exited {code}, expected 0")
            return 1
    finally:
        if process.poll() is None:
            process.kill()
    shutil.rmtree(args.cache_dir, ignore_errors=True)

    print(f"service smoke: ok — {args.requests} requests, "
          f"hit rate {summary['hit_rate']}, drain + durable replay exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
