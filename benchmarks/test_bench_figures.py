"""Benchmarks regenerating the paper's figures (3-9, 11, 13-15)."""

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5, run_fig14
from repro.experiments.fig6 import run_fig6, run_fig8, run_fig15
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig13 import run_fig13


def test_bench_fig3(run_experiment):
    """Fig 3: pointer-chase hit/miss histograms separate cleanly."""
    result = run_experiment(run_fig3, samples=2000)
    for row in result.rows:
        assert row[3] > 0  # miss mode above hit mode on both vendors


def test_bench_fig4(run_experiment):
    """Fig 4: error rate vs transmission rate grid."""
    result = run_experiment(run_fig4)
    alg1 = [r for r in result.rows if r[0] == "Alg 1"]
    assert alg1, "Alg 1 rows missing"


def test_bench_fig5(run_experiment):
    """Fig 5: E5-2690 alternating-bit receiver traces."""
    result = run_experiment(run_fig5)
    assert all(row[3] > 1.0 for row in result.rows)  # visible contrast


def test_bench_fig6(run_experiment):
    """Fig 6: time-sliced %1s on the E5-2690."""
    run_experiment(run_fig6)


def test_bench_fig7(run_experiment):
    """Fig 7: AMD traces recovered via moving average."""
    result = run_experiment(run_fig7)
    assert all(row[4] > 4.0 for row in result.rows)  # wave amplitude


def test_bench_fig8(run_experiment):
    """Fig 8: time-sliced %1s on the AMD EPYC 7571."""
    run_experiment(run_fig8)


def test_bench_fig9(run_experiment):
    """Fig 9: replacement-policy defense cost."""
    result = run_experiment(run_fig9)
    geomean = result.rows[-1]
    assert float(geomean[4]) < 1.02 and float(geomean[5]) < 1.02


def test_bench_fig11(run_experiment):
    """Fig 11: PL cache leak and its fix."""
    result = run_experiment(run_fig11)
    assert result.rows[0][1] == 1.0  # original leaks perfectly
    assert result.rows[1][2] is True  # hardened: all hits


def test_bench_fig13(run_experiment):
    """Fig 13: rdtscp cannot separate L1 hits from L2 hits."""
    result = run_experiment(run_fig13, samples=2000)
    for row in result.rows:
        assert row[3] > 0.8  # overlap ~ 1.0


def test_bench_fig14(run_experiment):
    """Fig 14: E3-1245 v5 alternating-bit traces (Appendix B)."""
    run_experiment(run_fig14)


def test_bench_fig15(run_experiment):
    """Fig 15: E3-1245 v5 time-sliced %1s (Appendix B)."""
    run_experiment(run_fig15)
