"""Engine benchmarks: reference vs fast over the paper's access loops.

Run with::

    pytest benchmarks/test_bench_engine.py --benchmark-only \
        --benchmark-json=benchmarks/BENCH_engine.json

Each benchmark drives one simulation engine over the exact access loop
of the paper's covert channels (Algorithm 1: shared memory; Algorithm 2:
no shared memory) — init, sender-encode and timed-decode phases against
the L1D of the Intel E5-2690 model.  The reference and fast variants of
a loop are separate benchmarks over *identical* prebuilt access streams,
so ``fast vs reference`` mean-time ratios in the emitted JSON are the
engine speedup.  ``scripts_check_bench_regression.py`` computes those
ratios and fails when the fast engine regresses.

The full-batch benchmarks (``run all`` serially and with ``--jobs 4``)
take minutes, so they only run when ``REPRO_BENCH_RUN_ALL=1`` is set;
the committed ``benchmarks/BENCH_engine.json`` baseline includes them.
"""

import os

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.channels import NoSharedMemoryLRUChannel, SharedMemoryLRUChannel
from repro.common.types import MemoryAccess
from repro.sim import INTEL_E5_2690
from repro.sim.fastpath import FastSetAssociativeCache

#: Protocol iterations per timed round — enough for stable timing while
#: keeping a full benchmark run in seconds.
ITERATIONS = 400

#: Message driven through the channel each iteration.
MESSAGE = [1, 0, 1, 1, 0, 0, 1, 0]

RUN_ALL = os.environ.get("REPRO_BENCH_RUN_ALL") == "1"


def build_cache(engine):
    config = INTEL_E5_2690.hierarchy.l1
    cache_cls = (
        FastSetAssociativeCache if engine == "fast" else SetAssociativeCache
    )
    return cache_cls(config, rng=7)


def channel_accesses(channel):
    """One protocol pass as prebuilt accesses (init, encode, decode)."""
    addresses = []
    for bit in MESSAGE:
        addresses.extend(channel.init_addresses())
        addresses.extend(channel.sender_addresses(bit))
        addresses.extend(channel.decode_addresses())
        addresses.append(channel.probe_address)
    return [MemoryAccess(address=address) for address in addresses]


def access_loop(cache, accesses):
    """The simulator's inner loop: lookup, fill on miss."""
    lookup = cache.lookup
    fill = cache.fill
    for _ in range(ITERATIONS):
        for access in accesses:
            if not lookup(access).hit:
                fill(access)


def drive_once(cache, accesses):
    """Observable trace of one pass (bit-identity guard for the bench)."""
    return [cache.lookup(access).hit or cache.fill(access) for access in accesses]


def bench_engine(benchmark, engine, channel_cls, algorithm):
    channel = channel_cls.build(INTEL_E5_2690.hierarchy.l1, target_set=1)
    accesses = channel_accesses(channel)
    cache = build_cache(engine)
    benchmark.pedantic(
        access_loop, args=(cache, accesses), rounds=5, iterations=1
    )
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["accesses_per_round"] = ITERATIONS * len(accesses)
    # The two engines must stay bit-identical on the benchmarked loop.
    assert drive_once(build_cache("reference"), accesses) == drive_once(
        build_cache("fast"), accesses
    )


def test_bench_alg1_reference(benchmark):
    """Algorithm 1 (shared memory) loop, reference engine."""
    bench_engine(benchmark, "reference", SharedMemoryLRUChannel, "alg1")


def test_bench_alg1_fast(benchmark):
    """Algorithm 1 (shared memory) loop, fast engine."""
    bench_engine(benchmark, "fast", SharedMemoryLRUChannel, "alg1")


def test_bench_alg2_reference(benchmark):
    """Algorithm 2 (no shared memory) loop, reference engine."""
    bench_engine(benchmark, "reference", NoSharedMemoryLRUChannel, "alg2")


def test_bench_alg2_fast(benchmark):
    """Algorithm 2 (no shared memory) loop, fast engine."""
    bench_engine(benchmark, "fast", NoSharedMemoryLRUChannel, "alg2")


def run_all(jobs, engine="reference"):
    from repro.experiments import EXPERIMENT_REGISTRY
    from repro.experiments.runner import ExperimentRunner
    from repro.sim.fastpath import set_default_engine

    set_default_engine(engine)
    try:
        runner = ExperimentRunner(retries=0)
        report = runner.run_many(sorted(EXPERIMENT_REGISTRY), jobs=jobs)
    finally:
        set_default_engine(None)
    assert report.ok, report.summary()
    return report


def bench_run_all(benchmark, jobs, engine):
    report = benchmark.pedantic(
        run_all, args=(jobs, engine), rounds=1, iterations=1
    )
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["experiments"] = len(report.results)
    # Process parallelism cannot beat the host's core count; record it
    # so the jobs ratio in the JSON is read against the right bound.
    benchmark.extra_info["cpu_count"] = os.cpu_count()


@pytest.mark.skipif(
    not RUN_ALL, reason="set REPRO_BENCH_RUN_ALL=1 to run the batch benches"
)
def test_bench_run_all_serial(benchmark):
    """Whole experiment battery, one process (the batch baseline)."""
    bench_run_all(benchmark, jobs=1, engine="reference")


@pytest.mark.skipif(
    not RUN_ALL, reason="set REPRO_BENCH_RUN_ALL=1 to run the batch benches"
)
def test_bench_run_all_jobs4(benchmark):
    """Whole experiment battery across 4 worker processes."""
    bench_run_all(benchmark, jobs=4, engine="reference")


@pytest.mark.skipif(
    not RUN_ALL, reason="set REPRO_BENCH_RUN_ALL=1 to run the batch benches"
)
def test_bench_run_all_fast_engine(benchmark):
    """Whole experiment battery, one process, fast engine."""
    bench_run_all(benchmark, jobs=1, engine="fast")
