"""Benchmarks for the extension experiments (beyond the paper's figures)."""

from repro.experiments.extensions import (
    run_ext_llc,
    run_ext_multiset,
    run_ext_randomized_index,
    run_ext_side_channel,
)


def test_bench_ext_llc(run_experiment):
    """Cross-core LLC channel per LLC policy."""
    result = run_experiment(run_ext_llc)
    by_policy = {row[0]: row for row in result.rows}
    assert by_policy["lru"][1] == 1.0
    assert by_policy["tree-plru"][1] > 0.85
    # Non-LRU policies: the channel decodes at ~chance level.
    assert by_policy["srrip"][1] < 0.8
    assert by_policy["random"][1] < 0.8


def test_bench_ext_side_channel(run_experiment):
    """Key recovery through the LRU side channel."""
    result = run_experiment(run_ext_side_channel)
    assert all(row[0] == row[1] for row in result.rows)


def test_bench_ext_randomized_index(run_experiment):
    """CEASER-style index randomization closes Algorithm 2."""
    result = run_experiment(run_ext_randomized_index)
    baseline, randomized = result.rows
    assert baseline[2] == "yes"
    assert randomized[2] == "no"


def test_bench_ext_multiset(run_experiment):
    """Throughput scales with parallel lanes at full accuracy."""
    result = run_experiment(run_ext_multiset)
    rounds = {row[0]: row[1] for row in result.rows}
    assert rounds[1] == 8 * rounds[8] == 32 * rounds[32]
    assert all(row[2] == 1.0 for row in result.rows)


def test_bench_ext_verify_table1(run_experiment):
    """Exhaustive state-space bounds behind Table I's plateaus."""
    from repro.experiments.extensions2 import run_ext_verify_table1

    result = run_experiment(run_ext_verify_table1)
    bounds = {row[0].split(" ")[0]: row[2] for row in result.rows}
    assert bounds == {"lru": 1, "tree-plru": 3, "bit-plru": 8}


def test_bench_ext_detector(run_experiment):
    """Perf-counter detector misses the LRU sender."""
    from repro.experiments.extensions2 import run_ext_detector

    result = run_experiment(run_ext_detector)
    verdicts = {row[0]: row[3] for row in result.rows}
    assert verdicts["LRU Alg.1 sender"] == "no"
    assert verdicts["F+R (mem) sender"] == "YES"


def test_bench_ext_coding(run_experiment):
    """Hamming(7,4)+interleaving cleans up the channel."""
    from repro.experiments.extensions2 import run_ext_coding

    result = run_experiment(run_ext_coding)
    assert all(row[2] <= row[1] + 0.01 for row in result.rows)


def test_bench_ext_alg2_timesliced(run_experiment):
    """The paper's negative result: Alg 2 has no time-sliced signal."""
    from repro.experiments.extensions3 import run_ext_alg2_timesliced

    result = run_experiment(run_ext_alg2_timesliced)
    contrasts = {row[0]: float(row[3].rstrip("%")) for row in result.rows}
    assert contrasts["Alg 2"] < 10


def test_bench_ext_capacity(run_experiment):
    """Capacity view of the channel and its defenses."""
    from repro.experiments.extensions3 import run_ext_capacity

    result = run_experiment(run_ext_capacity)
    rows = {row[0]: row for row in result.rows}
    assert rows["Alg 1, d=8"][4] > 100  # hundreds of Kbps
    assert rows["Alg 1 vs random-replacement L1"][4] < 5
