"""Benchmark-suite configuration.

Every table/figure experiment is wrapped as a pytest-benchmark target.
Each bench regenerates the experiment and attaches the rendered table to
the benchmark's ``extra_info`` so ``--benchmark-json`` output carries the
reproduced data alongside timings.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment function and print its rendered table."""

    def runner(fn, rounds: int = 1, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=rounds, iterations=1
        )
        benchmark.extra_info["experiment_id"] = result.experiment_id
        benchmark.extra_info["rows"] = len(result.rows)
        print()
        print(result.render())
        return result

    return runner
