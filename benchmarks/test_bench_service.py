"""Service benchmark: a seeded loadgen batch through a live socket.

Regenerate the committed baseline with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_service.py \
        --benchmark-only --benchmark-json=benchmarks/BENCH_service.json

The channel-as-a-service claim is latency-shaped, not throughput-shaped:
a popularity-skewed request stream (``build_schedule``'s rich-get-richer
draw) must be absorbed mostly by the result cache, so the tail latency
of the batch is a cache read plus the wire, not an experiment run.  The
bench drives the canonical 200-request schedule against an in-process
service and records what ``scripts_check_bench_regression.py`` polices:

* ``hit_rate`` — the cold-cache run must stay above the floor the
  schedule's repeat bias guarantees (``--min-hit-rate``, default 0.5;
  the committed baseline shows ~0.98);
* ``p99_ms`` / ``p50_ms`` — tail and median per-request latency, which
  must be *recorded* (absolute values are machine-bound, so the check
  only requires their presence, like every other cross-host number).

Fake experiments keep the bench about the service plane — admission,
queueing, cache, protocol — rather than simulator compute.  Exactness
is asserted before timing: every non-degraded response must be
bit-identical to a direct sequential execution.
"""

import asyncio
import json
import threading

from repro.experiments.base import ExperimentResult
from repro.service.loadgen import build_schedule, run_load
from repro.service.server import ExperimentService, ServiceConfig

#: The canonical bench batch: size, popularity skew, and seeds.
REQUESTS = 200
REPEAT_BIAS = 0.7
SCHEDULE_SEED = 1
SERVICE_SEED = 0


def _result(experiment_id, value):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"bench {experiment_id}",
        columns=["value"],
        rows=[[value]],
    )


def run_alpha(rng: int = 11):
    return _result("alpha", rng * 2)


def run_beta(rng: int = 22):
    return _result("beta", rng + 1)


def run_gamma():
    return _result("gamma", 333)


def run_delta(rng: int = 44):
    return _result("delta", rng * rng)


REGISTRY = {
    "alpha": run_alpha,
    "beta": run_beta,
    "gamma": run_gamma,
    "delta": run_delta,
}


class _Harness:
    """Minimal thread-backed service host (mirrors the test harness)."""

    def __init__(self, config):
        self.config = config
        self.service = None
        self.port = None
        self._loop = None
        self._stop = None
        self._ready = threading.Event()
        self._error = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self):
        self._thread.start()
        assert self._ready.wait(30.0), "service failed to start in time"
        if self._error is not None:
            raise self._error
        return self

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        try:
            self.service = ExperimentService(
                self.config, registry=REGISTRY
            )
            await self.service.start()
            self.port = self.service.port
        except BaseException as error:  # noqa: BLE001 - surfaced in start()
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        await self.service.serve_until(self._stop)

    def stop(self):
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass
        self._thread.join(30.0)
        assert not self._thread.is_alive(), "service failed to drain"


def canonical(result):
    return json.dumps(result, sort_keys=True)


def test_bench_service_loadgen(benchmark, tmp_path):
    """Cold-cache loadgen batch; warm repeats timed, cold run recorded."""
    config = ServiceConfig(
        port=0,
        pools=2,
        queue_depth=8,
        rate=500.0,
        burst=100,
        cache_dir=str(tmp_path / "bench-cache"),
        drain_timeout=10.0,
        seed=SERVICE_SEED,
    )
    harness = _Harness(config).start()
    schedule = build_schedule(
        REQUESTS,
        sorted(REGISTRY),
        seed=SCHEDULE_SEED,
        repeat_bias=REPEAT_BIAS,
    )
    baselines = {
        experiment_id: canonical(fn().to_dict())
        for experiment_id, fn in REGISTRY.items()
    }
    reports = []

    def batch():
        reports.append(
            run_load("127.0.0.1", harness.port, schedule, timeout=60.0)
        )

    try:
        # Round 1 is the cold-cache run the regression check polices;
        # later rounds re-measure the warm (pure cache) path.
        benchmark.pedantic(batch, rounds=3, iterations=1)
    finally:
        harness.stop()

    cold = reports[0]
    assert cold.client_errors == 0, "loadgen saw transport errors"
    for report in reports:
        assert report.total == REQUESTS
        for response in report.responses:
            assert response["status"] == "ok"
            assert not response.get("degraded")
            experiment_id = response["result"]["experiment_id"]
            assert canonical(response["result"]) == baselines[experiment_id]

    summary = cold.summary()
    benchmark.extra_info["workload"] = "service-loadgen"
    benchmark.extra_info["requests"] = REQUESTS
    benchmark.extra_info["experiments"] = len(REGISTRY)
    benchmark.extra_info["repeat_bias"] = REPEAT_BIAS
    benchmark.extra_info["hit_rate"] = summary["hit_rate"]
    benchmark.extra_info["warm_hit_rate"] = round(reports[-1].hit_rate, 4)
    benchmark.extra_info["p50_ms"] = summary["p50_ms"]
    benchmark.extra_info["p99_ms"] = summary["p99_ms"]
    benchmark.extra_info["degraded"] = summary["degraded"]
