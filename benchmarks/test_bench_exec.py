"""Executor benchmarks: bare ``multiprocessing.Pool`` vs the supervisor.

Regenerate the committed baseline with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_exec.py \
        --benchmark-only --benchmark-json=benchmarks/BENCH_exec.json

The supervised executor (``repro/experiments/supervisor.py``) buys
crash recovery with machinery a bare ``Pool`` does not have: per-worker
task queues, a result-pump loop in the parent, and a heartbeat thread
in every worker.  On a fault-free batch all of that must be overhead
noise — the budget is **10%** over the ``Pool`` wall-clock, policed by
``scripts_check_bench_regression.py`` against the committed
``benchmarks/BENCH_exec.json`` baseline.

Both executors run the *identical* task batch (seeded cache access
sweeps — the simulator's real inner loop, sized so per-task compute
dwarfs pickling but fixed scheduling costs do not vanish), and each
bench asserts the results are bit-identical to a serial pass before
timing.
"""

import multiprocessing
import os

from repro.cache.cache import SetAssociativeCache
from repro.common.rng import make_rng
from repro.common.types import MemoryAccess
from repro.experiments.supervisor import SupervisedExecutor
from repro.sim import INTEL_E5_2690

#: Tasks per batch and workers per executor.  Eight ~100ms tasks over
#: two workers: long enough that compute dominates, short enough that
#: per-task dispatch (the overhead under test) still registers.
TASKS = 8
JOBS = 2

#: Cache accesses per task (~100ms of the reference engine's hot loop).
ACCESSES = 8000

#: Working set in cache lines — a few L1 footprints, so the sweep
#: exercises hits, misses, and evictions rather than pure fills.
WORKING_SET_LINES = 2048


def batch_task(index):
    """One batch unit: a seeded access sweep against a fresh L1 model."""
    cache = SetAssociativeCache(INTEL_E5_2690.hierarchy.l1, rng=index)
    rng = make_rng(1000 + index)
    hits = 0
    for _ in range(ACCESSES):
        access = MemoryAccess(
            address=rng.randrange(WORKING_SET_LINES) * 64
        )
        if cache.lookup(access).hit:
            hits += 1
        else:
            cache.fill(access)
    return (index, hits)


def run_pool():
    """The pre-supervisor fan-out: a bare worker pool, no recovery."""
    with multiprocessing.Pool(JOBS) as pool:  # repro: allow(no-bare-pool)
        return sorted(pool.map(batch_task, range(TASKS)))


def run_supervised():
    """The same batch through the crash-safe supervised executor."""
    records = []
    executor = SupervisedExecutor(
        batch_task,
        jobs=JOBS,
        heartbeat_interval=0.2,
        poll_interval=0.01,
    )
    outcome = executor.run(
        [(f"task{i:02d}", i) for i in range(TASKS)], records.append
    )
    assert outcome.stats.clean, outcome.stats.to_dict()
    assert not outcome.unfinished and not outcome.interrupted
    return sorted(records)


def bench_executor(benchmark, executor, fn):
    # Both paths must reproduce the serial batch bit-identically.
    assert fn() == sorted(batch_task(i) for i in range(TASKS))
    benchmark.pedantic(fn, rounds=3, iterations=1)
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["workload"] = "cache-sweep"
    benchmark.extra_info["tasks"] = TASKS
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["accesses_per_task"] = ACCESSES
    benchmark.extra_info["cpu_count"] = os.cpu_count()


def test_bench_exec_pool(benchmark):
    """Fault-free batch through a bare ``multiprocessing.Pool``."""
    bench_executor(benchmark, "pool", run_pool)


def test_bench_exec_supervised(benchmark):
    """Fault-free batch through ``SupervisedExecutor`` (same workers)."""
    bench_executor(benchmark, "supervised", run_supervised)
