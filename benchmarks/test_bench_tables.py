"""Benchmarks regenerating the paper's tables (I, II, IV, V, VI, VII).

Run with ``pytest benchmarks/ --benchmark-only``.  Each bench prints the
reproduced table next to the paper's reference values.
"""

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7


def test_bench_table1(run_experiment):
    """Table I: P(line 0 evicted) under LRU/Tree-PLRU/Bit-PLRU."""
    result = run_experiment(run_table1, trials=1500)
    # Structural assertions on the reproduced table.
    lru_rows = [r for r in result.rows if r[2] == "lru"]
    assert all(r[4] == 1.0 for r in lru_rows)


def test_bench_table2(run_experiment):
    """Table II: cache access latencies per microarchitecture."""
    result = run_experiment(run_table2)
    assert len(result.rows) == 3


def test_bench_table4(run_experiment):
    """Table IV: transmission rates across configurations."""
    result = run_experiment(run_table4)
    intel_ht = result.rows[0][3]
    assert "Kbps" in intel_ht


def test_bench_table5(run_experiment):
    """Table V: sender encoding latency per channel."""
    result = run_experiment(run_table5)
    for row in result.rows:
        assert row[5] <= row[3] < row[1]  # LRU <= F+R(L1) < F+R(mem)


def test_bench_table6(run_experiment):
    """Table VI: sender process miss rates."""
    result = run_experiment(run_table6)
    assert len(result.rows) == 12  # 6 scenarios x 2 machines


def test_bench_table7(run_experiment):
    """Table VII: Spectre attack miss rates per disclosure channel."""
    result = run_experiment(run_table7)
    assert all(row[4] == "100%" for row in result.rows)
