"""Observability overhead benchmarks: off vs metrics vs full tracing.

Regenerate the committed evidence with:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_obs.py \
        --benchmark-only --benchmark-json=benchmarks/BENCH_obs.json

The benchmarked workload is a full covert-channel transfer (machine +
scheduler + hierarchy + protocol + decoder) — every instrumented layer
on its real hot path.  Three modes:

* ``off`` — no session active; every instrument site is one ``is None``
  check.  This is the default mode of the whole test/benchmark suite,
  so the committed ``BENCH_engine.json`` run-all baselines (recorded
  before the instrumentation existed) double as the off-mode regression
  guard: the <2% disabled-overhead budget is policed by
  ``scripts_check_bench_regression.py`` against those numbers.
* ``metrics`` — a session with ``trace_depth=0``: counters, gauges and
  histograms are live, the trace bus is not.
* ``traced`` — metrics plus the ring-buffered trace bus (the
  ``--trace`` configuration).

Every mode must decode the same bits — observability reads the run and
never steers it — which each benchmark asserts before timing.
"""

from repro.channels import (
    CovertChannelProtocol,
    ProtocolConfig,
    SharedMemoryLRUChannel,
    runlength_decode,
    sample_bits,
)
from repro.obs.session import ObsSession, observe
from repro.sim import INTEL_E5_2690, Machine

#: Transfers per timed round — one transfer is ~60k simulated ops.
TRANSFERS = 3

MESSAGE = [1, 0, 1, 1, 0, 0, 1, 0] * 4


def transfer():
    machine = Machine(INTEL_E5_2690, rng=2024)
    channel = SharedMemoryLRUChannel.build(
        machine.spec.hierarchy.l1, target_set=1, d=8
    )
    protocol = CovertChannelProtocol(
        machine, channel, ProtocolConfig(ts=6000, tr=600)
    )
    run = protocol.run_hyper_threaded(MESSAGE)
    return runlength_decode(sample_bits(run), 10)[: len(MESSAGE)]


def run_off():
    return [transfer() for _ in range(TRANSFERS)]


def run_metrics():
    with observe(ObsSession(trace_depth=0)):
        return [transfer() for _ in range(TRANSFERS)]


def run_traced():
    with observe(ObsSession()):
        return [transfer() for _ in range(TRANSFERS)]


def bench_mode(benchmark, mode, fn):
    assert fn() == run_off()  # observability must not change results
    benchmark.pedantic(fn, rounds=5, iterations=1)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["transfers_per_round"] = TRANSFERS
    benchmark.extra_info["bits_per_transfer"] = len(MESSAGE)


def test_bench_obs_off(benchmark):
    """Instrumented hot paths with no session (the default)."""
    bench_mode(benchmark, "off", run_off)


def test_bench_obs_metrics(benchmark):
    """Metrics-only session (``observe=True``, no trace)."""
    bench_mode(benchmark, "metrics", run_metrics)


def test_bench_obs_traced(benchmark):
    """Full session: metrics + ring-buffered trace bus (``--trace``)."""
    bench_mode(benchmark, "traced", run_traced)
