"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation isolates one parameter the paper discusses qualitatively
and quantifies its effect in our reproduction:

* the receiver's initialization depth ``d`` per replacement policy,
* the pointer-chase chain length (paper footnote 3),
* the victim L1 policy under the channel (Tree-PLRU vs Bit-PLRU vs LRU),
* the Spectre speculation-window requirement per disclosure channel,
* the AMD moving-average window.
"""

import dataclasses

from repro.attacks.spectre import SpectreConfig, SpectreV1
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.decoder import moving_average_decode
from repro.channels.evaluation import evaluate_hyper_threaded, random_message
from repro.channels.protocol import CovertChannelProtocol, ProtocolConfig
from repro.common.editdist import channel_error_rate
from repro.common.stats import Histogram
from repro.sim.machine import Machine
from repro.sim.specs import AMD_EPYC_7571, INTEL_E5_2690
from repro.timing.measurement import PointerChase


def _spec_with_policy(policy):
    base = INTEL_E5_2690.hierarchy
    l1 = dataclasses.replace(base.l1, policy=policy)
    return dataclasses.replace(
        INTEL_E5_2690, hierarchy=dataclasses.replace(base, l1=l1)
    )


def _alg2_error(policy: str, d: int) -> float:
    spec = _spec_with_policy(policy)
    machine = Machine(spec, rng=42)
    channel = NoSharedMemoryLRUChannel.build(spec.hierarchy.l1, 1, d=d)
    return evaluate_hyper_threaded(
        machine, channel, ProtocolConfig(ts=6000, tr=600),
        random_message(32, rng=7), repeats=2,
    ).error_rate


def test_bench_ablation_d_parity(benchmark):
    """Alg 2 + Tree-PLRU: even d catastrophically worse than odd d."""

    def run():
        return {
            d: _alg2_error("tree-plru", d) for d in (3, 4, 5, 6)
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAlg2/Tree-PLRU error by d: {errors}")
    assert errors[4] > errors[5]
    assert errors[6] > errors[5]


def test_bench_ablation_victim_policy(benchmark):
    """True LRU is the friendliest victim; PLRU variants add noise."""

    def run():
        return {p: _alg2_error(p, 5) for p in ("lru", "tree-plru", "bit-plru")}

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAlg2 error by victim policy (d=5): {errors}")
    assert errors["lru"] <= errors["tree-plru"] + 0.05


def test_bench_ablation_chain_length(benchmark):
    """Paper footnote 3: chains shorter than ~7 lose separability."""

    def separability(length):
        machine = Machine(INTEL_E5_2690, rng=11)
        chase = PointerChase(
            machine.hierarchy, machine.tsc, chain_set=0, chain_length=length
        )
        chase.prime_chain()
        target = 5 * 64
        stride = 64 * 64
        hit, miss = Histogram(), Histogram()
        for _ in range(400):
            machine.hierarchy.load(target, count=False)
            hit.add(chase.measure(target))
            for k in range(1, 9):
                machine.hierarchy.load(
                    target + (1 << 24) + k * stride, count=False
                )
            miss.add(chase.measure(target))
        return 1.0 - hit.overlap(miss)

    def run():
        return {n: round(separability(n), 3) for n in (1, 3, 5, 7)}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nhit/miss separability by chain length: {result}")
    # A one-element "chain" collapses back into the timer's
    # serialization shadow; by the paper's length (7) the separability
    # is essentially perfect.
    assert result[1] < 0.5
    assert result[7] > 0.9
    assert result[7] >= result[1]


def test_bench_ablation_speculation_window(benchmark):
    """LRU disclosure survives far smaller windows than F+R(mem)."""
    secret = [7, 42, 13]

    def accuracy(disclosure, window):
        machine = Machine(INTEL_E5_2690, rng=5)
        attack = SpectreV1(
            machine, secret, disclosure=disclosure,
            config=SpectreConfig(rounds=3, speculation_window=window),
            rng=9,
        )
        return attack.recover().accuracy(secret)

    def run():
        return {
            w: {
                "flush_reload": accuracy("flush_reload", w),
                "lru_alg1": accuracy("lru_alg1", w),
            }
            for w in (30, 150, 450)
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSpectre accuracy by window: {result}")
    assert result[30]["lru_alg1"] == 1.0
    assert result[30]["flush_reload"] < 1.0
    assert result[450]["flush_reload"] == 1.0


def test_bench_ablation_moving_average_window(benchmark):
    """AMD decoding quality vs moving-average window (Section VI)."""
    machine = Machine(AMD_EPYC_7571, rng=17)
    channel = SharedMemoryLRUChannel.build(machine.spec.hierarchy.l1, 1, d=8)
    protocol = CovertChannelProtocol(
        machine, channel, ProtocolConfig(ts=2e4, tr=1e3, sender_space=0)
    )
    message = [i % 2 for i in range(16)]
    run_record = protocol.run_hyper_threaded(message)
    latencies = run_record.latencies()

    def run():
        out = {}
        for window in (1, 5, 20, 40):
            decoded = moving_average_decode(
                latencies, samples_per_bit_hint=20,
                hit_means_one=True, window=window,
            )
            out[window] = round(channel_error_rate(message, decoded), 3)
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAMD error rate by moving-average window: {result}")
    # The window must track the bit period: over-smoothing at twice the
    # period destroys the wave the receiver is trying to slice.
    assert result[40] >= min(result[1], result[5])
    assert min(result.values()) < 0.5  # some window recovers the signal
