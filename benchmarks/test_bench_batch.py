"""Batch-engine benchmarks: N-trial lockstep vs. the scalar fast engine.

Run with::

    pytest benchmarks/test_bench_batch.py --benchmark-only \
        --benchmark-json=benchmarks/BENCH_batch.json

Each pair times the same workload — ``TRIALS`` independent covert-channel
transfers of ``MESSAGE_LENGTH`` bits — two ways:

* ``batch``: one :class:`~repro.sim.batch.BatchEngine.run_transfer` call,
  every trial advanced in lockstep through the dense policy-table arrays;
* ``fast``: a Python loop of scalar transfers over
  :class:`~repro.sim.fastpath.FastSetAssociativeCache`, drawing message
  bits and timer noise from the *same* counter-based streams.

Because both sides consume identical per-trial streams they produce
bit-identical sent/decoded rows (asserted here, and exhaustively in
``tests/test_perf/test_engine_equivalence.py``), so the fast/batch mean
ratio in the emitted JSON is a pure engine speedup.
``scripts_check_bench_regression.py --min-batch-speedup`` polices it.

The 100k-trial end-to-end bench (checkpointed ``run_trials`` blocks)
takes tens of seconds, so like the engine suite's run-all benches it
only runs when ``REPRO_BENCH_RUN_ALL=1``.
"""

import os

import numpy as np
import pytest

from repro.common.rng import spawn_streams, stream_bits, trial_streams
from repro.common.types import MemoryAccess
from repro.sim import INTEL_E5_2690
from repro.sim.batch import (
    BATCH_CHANNELS,
    CHAIN_LENGTH,
    BatchEngine,
    default_d,
)
from repro.sim.fastpath import FastSetAssociativeCache
from repro.timing.measurement import batch_observed_latency
from repro.timing.tsc import INTEL_TSC

#: Trials per timed round — wide enough that the lockstep arrays, not
#: per-call overhead, dominate the batch side.
TRIALS = 256

#: Bits per trial; short enough to keep the scalar side in seconds.
MESSAGE_LENGTH = 32

SEED = 2020

RUN_ALL = os.environ.get("REPRO_BENCH_RUN_ALL") == "1"


def run_batch(algorithm):
    engine = BatchEngine(algorithm=algorithm, seed=SEED)
    return engine.run_transfer(TRIALS, message_length=MESSAGE_LENGTH)


def scalar_transfer(algorithm, hierarchy, trial_index):
    """One scalar fast-engine transfer from the trial's own streams."""
    l1 = hierarchy.l1
    keys = trial_streams(SEED, 1, offset=trial_index)
    noise_keys = spawn_streams(keys, "tsc")
    sent = stream_bits(spawn_streams(keys, "message"), MESSAGE_LENGTH)[0]
    channel = BATCH_CHANNELS[algorithm].build(
        l1, target_set=1, d=default_d(algorithm, l1.ways)
    )
    cache = FastSetAssociativeCache(l1, rng=1)

    def access(address):
        probe = MemoryAccess(address=address)
        result = cache.lookup(probe, count=False)
        if not result.hit:
            cache.fill(probe)
        return result.hit

    hits, latencies = [], []
    for position in range(MESSAGE_LENGTH):
        for address in channel.init_addresses():
            access(address)
        for address in channel.sender_addresses(int(sent[position])):
            access(address)
        for address in channel.decode_addresses():
            access(address)
        hit = access(channel.probe_address)
        hits.append(bool(hit))
        latencies.append(
            float(
                batch_observed_latency(
                    np.array([hit]),
                    l1.hit_latency,
                    hierarchy.l2.hit_latency,
                    INTEL_TSC,
                    noise_keys,
                    position,
                    CHAIN_LENGTH,
                )[0]
            )
        )
    return [int(b) for b in sent], hits, latencies


def run_scalar(algorithm):
    hierarchy = INTEL_E5_2690.hierarchy
    return [
        scalar_transfer(algorithm, hierarchy, trial)
        for trial in range(TRIALS)
    ]


def bench_trials(benchmark, engine, algorithm):
    fn = run_batch if engine == "batch" else run_scalar
    benchmark.pedantic(fn, args=(algorithm,), rounds=5, iterations=1)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["trials"] = TRIALS
    benchmark.extra_info["message_length"] = MESSAGE_LENGTH
    # The two sides must stay bit-identical on the benchmarked workload
    # (trial 0 here; every width/policy combination in the test suite).
    transfer = run_batch(algorithm)
    sent, hits, latencies = scalar_transfer(
        algorithm, INTEL_E5_2690.hierarchy, 0
    )
    assert list(transfer.sent[0]) == sent
    assert list(transfer.probe_hits[0]) == hits
    np.testing.assert_allclose(transfer.latencies[0], latencies)


def test_bench_alg1_batch(benchmark):
    """Algorithm 1 (shared memory), 256 trials in lockstep."""
    bench_trials(benchmark, "batch", "alg1")


def test_bench_alg1_fast(benchmark):
    """Algorithm 1 (shared memory), 256 scalar fast-engine trials."""
    bench_trials(benchmark, "fast", "alg1")


def test_bench_alg2_batch(benchmark):
    """Algorithm 2 (no shared memory), 256 trials in lockstep."""
    bench_trials(benchmark, "batch", "alg2")


def test_bench_alg2_fast(benchmark):
    """Algorithm 2 (no shared memory), 256 scalar fast-engine trials."""
    bench_trials(benchmark, "fast", "alg2")


@pytest.mark.skipif(
    not RUN_ALL, reason="set REPRO_BENCH_RUN_ALL=1 to run the 100k bench"
)
def test_bench_run_trials_100k(benchmark):
    """100k trials end-to-end through the checkpointed runner blocks."""
    from repro.experiments.runner import ExperimentRunner

    def run():
        report = ExperimentRunner(retries=0).run_trials(
            "alg1", trials=100_000, message_length=MESSAGE_LENGTH,
            block_size=4096,
        )
        assert report.ok, report.summary()
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["engine"] = "batch"
    benchmark.extra_info["workload"] = "run-trials-100k"
    benchmark.extra_info["blocks"] = len(report.results)
