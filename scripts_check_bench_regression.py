"""Check a benchmark run against its committed baseline.

Usage::

    python scripts_check_bench_regression.py CURRENT.json \
        [--baseline benchmarks/BENCH_engine.json] \
        [--min-speedup 2.0] [--tolerance 0.25] [--max-exec-overhead 0.10]

Both files are ``pytest-benchmark --benchmark-json`` output — from
``benchmarks/test_bench_engine.py`` (engine speedups) or
``benchmarks/test_bench_exec.py`` (executor overhead); the script
applies whichever checks the run's ``extra_info`` pairs support.
Absolute times are machine-bound and meaningless across hosts, so
every check works on *ratios*, which are host-relative:

* every algorithm's fast-engine speedup (reference mean / fast mean)
  must reach ``--min-speedup`` (the committed baseline shows >= 3x; CI
  uses a lower floor to absorb shared-runner noise), and may not fall
  more than ``--tolerance`` (default 25%) below the committed
  baseline's speedup;
* every algorithm's *batch*-engine speedup (scalar-fast mean / batch
  mean, from paired ``benchmarks/test_bench_batch.py`` runs carrying a
  ``trials`` count in ``extra_info``) must reach
  ``--min-batch-speedup`` (default 10x; the committed
  ``benchmarks/BENCH_batch.json`` baseline shows >= 50x) and may not
  fall more than ``--tolerance`` below the committed baseline's ratio;
* the supervised executor's fault-free overhead (supervised mean /
  bare-``Pool`` mean, per workload) may not exceed
  ``--max-exec-overhead`` (default 10%) — or, when the committed
  baseline already records an overhead, ``--tolerance`` above that
  baseline, whichever ceiling is higher (shared-runner noise on a
  ~1.0x ratio is proportionally large);
* every service benchmark (``workload == "service-loadgen"`` in
  ``extra_info``, from ``benchmarks/test_bench_service.py``) must
  record a positive ``p99_ms`` tail latency and a cold-cache
  ``hit_rate`` at or above ``--min-hit-rate`` (default 0.5) — the hit
  rate is a seeded property of the schedule, so unlike wall-clock it
  is comparable across hosts and policed as an absolute floor.

When both files are *leakage reports* instead (canonical JSON from
``python -m repro.analysis leakage --json``, recognizable by their
``leakage_version`` key), the script compares them exactly via
``repro.analysis.leakage.diff_reports``: the defense ranking order
and every per-cell metric must match the committed
``benchmarks/LEAKAGE_baseline.json`` bit-for-bit — the numbers are
host-independent state-space counts, so there is no tolerance.

Exit code 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import os
import sys


def _is_leakage_report(path):
    with open(path) as handle:
        return "leakage_version" in json.load(handle)


def check_leakage_drift(current_path, baseline_path):
    """Exact drift check between two leakage-analysis artifacts."""
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
    from repro.analysis.leakage import diff_reports

    with open(current_path) as handle:
        current = json.load(handle)
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    problems = diff_reports(current, baseline)
    for problem in problems:
        print(f"LEAKAGE DRIFT: {problem}")
    print("leakage check:", "FAILED" if problems else "ok")
    return 1 if problems else 0


def load_means(path):
    """benchmark name -> mean seconds, plus extra_info, from a JSON run."""
    with open(path) as handle:
        data = json.load(handle)
    return {
        bench["name"]: (bench["stats"]["mean"], bench.get("extra_info", {}))
        for bench in data["benchmarks"]
    }


def speedups(means):
    """algorithm -> reference mean / fast mean, for paired engine benches."""
    by_algorithm = {}
    for name, (mean, extra) in means.items():
        algorithm = extra.get("algorithm")
        engine = extra.get("engine")
        if algorithm and engine:
            by_algorithm.setdefault(algorithm, {})[engine] = mean
    return {
        algorithm: engines["reference"] / engines["fast"]
        for algorithm, engines in by_algorithm.items()
        if "reference" in engines and "fast" in engines
    }


def batch_engine_speedups(means):
    """algorithm -> scalar-fast mean / batch mean, for paired trial benches.

    Pairs come from ``benchmarks/test_bench_batch.py``; they carry a
    ``trials`` count in ``extra_info``, which keeps them out of the
    reference/fast pairing above.
    """
    by_algorithm = {}
    for name, (mean, extra) in means.items():
        algorithm = extra.get("algorithm")
        engine = extra.get("engine")
        if algorithm and engine and "trials" in extra:
            by_algorithm.setdefault(algorithm, {})[engine] = mean
    return {
        algorithm: engines["fast"] / engines["batch"]
        for algorithm, engines in by_algorithm.items()
        if "fast" in engines and "batch" in engines
    }


def exec_overheads(means):
    """workload -> supervised mean / pool mean, for paired exec benches."""
    by_workload = {}
    for name, (mean, extra) in means.items():
        executor = extra.get("executor")
        workload = extra.get("workload")
        if executor and workload:
            by_workload.setdefault(workload, {})[executor] = mean
    return {
        workload: executors["supervised"] / executors["pool"]
        for workload, executors in by_workload.items()
        if "pool" in executors and "supervised" in executors
    }


def service_reports(means):
    """bench name -> extra_info, for service loadgen benchmarks."""
    return {
        name: extra
        for name, (mean, extra) in means.items()
        if extra.get("workload") == "service-loadgen"
    }


def batch_speedups(means):
    """Wall-clock ratios for the gated run-all benches, if present.

    Returns (jobs_line, engine_line) human-readable summaries; either
    may be None when the corresponding benches were not run.
    """
    reference_by_jobs = {}
    fast_serial = None
    cpu_count = None
    for _, (mean, extra) in means.items():
        if "jobs" not in extra:
            continue
        cpu_count = extra.get("cpu_count", cpu_count)
        if extra.get("engine", "reference") == "fast":
            if extra["jobs"] == 1:
                fast_serial = mean
        else:
            reference_by_jobs[extra["jobs"]] = mean
    serial = reference_by_jobs.get(1)
    jobs_line = engine_line = None
    if serial is not None and len(reference_by_jobs) > 1:
        workers = min(jobs for jobs in reference_by_jobs if jobs != 1)
        ratio = serial / reference_by_jobs[workers]
        jobs_line = (
            f"run all: {ratio:.2f}x wall-clock with {workers} jobs "
            f"(host has {cpu_count} CPU(s); parallelism is bounded by "
            f"core count)"
        )
    if serial is not None and fast_serial is not None:
        engine_line = (
            f"run all: {serial / fast_serial:.2f}x wall-clock with the "
            f"fast engine (single process)"
        )
    return jobs_line, engine_line


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh --benchmark-json output")
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_engine.json",
        help="committed baseline run (default: %(default)s)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="absolute floor for every fast-engine speedup "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop below the baseline speedup "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=10.0,
        help="absolute floor for every batch-engine speedup over the "
        "scalar fast engine (default: %(default)s)",
    )
    parser.add_argument(
        "--max-exec-overhead",
        type=float,
        default=0.10,
        help="absolute budget for supervised-executor overhead over the "
        "bare Pool (default: %(default)s)",
    )
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=0.5,
        help="absolute floor for the service bench's cold-cache hit rate "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if _is_leakage_report(args.current) or _is_leakage_report(
        args.baseline
    ):
        if not (
            _is_leakage_report(args.current)
            and _is_leakage_report(args.baseline)
        ):
            print(
                "cannot compare a leakage report against a "
                "pytest-benchmark run; pass matching artifacts"
            )
            return 1
        return check_leakage_drift(args.current, args.baseline)

    current_means = load_means(args.current)
    baseline_means = load_means(args.baseline)
    current = speedups(current_means)
    baseline = speedups(baseline_means)
    current_exec = exec_overheads(current_means)
    baseline_exec = exec_overheads(baseline_means)
    current_service = service_reports(current_means)
    current_batch = batch_engine_speedups(current_means)
    baseline_batch = batch_engine_speedups(baseline_means)
    if (
        not current
        and not current_exec
        and not current_service
        and not current_batch
    ):
        print(
            "no engine, executor, service, or batch benchmarks in the "
            "current run"
        )
        return 1

    failed = False
    for algorithm in sorted(current):
        speedup = current[algorithm]
        line = f"{algorithm}: fast engine speedup {speedup:.2f}x"
        reference = baseline.get(algorithm)
        if reference is not None:
            floor = reference * (1.0 - args.tolerance)
            line += f" (baseline {reference:.2f}x, floor {floor:.2f}x)"
            if speedup < floor:
                line += "  REGRESSION"
                failed = True
        if speedup < args.min_speedup:
            line += f"  BELOW MINIMUM {args.min_speedup:.2f}x"
            failed = True
        print(line)

    for algorithm in sorted(current_batch):
        speedup = current_batch[algorithm]
        line = (
            f"{algorithm}: batch engine speedup {speedup:.2f}x over "
            f"scalar-fast"
        )
        reference = baseline_batch.get(algorithm)
        if reference is not None:
            floor = reference * (1.0 - args.tolerance)
            line += f" (baseline {reference:.2f}x, floor {floor:.2f}x)"
            if speedup < floor:
                line += "  REGRESSION"
                failed = True
        if speedup < args.min_batch_speedup:
            line += f"  BELOW MINIMUM {args.min_batch_speedup:.2f}x"
            failed = True
        print(line)

    for workload in sorted(current_exec):
        overhead = current_exec[workload]
        ceiling = 1.0 + args.max_exec_overhead
        line = (
            f"{workload}: supervised/pool overhead {overhead:.3f}x "
            f"(budget {ceiling:.2f}x"
        )
        reference = baseline_exec.get(workload)
        if reference is not None:
            ceiling = max(ceiling, reference * (1.0 + args.tolerance))
            line += f", baseline {reference:.3f}x, ceiling {ceiling:.2f}x"
        line += ")"
        if overhead > ceiling:
            line += "  REGRESSION"
            failed = True
        print(line)

    for name in sorted(current_service):
        extra = current_service[name]
        hit_rate = extra.get("hit_rate")
        p99_ms = extra.get("p99_ms")
        line = f"{name}: cold hit rate {hit_rate}, p99 {p99_ms} ms"
        if not isinstance(p99_ms, (int, float)) or p99_ms <= 0:
            line += "  P99 NOT RECORDED"
            failed = True
        if (
            not isinstance(hit_rate, (int, float))
            or hit_rate < args.min_hit_rate
        ):
            line += f"  BELOW HIT-RATE FLOOR {args.min_hit_rate:.2f}"
            failed = True
        print(line)

    for line in batch_speedups(current_means):
        if line is not None:
            print(line)

    print("benchmark check:", "FAILED" if failed else "ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
