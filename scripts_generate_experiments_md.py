"""Regenerate EXPERIMENTS.md by running every registered experiment."""
import time
from repro.experiments import EXPERIMENT_REGISTRY

ORDER = ["table1","table2","table4","table5","table6","table7",
         "fig3","fig4","fig5","fig6","fig7","fig8","fig9","fig11",
         "fig13","fig14","fig15",
         "ext_llc","ext_side_channel","ext_randomized_index",
         "ext_multiset","ext_verify_table1","ext_detector",
         "ext_coding","ext_alg2_timesliced","ext_capacity",
         "ext_robustness"]

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure in the paper's evaluation, regenerated on the
simulator substrate (see DESIGN.md for the substitution rationale).
This file is produced by `python scripts_generate_experiments_md.py`;
the same experiments run under `pytest benchmarks/ --benchmark-only`.

Reading guide: each block shows our measured values; `paper:` lines
state what the paper reports for the same quantity.  We reproduce the
*shape* of every result (who wins, by what rough factor, where the
crossovers fall); absolute cycle counts and rates differ because the
substrate is a simulator, not the authors' testbed.

Any experiment here can be re-run with runtime invariant checking:
`python -m repro run <id> --sanitize` wraps every machine in the
proxies of `repro.analysis` (see docs/ANALYSIS.md), turning silent
replacement-state corruption into a structured `InvariantViolation`;
results are bit-identical with the flag on or off.

## Headline comparisons

| Claim | Paper | This reproduction |
|---|---|---|
| Table I, Tree-PLRU Seq 1 random init (1/2/3 iter) | 50.4% / 82.8% / 99.2% | ~49% / ~81% / ~99% |
| Table I, Bit-PLRU plateau (>=8 iters) | 100% (Seq 1) / ~99% (Seq 2) | 100% / ~99% |
| Intel hyper-threaded rate (Ts=6000) | ~480-580 Kbps | ~460-480 Kbps |
| AMD hyper-threaded rate | ~20-25 Kbps | ~19 Kbps |
| Intel time-sliced rate | ~2.4 bps | ~3.8 bps |
| AMD time-sliced rate | ~0.2 bps | ~0.25 bps |
| Time-sliced %1s (send 1 vs 0, d=8) | ~30% vs <5% | ~25% vs ~3% |
| Encode latency ordering | LRU < F+R(L1) << F+R(mem) | 31 < 39 < 227 cycles (E5) |
| Spectre: all 4 disclosure channels recover secret | yes | 100% recovery each |
| Spectre window ablation | LRU needs much smaller window | LRU works at 30 cyc; F+R needs ~250 |
| Fig 9 CPI overhead of FIFO/Random | < 2% | < 0.5% (geomean ~0.1%) |
| Fig 11 PL cache | original leaks; fix -> constant hits | 100% leak; fix -> all hits |
| Fig 13 rdtscp L1-vs-L2 overlap | complete overlap | ~0.97-0.98 overlap |

## Known deviations

* **Time-sliced cycle scale.** Quantum and Tr are scaled by 1e-3
  relative to the paper (ratio preserved); reported rates are converted
  back to paper scale. Simulating 5e8-cycle receiver periods per sample
  in Python is impractical.
* **Two-level hierarchy.** The paper's LLC column appears as our L2:
  the F+R(mem)-vs-LRU contrast is preserved one level up.
* **Secrets are 6-bit** in the Spectre demo (one probe line per L1
  set, set 0 reserved for the chase chain, value 1 for training), vs
  the paper's 63-set byte encoding.
* **Algorithm 2 d-parity.** Our Tree-PLRU simulation shows the even-d
  pathology the paper describes for Fig 4's E5-2690 curves; the clean
  d=4 trace of the paper's Fig 5 needed d=5 here (hardware PLRU details
  differ from textbook Tree-PLRU).
* **Error floors.** The simulator has no OS interrupts; Fig 4's error
  floor is modeled by a configurable noise-event rate (100 events per
  Mcycle) chosen to land in the paper's 0-15% error band.

## Extensions beyond the paper

The `ext_*` blocks below are extensions: the cross-core LLC channel,
the side-channel key recovery, the randomized-indexing defense, the
multi-set parallel channel, the exhaustive Table-I verification, the
detector evaluation, coded transmission, the Algorithm-2 time-sliced
negative result, the capacity analysis, and the fault-intensity
robustness sweep (`repro/faults/`).  See DESIGN.md section 3b.

## Full experiment outputs

"""

parts = [HEADER]
for eid in ORDER:
    start = time.time()
    result = EXPERIMENT_REGISTRY[eid]()
    elapsed = time.time() - start
    parts.append(f"### {eid}\n\n```\n{result.render()}\n```\n")
    parts.append(f"_regenerated in {elapsed:.1f}s_\n")
    print(f"{eid} done in {elapsed:.1f}s")

open("EXPERIMENTS.md", "w").write("\n".join(parts))
print("EXPERIMENTS.md written")
