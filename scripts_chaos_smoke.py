"""Resume-semantics smoke test for the supervised executor.

Usage::

    PYTHONPATH=src python scripts_chaos_smoke.py [--signal-delay 1.2] \
        [--jobs 2] [--ids fig3 table4 fig7 table2]

The end-to-end crash-safety claim, exercised against the *real*
experiment registry with the runtime sanitizer armed (the CI ``chaos``
job runs this on every push; the seeded unit-level chaos suite lives in
``tests/test_experiments/test_chaos.py``):

1. run the batch sequentially, sanitized — the ground truth;
2. run it again through the supervised executor with a checkpoint, and
   deliver SIGINT mid-batch: the run must drain gracefully, report
   itself interrupted with the unfinished ids, and flush every
   completed result to the checkpoint;
3. re-run with the same checkpoint: the batch must complete from where
   it stopped, and the union must be bit-identical to step 1.

Exit code 0 when the re-run reproduces the sequential batch exactly,
1 otherwise.  The interrupt is wall-clock timed, so on a fast machine
the first run may finish before the signal lands; the script reports
that (the resume leg then degenerates to a pure checkpoint-restore
check) but does not fail, because bit-identity is the invariant under
test.
"""

import argparse
import contextlib
import os
import signal
import sys

#: Cheap, registry-real experiments: enough wall-clock under --sanitize
#: for the interrupt to land mid-batch, small enough for a CI smoke.
DEFAULT_IDS = ["fig3", "table4", "fig7", "table2"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ids",
        nargs="+",
        default=DEFAULT_IDS,
        help="experiment ids for the batch (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes for the interrupted run (default: %(default)s)",
    )
    parser.add_argument(
        "--signal-delay",
        type=float,
        default=1.2,
        help="seconds before SIGINT hits the batch (default: %(default)s)",
    )
    parser.add_argument(
        "--checkpoint",
        default="chaos_smoke_checkpoint.json",
        help="checkpoint path for the interrupted run (default: %(default)s)",
    )
    parser.add_argument(
        "--no-sanitize",
        action="store_true",
        help="skip the runtime invariant proxies (faster, weaker smoke)",
    )
    args = parser.parse_args(argv)
    sanitize = not args.no_sanitize

    import repro.experiments  # noqa: F401 - populates the registry
    from repro.experiments.chaos import schedule_signal
    from repro.experiments.runner import ExperimentRunner

    print(f"[1/3] sequential baseline: {' '.join(args.ids)}"
          f" (sanitize={sanitize})")
    baseline = ExperimentRunner(retries=0, sanitize=sanitize).run_many(
        args.ids
    )
    if not baseline.ok:
        print(f"baseline batch failed: {baseline.summary()}")
        return 1
    expected = [result.to_dict() for result in baseline.results]

    # A stale checkpoint would restore everything and dodge the test.
    with contextlib.suppress(FileNotFoundError):
        os.remove(args.checkpoint)

    print(f"[2/3] parallel run with SIGINT after {args.signal_delay:.1f}s "
          f"(jobs={args.jobs}, checkpoint={args.checkpoint})")
    first = ExperimentRunner(
        retries=0,
        sanitize=sanitize,
        checkpoint_path=args.checkpoint,
        heartbeat_interval=0.2,
        drain_timeout=120.0,
    )
    timer = schedule_signal(args.signal_delay, signal.SIGINT)
    try:
        interrupted = first.run_many(args.ids, jobs=args.jobs)
    finally:
        timer.cancel()
    done = sorted(result.experiment_id for result in interrupted.results)
    if interrupted.interrupted:
        print(f"      interrupted as planned; completed {done}, "
              f"unfinished {sorted(interrupted.unfinished)}")
        if not set(interrupted.unfinished) | set(done) == set(args.ids):
            print("completed + unfinished ids do not cover the batch")
            return 1
    else:
        print("      batch outran the signal (fast host); resume leg "
              "degenerates to checkpoint-restore")

    print("[3/3] resumed run with the same checkpoint")
    second = ExperimentRunner(
        retries=0, sanitize=sanitize, checkpoint_path=args.checkpoint
    )
    resumed = second.run_many(args.ids, jobs=args.jobs)
    if not resumed.ok:
        print(f"resumed batch failed: {resumed.summary()}")
        return 1
    if sorted(resumed.resumed) != done:
        print(f"resume restored {sorted(resumed.resumed)}, expected {done}")
        return 1
    actual = [result.to_dict() for result in resumed.results]
    if actual != expected:
        mismatched = [
            fresh["experiment_id"]
            for fresh, reference in zip(actual, expected)
            if fresh != reference
        ]
        print(f"resumed results differ from the sequential baseline: "
              f"{mismatched or 'ordering/count mismatch'}")
        return 1
    with contextlib.suppress(FileNotFoundError):
        os.remove(args.checkpoint)
    print(f"chaos smoke: ok — {len(actual)} experiments bit-identical "
          f"after interrupt and resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
