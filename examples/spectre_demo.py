#!/usr/bin/env python3
"""Spectre v1 with an LRU-state disclosure channel (paper Section VIII).

Demonstrates the paper's transient-execution scenario end to end:

1. a victim runs the classic bounds-check gadget over a secret array;
2. the attacker trains the branch predictor, triggers out-of-bounds
   transient execution, and reads the secret out of the **LRU states**
   of the L1 cache sets — never requiring the victim to miss;
3. the same attack is repeated with the classic Flush+Reload disclosure
   and with a tight speculation window, reproducing the paper's claim
   that the LRU channel needs a far smaller window.

Run:  python examples/spectre_demo.py
"""

from repro.attacks import SpectreConfig, SpectreV1
from repro.sim import INTEL_E5_2690, Machine

# Secret values in [2, 64): one L1 set per value (set 0 hosts the
# pointer-chase chain; value 1 is the training value).
SECRET_MESSAGE = "LRU"
SECRET = [ord(c) % 62 + 2 for c in SECRET_MESSAGE]


def run_attack(disclosure: str, window: float) -> None:
    machine = Machine(INTEL_E5_2690, rng=7)
    attack = SpectreV1(
        machine,
        SECRET,
        disclosure=disclosure,
        config=SpectreConfig(rounds=4, speculation_window=window),
        rng=13,
    )
    result = attack.recover()
    ok = result.recovered == SECRET
    print(
        f"  {disclosure:16s} window={window:4.0f}: "
        f"recovered {result.recovered} "
        f"{'== secret OK' if ok else f'!= secret {SECRET}'}"
    )
    l1 = machine.l1.counters.miss_rate(None)
    l2 = machine.l2.counters.miss_rate(None)
    print(f"  {'':16s} attack miss rates: L1D {l1:.2%}, L2 {l2:.2%}")


def main() -> None:
    print(f"secret values: {SECRET}  (from {SECRET_MESSAGE!r})")

    print("\nWide speculation window (~400 cycles): everything works")
    for disclosure in ("flush_reload", "lru_alg1", "lru_alg2"):
        run_attack(disclosure, window=400)

    print(
        "\nTight speculation window (40 cycles): only the hit-encoding\n"
        "LRU channel still completes inside the transient window"
    )
    run_attack("flush_reload", window=40)
    run_attack("lru_alg1", window=40)

    print(
        "\nWhy: the F+R disclosure access must miss to memory (~200\n"
        "cycles) inside the window, while the LRU disclosure access is\n"
        "an L1 hit (~4 cycles) whose replacement-state side effect is\n"
        "what the attacker reads (paper Table V)."
    )


if __name__ == "__main__":
    main()
