#!/usr/bin/env python3
"""LRU *side* channel: stealing a key from a benign victim.

The paper's covert-channel evaluation uses a cooperating sender; its
threat model (Section III) also covers the side-channel case, where
"the sender is benign, but the process happens to modify the LRU states
based on some secret information".  This example plays that scenario
out against the canonical victim of the cache-attack literature — a
cipher whose first-round table lookup indexes with plaintext XOR key —
and then shows the cross-core LLC variant of the channel.

Run:  python examples/side_channel_demo.py
"""

import random

from repro.attacks import LRUSideChannelAttack, TableLookupVictim
from repro.cache import CacheConfig, CacheHierarchy, MultiCoreConfig, MultiCoreSystem
from repro.channels import LLCChannel
from repro.sim import INTEL_E5_2690


def key_recovery_section() -> None:
    print("== Recovering a 6-bit key chunk from table lookups ==")
    secret_key = 0b101101  # 45
    hierarchy = CacheHierarchy(INTEL_E5_2690.hierarchy, rng=4)
    victim = TableLookupVictim(hierarchy, key=secret_key)
    attack = LRUSideChannelAttack(hierarchy, target_set=5, rng=11)
    result = attack.recover_key(victim, encryptions=256)
    print(f"  victim's secret key chunk : {secret_key:#08b}")
    print(f"  attacker recovered        : {result.recovered_key:#08b}")
    print(
        f"  vote confidence {result.confidence():.0%} over "
        f"{result.observations} observed encryptions"
    )
    # The stealth angle: the victim's lookups are hits except where the
    # attacker applies pressure.
    victim_miss_rate = hierarchy.l1.counters.miss_rate(1)
    print(f"  victim L1D miss rate while being attacked: {victim_miss_rate:.2%}\n")


def llc_channel_section() -> None:
    print("== Cross-core variant: the channel moves to the shared LLC ==")
    message_rng = random.Random(3)
    message = [message_rng.randrange(2) for _ in range(32)]
    for policy in ("lru", "tree-plru", "srrip", "random"):
        llc = CacheConfig(
            name="LLC", size=2 * 1024 * 1024, ways=16, line_size=64,
            policy=policy, hit_latency=40.0,
        )
        system = MultiCoreSystem(MultiCoreConfig(llc=llc), rng=5)
        channel = LLCChannel(system, target_set=3, rng=7)
        run = channel.transfer(message)
        note = "" if run.accuracy() > 0.85 else "  (~chance: policy-swap defense)"
        print(
            f"  LLC policy {policy:10s}: accuracy {run.accuracy():5.1%}, "
            f"sender private misses {run.sender_private_misses}{note}"
        )
    print(
        "\n  Takeaways: (1) sender and receiver no longer share a core —\n"
        "  only a socket; (2) the sender now pays L1/L2 misses per encode\n"
        "  (the L1 channel's stealth advantage, Section III); (3) the\n"
        "  paper's policy-swap defense works one level down too: SRRIP\n"
        "  or random replacement in the LLC drops the channel to chance."
    )


def main() -> None:
    key_recovery_section()
    llc_channel_section()


if __name__ == "__main__":
    main()
