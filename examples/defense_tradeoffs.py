#!/usr/bin/env python3
"""Cost/benefit of swapping the L1 replacement policy (Section IX-A).

The cheapest mitigation the paper proposes is to stop using LRU-family
replacement in the L1D.  This example quantifies both halves of the
trade:

* **benefit** — with FIFO or random replacement, a hit-only sender
  leaves no trace in replacement state (the channel's premise is gone);
* **cost** — L1D miss rate and CPI across SPEC-like workloads change by
  well under the paper's 2% bound.

Run:  python examples/defense_tradeoffs.py
"""

import dataclasses

from repro.cache.hierarchy import CacheHierarchy
from repro.channels import SharedMemoryLRUChannel
from repro.defenses import compare_policies, geometric_mean_overhead
from repro.sim import INTEL_E5_2690


def security_half() -> None:
    print("== Benefit: does a hit-only sender perturb the next victim? ==")
    base = INTEL_E5_2690.hierarchy
    for policy in ("tree-plru", "fifo", "random"):
        l1 = dataclasses.replace(base.l1, policy=policy)
        config = dataclasses.replace(base, l1=l1)
        changed = 0
        trials = 40
        for seed in range(trials):
            hierarchy = CacheHierarchy(config, rng=seed)
            channel = SharedMemoryLRUChannel.build(l1, 1, d=8)
            hierarchy.load(channel.probe_address, count=False)
            for address in channel.init_addresses():
                hierarchy.load(address)
            target_set = hierarchy.l1.set_for(channel.probe_address)
            before = target_set.policy.state_snapshot()
            # The sender's encode: one guaranteed cache *hit*.
            hierarchy.load(
                channel.layout.sender_line, thread_id=1, address_space=1
            )
            if target_set.policy.state_snapshot() != before:
                changed += 1
        print(
            f"  {policy:10s}: sender hit changed replacement state in "
            f"{changed}/{trials} trials"
        )
    print(
        "  -> LRU-family state moves on every hit (the leak); FIFO and\n"
        "     random replacement are inert to hits.\n"
    )


def performance_half() -> None:
    print("== Cost: miss rate / CPI over SPEC-like workloads ==")
    comparison = compare_policies(length=15_000, warmup=2_500, rng=5)
    print(f"  {'workload':12s} {'PLRU miss':>10s} {'FIFO CPI':>9s} {'Rand CPI':>9s}")
    for row in comparison.for_policy("tree-plru"):
        fifo = comparison.normalized_cpi(row.workload, "fifo")
        rand = comparison.normalized_cpi(row.workload, "random")
        print(
            f"  {row.workload:12s} {row.l1_miss_rate:10.2%} "
            f"{fifo:9.4f} {rand:9.4f}"
        )
    for policy in ("fifo", "random"):
        overhead = geometric_mean_overhead(comparison, policy)
        print(
            f"  geometric-mean CPI overhead for {policy}: "
            f"{(overhead - 1) * 100:+.2f}%  (paper bound: <2%)"
        )


def main() -> None:
    security_half()
    performance_half()


if __name__ == "__main__":
    main()
