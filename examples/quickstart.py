#!/usr/bin/env python3
"""Quickstart: send one byte over the LRU covert channel.

This is the smallest end-to-end use of the library: build a simulated
Intel machine, set up the paper's Algorithm 1 (shared-memory LRU
channel), transmit a byte between two hyper-threads, and decode it from
the receiver's timing observations.

Run:  python examples/quickstart.py
"""

from repro.channels import (
    CovertChannelProtocol,
    ProtocolConfig,
    SharedMemoryLRUChannel,
    runlength_decode,
    sample_bits,
)
from repro.common import threshold_trace
from repro.sim import INTEL_E5_2690, Machine


def main() -> None:
    # A simulated Intel Xeon E5-2690 (the paper's main platform):
    # 32 KiB 8-way L1D with Tree-PLRU, 256 KiB L2, cycle-true latencies.
    machine = Machine(INTEL_E5_2690, rng=2024)

    # Algorithm 1: sender and receiver share "line 0" (e.g. a line in a
    # shared library).  d=8 puts the whole initialization before the
    # sender's slot, the paper's best setting.
    channel = SharedMemoryLRUChannel.build(
        machine.spec.hierarchy.l1, target_set=1, d=8
    )

    # Algorithm 3 timing: the sender holds each bit for Ts=6000 cycles
    # (~630 Kbps nominal at 3.8 GHz); the receiver samples every Tr=600.
    protocol = CovertChannelProtocol(
        machine, channel, ProtocolConfig(ts=6000, tr=600)
    )

    secret_byte = 0b10110010
    message = [(secret_byte >> (7 - i)) & 1 for i in range(8)]
    print(f"sender transmits: {''.join(map(str, message))}")

    run = protocol.run_hyper_threaded(message)
    print(
        f"receiver took {len(run.observations)} timing observations "
        f"(threshold {run.threshold:.0f} cycles)"
    )

    # The receiver's raw view: low latency = line 0 survived = bit 1.
    print("receiver trace (^ marks misses / bit 0):")
    print(threshold_trace(run.latencies(), run.threshold, width=80))

    # Decode: threshold each observation, then collapse the oversampled
    # stream (Ts/Tr = 10 samples per bit) into message bits.
    bits = sample_bits(run)
    decoded = runlength_decode(bits, samples_per_bit=10)[: len(message)]
    print(f"receiver decodes: {''.join(map(str, decoded))}")

    recovered = sum(b << (7 - i) for i, b in enumerate(decoded))
    status = "OK" if recovered == secret_byte else "MISMATCH"
    print(f"recovered byte: 0b{recovered:08b} ({status})")

    # The stealth property (paper Table VI): the sender never missed.
    sender_miss_rate = machine.l1.counters.miss_rate(1)
    print(f"sender L1D miss rate during transfer: {sender_miss_rate:.2%}")


if __name__ == "__main__":
    main()
