#!/usr/bin/env python3
"""Evaluating secure caches against the LRU channel (paper Section IX-B).

Reproduces the paper's security analysis of existing secure-cache
designs:

* the original Partition-Locked (PL) cache protects *data* but leaks
  through the *replacement state* of locked lines;
* the hardened PL design (LRU state locked too) closes the channel;
* InvisiSpec-style invisible speculation stops the transient variant;
* DAWG-style replacement-state partitioning isolates domains.

Run:  python examples/secure_cache_eval.py
"""

from repro.attacks import SpectreConfig, SpectreV1
from repro.channels import random_message
from repro.defenses import run_pl_cache_attack
from repro.replacement import PartitionedPLRU, TreePLRU
from repro.sim import INTEL_E5_2690, Machine


def pl_cache_section() -> None:
    print("== PL cache (Wang & Lee) under the locked-line LRU attack ==")
    message = random_message(96, rng=3)
    for lock_lru, label in ((False, "original design"), (True, "hardened design")):
        trace = run_pl_cache_attack(lock_lru, message, rng=4)
        print(
            f"  {label:16s}: leak accuracy {trace.leak_accuracy():5.1%}, "
            f"probe misses {sum(trace.decoded_bits):3d}/{len(message)}, "
            f"all-hits trace: {trace.all_hits()}"
        )
    print(
        "  -> locking the line is not enough; the LRU state must be\n"
        "     locked too (the paper's Figure 10 blue boxes / Figure 11).\n"
    )


def invisispec_section() -> None:
    print("== InvisiSpec-style invisible speculation vs Spectre+LRU ==")
    secret = [7, 42, 13]
    for invisible in (False, True):
        machine = Machine(
            INTEL_E5_2690, rng=5, invisible_speculation=invisible
        )
        attack = SpectreV1(
            machine, secret, disclosure="lru_alg1",
            config=SpectreConfig(rounds=3), rng=9,
        )
        accuracy = attack.recover().accuracy(secret)
        mode = "invisible speculation ON " if invisible else "baseline (no defense)"
        print(f"  {mode}: secret recovery {accuracy:5.1%}")
    print(
        "  -> deferring all microarchitectural updates (including LRU\n"
        "     state) past speculation closes the transient channel.\n"
    )


def dawg_section() -> None:
    print("== DAWG-style replacement-state partitioning ==")
    # Two domains share an 8-way set.  The attacker (domain 0) hammers
    # its ways; the victim's (domain 1) replacement decisions must not
    # move at all.
    shared = TreePLRU(8)
    partitioned = PartitionedPLRU(8, {0: 4, 1: 4})
    for way in (4, 5, 6, 7):  # victim establishes its state
        shared.touch(way)
        partitioned.touch(way)
    shared_before = shared.victim()
    part_before = partitioned.victim_for(1)
    for way in (0, 1, 2, 3, 0, 2):  # attacker activity
        shared.touch(way)
        partitioned.touch(way)
    print(
        f"  shared Tree-PLRU:      victim way {shared_before} -> "
        f"{shared.victim()} (attacker-visible change: "
        f"{shared_before != shared.victim()})"
    )
    print(
        f"  partitioned (DAWG):    victim way {part_before} -> "
        f"{partitioned.victim_for(1)} (attacker-visible change: "
        f"{part_before != partitioned.victim_for(1)})"
    )
    print(
        "  -> partitioning the ways alone is insufficient; DAWG also\n"
        "     partitions the PLRU tree, which is what isolates domains."
    )


def main() -> None:
    pl_cache_section()
    invisispec_section()
    dawg_section()


if __name__ == "__main__":
    main()
