#!/usr/bin/env python3
"""Full covert-channel tour: both algorithms, both sharing modes, AMD.

Walks through the paper's Sections V and VI:

1. Algorithm 1 (shared memory) and Algorithm 2 (no shared memory) under
   hyper-threaded sharing on the Intel Xeon E5-2690, with error rates
   scored by Wagner-Fischer edit distance;
2. time-sliced sharing, where the receiver distinguishes bits by the
   fraction of 1s across samples;
3. the AMD EPYC 7571, where the coarse timestamp counter forces
   moving-average decoding and an order-of-magnitude lower rate.

Run:  python examples/covert_channel_demo.py
"""

from repro.channels import (
    CovertChannelProtocol,
    NoSharedMemoryLRUChannel,
    ProtocolConfig,
    SharedMemoryLRUChannel,
    evaluate_hyper_threaded,
    moving_average_decode,
    percent_ones,
    random_message,
)
from repro.common.editdist import channel_error_rate
from repro.sim import AMD_EPYC_7571, INTEL_E5_2690, Machine


def intel_hyper_threaded() -> None:
    print("== Intel E5-2690, hyper-threaded sharing (Section V-A) ==")
    message = random_message(128, rng=7)
    for builder, d, label in (
        (SharedMemoryLRUChannel, 8, "Algorithm 1 (shared memory)"),
        (NoSharedMemoryLRUChannel, 5, "Algorithm 2 (no shared mem)"),
    ):
        machine = Machine(INTEL_E5_2690, rng=42)
        channel = builder.build(machine.spec.hierarchy.l1, 1, d=d)
        evaluation = evaluate_hyper_threaded(
            machine, channel,
            ProtocolConfig(ts=6000, tr=600, noise_events_per_mcycle=50),
            message, repeats=2,
        )
        print(
            f"  {label}: {evaluation.transmission_rate_kbps:6.0f} Kbps, "
            f"edit-distance error {evaluation.error_rate:6.2%}"
        )
    print()


def intel_time_sliced() -> None:
    print("== Intel E5-2690, time-sliced sharing (Section V-B) ==")
    print("  (cycle counts scaled 1e-3 vs the paper; ratios preserved)")
    for bit in (0, 1):
        machine = Machine(INTEL_E5_2690, rng=3)
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=8
        )
        protocol = CovertChannelProtocol(
            machine, channel, ProtocolConfig(ts=1e6, tr=1e5)
        )
        run = protocol.run_time_sliced(
            bit, samples=60, quantum=4e4, noise_processes=1
        )
        print(f"  sender sends constant {bit}: receiver sees "
              f"{percent_ones(run):5.1%} ones")
    print("  -> bits are distinguished by the fraction of 1s; rate ~bps.\n")


def amd_hyper_threaded() -> None:
    print("== AMD EPYC 7571, hyper-threaded (Section VI) ==")
    machine = Machine(AMD_EPYC_7571, rng=17)
    channel = SharedMemoryLRUChannel.build(machine.spec.hierarchy.l1, 1, d=8)
    # Same-address-space threads (pthreads): the AMD way predictor
    # defeats cross-process shared-memory probing.
    protocol = CovertChannelProtocol(
        machine, channel,
        ProtocolConfig(ts=1e5, tr=1e3, sender_space=0),
    )
    message = [i % 2 for i in range(10)]
    run = protocol.run_hyper_threaded(message)
    latencies = run.latencies()
    decoded = moving_average_decode(
        latencies, samples_per_bit_hint=100, hit_means_one=True
    )
    error = channel_error_rate(message, decoded[: len(message)])
    rate_kbps = AMD_EPYC_7571.bits_per_second(
        len(message), run.total_cycles
    ) / 1000.0
    print(
        f"  Algorithm 1 via pthreads: {rate_kbps:5.1f} Kbps effective, "
        f"moving-average decode error {error:5.1%}"
    )
    print(
        "  -> coarse TSC readout forces averaging: an order of magnitude\n"
        "     slower than Intel, matching the paper's ~20 Kbps."
    )


def main() -> None:
    intel_hyper_threaded()
    intel_time_sliced()
    amd_hyper_threaded()


if __name__ == "__main__":
    main()
