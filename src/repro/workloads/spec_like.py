"""SPEC-CPU2006-like named workloads (substitute for Figure 9's inputs).

The paper runs SPEC CPU2006 int and float benchmarks in GEM5.  SPEC
itself is proprietary, so — per the substitution policy in DESIGN.md —
each named workload here is a synthetic mix whose locality profile
mirrors the published cache behaviour of the corresponding benchmark
(working-set size relative to a 32-64 KiB L1D, stream-vs-reuse mix,
pointer-chasing fraction).  What Figure 9 needs from these inputs is
only that they span the spectrum from policy-insensitive (streaming,
tiny working sets) to policy-sensitive (working sets near L1 capacity),
which this family does by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.common.rng import RngLike, make_rng, spawn_rng
from repro.workloads.synthetic import (
    mixed_stream,
    pointer_chase_stream,
    sequential_stream,
    working_set_loop,
    zipf_stream,
)


@dataclass(frozen=True)
class WorkloadProfile:
    """Locality profile of one named workload.

    Attributes:
        name: SPEC-like benchmark name.
        working_set_lines: Hot working set in cache lines (64 B each).
            512 lines = 32 KiB = exactly one L1D.
        stream_fraction: Share of accesses that are streaming (no reuse).
        chase_fraction: Share that are dependent pointer chases.
        zipf_alpha: Skew of the reused portion (higher = hotter head).
    """

    name: str
    working_set_lines: int
    stream_fraction: float
    chase_fraction: float
    zipf_alpha: float = 1.0

    def generate(self, length: int, rng: RngLike = None) -> Iterator[int]:
        """Yield ``length`` byte addresses with this profile."""
        r = make_rng(rng)
        reuse_fraction = max(0.0, 1.0 - self.stream_fraction - self.chase_fraction)
        # Component address ranges are disjoint so streams never alias.
        components = [
            zipf_stream(
                length,
                self.working_set_lines,
                alpha=self.zipf_alpha,
                base=0,
                rng=spawn_rng(r, "zipf"),
            ),
            sequential_stream(length, base=1 << 28),
            pointer_chase_stream(
                length,
                # The chase working set tracks (and slightly exceeds)
                # the hot set: this is where replacement policy bites.
                max(16, int(self.working_set_lines * 1.2)),
                base=1 << 29,
                rng=spawn_rng(r, "chase"),
            ),
        ]
        weights = [reuse_fraction, self.stream_fraction, self.chase_fraction]
        return mixed_stream(components, weights, length, rng=spawn_rng(r, "mix"))


#: Twelve profiles spanning SPEC 2006's locality spectrum.  Working-set
#: sizes and mix fractions follow the qualitative characterizations in
#: the SPEC CPU2006 cache-behaviour literature (Jaleel's memory
#: characterization): e.g. mcf/omnetpp pointer-heavy with large sets,
#: libquantum/lbm streaming, hmmer/h264ref small hot sets.
SPEC_LIKE_PROFILES: List[WorkloadProfile] = [
    WorkloadProfile("bzip2", working_set_lines=640, stream_fraction=0.10, chase_fraction=0.01, zipf_alpha=1.6),
    WorkloadProfile("gcc", working_set_lines=768, stream_fraction=0.10, chase_fraction=0.02, zipf_alpha=1.4),
    WorkloadProfile("mcf", working_set_lines=1536, stream_fraction=0.05, chase_fraction=0.22, zipf_alpha=1.1),
    WorkloadProfile("gobmk", working_set_lines=512, stream_fraction=0.08, chase_fraction=0.01, zipf_alpha=1.4),
    WorkloadProfile("hmmer", working_set_lines=96, stream_fraction=0.06, chase_fraction=0.00, zipf_alpha=1.5),
    WorkloadProfile("sjeng", working_set_lines=448, stream_fraction=0.05, chase_fraction=0.01, zipf_alpha=1.5),
    WorkloadProfile("libquantum", working_set_lines=64, stream_fraction=0.90, chase_fraction=0.00, zipf_alpha=1.5),
    WorkloadProfile("h264ref", working_set_lines=160, stream_fraction=0.12, chase_fraction=0.01, zipf_alpha=1.5),
    WorkloadProfile("omnetpp", working_set_lines=1024, stream_fraction=0.05, chase_fraction=0.08, zipf_alpha=1.2),
    WorkloadProfile("astar", working_set_lines=896, stream_fraction=0.05, chase_fraction=0.06, zipf_alpha=1.2),
    WorkloadProfile("milc", working_set_lines=512, stream_fraction=0.70, chase_fraction=0.01, zipf_alpha=1.4),
    WorkloadProfile("lbm", working_set_lines=128, stream_fraction=0.85, chase_fraction=0.00, zipf_alpha=1.5),
]

PROFILES_BY_NAME: Dict[str, WorkloadProfile] = {
    p.name: p for p in SPEC_LIKE_PROFILES
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by benchmark name."""
    if name not in PROFILES_BY_NAME:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(PROFILES_BY_NAME)}"
        )
    return PROFILES_BY_NAME[name]
