"""Synthetic address-stream generators.

The defense evaluation (Figure 9) needs workloads whose miss rates react
to the L1 replacement policy the way real programs do.  Replacement
policy only matters for access streams with *reuse at intermediate
distances* — purely streaming or tiny-working-set code is policy
insensitive — so the generators here are parameterized by working-set
size, stride, and reuse-distance distribution.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import RngLike, make_rng


def sequential_stream(
    length: int, line_size: int = 64, base: int = 0, step: int = 8
) -> Iterator[int]:
    """A streaming scan with word-granular spatial locality.

    Models streaming kernels (e.g. ``libquantum``/``lbm``-style loops):
    a new line is touched only every ``line_size / step`` accesses, so
    the intrinsic L1 miss rate of the stream is ``step / line_size``
    (1/8 for 8-byte words in 64-byte lines) — matching how real
    streaming code behaves, rather than missing on every access.
    """
    if step < 1:
        raise ConfigurationError(f"step must be >= 1, got {step}")
    for i in range(length):
        yield base + i * step


def strided_stream(
    length: int, stride_lines: int, line_size: int = 64, base: int = 0
) -> Iterator[int]:
    """A constant-stride scan, as produced by column-major array walks."""
    if stride_lines < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride_lines}")
    for i in range(length):
        yield base + i * stride_lines * line_size


def working_set_loop(
    length: int,
    working_set_lines: int,
    line_size: int = 64,
    base: int = 0,
) -> Iterator[int]:
    """Cyclic sweep over a fixed working set.

    When the working set slightly exceeds a cache's capacity this is the
    worst case for LRU (every access misses) and the best case for
    random replacement — the classic policy-sensitivity kernel.
    """
    if working_set_lines < 1:
        raise ConfigurationError("working set must have >= 1 line")
    for i in range(length):
        yield base + (i % working_set_lines) * line_size


def zipf_stream(
    length: int,
    working_set_lines: int,
    alpha: float = 1.0,
    line_size: int = 64,
    base: int = 0,
    rng: RngLike = None,
) -> Iterator[int]:
    """Zipf-distributed accesses over a working set.

    Skewed popularity (hot lines reused constantly, long cold tail) is
    the canonical model of pointer-heavy integer code (``gcc``,
    ``omnetpp``-style behaviour).
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be > 0, got {alpha}")
    r = make_rng(rng)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(working_set_lines)]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    for _ in range(length):
        u = r.random()
        # Binary search over the cumulative distribution.
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        yield base + lo * line_size


def pointer_chase_stream(
    length: int,
    working_set_lines: int,
    line_size: int = 64,
    base: int = 0,
    rng: RngLike = None,
) -> Iterator[int]:
    """A random permutation walk: dependent, unpredictable accesses.

    Models linked-data-structure traversal (``mcf``/``astar``-style).
    The permutation is fixed per stream, so revisits reuse lines with a
    reuse distance equal to the working-set size.
    """
    r = make_rng(rng)
    order = list(range(working_set_lines))
    r.shuffle(order)
    position = 0
    for _ in range(length):
        yield base + order[position] * line_size
        position = (position + 1) % working_set_lines


def mixed_stream(
    components: Sequence[Iterator[int]],
    weights: Sequence[float],
    length: int,
    rng: RngLike = None,
) -> Iterator[int]:
    """Interleave several streams with given selection probabilities.

    Real programs alternate phases; mixing streams produces the
    irregular reuse-distance spectra that separate PLRU from FIFO and
    random replacement in Figure 9.
    """
    if len(components) != len(weights):
        raise ConfigurationError("components and weights must align")
    if not components:
        raise ConfigurationError("need at least one component")
    total = sum(weights)
    if total <= 0:
        raise ConfigurationError("weights must sum to a positive value")
    r = make_rng(rng)
    normalized = [w / total for w in weights]
    iterators = [iter(c) for c in components]
    emitted = 0
    while emitted < length:
        u = r.random()
        acc = 0.0
        chosen = iterators[-1]
        for it, w in zip(iterators, normalized):
            acc += w
            if u <= acc:
                chosen = it
                break
        try:
            yield next(chosen)
            emitted += 1
        except StopIteration:
            # Exhausted component: drop it and renormalize.
            position = iterators.index(chosen)
            iterators.pop(position)
            normalized.pop(position)
            if not iterators:
                return
            scale = sum(normalized)
            normalized = [w / scale for w in normalized]
