"""Workload generation: synthetic streams and SPEC-like profiles.

Supplies the address traces for the defense evaluation (Figure 9) and
for the benign-contention baselines of Table VI.
"""

from repro.workloads.spec_like import (
    PROFILES_BY_NAME,
    SPEC_LIKE_PROFILES,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.synthetic import (
    mixed_stream,
    pointer_chase_stream,
    sequential_stream,
    strided_stream,
    working_set_loop,
    zipf_stream,
)
from repro.workloads.trace import ReplayStats, record, replay

__all__ = [
    "PROFILES_BY_NAME",
    "ReplayStats",
    "SPEC_LIKE_PROFILES",
    "WorkloadProfile",
    "get_profile",
    "mixed_stream",
    "pointer_chase_stream",
    "record",
    "replay",
    "sequential_stream",
    "strided_stream",
    "working_set_loop",
    "zipf_stream",
]
