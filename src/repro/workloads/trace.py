"""Address-trace capture and replay against a cache hierarchy.

``replay`` is the workhorse of the defense evaluation: it drives an
address stream through a hierarchy and reports per-level miss rates,
which the CPI model then converts into the paper's Figure 9 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.cache.hierarchy import CacheHierarchy
from repro.common.types import CacheLevel


@dataclass
class ReplayStats:
    """Per-level outcome counts for one trace replay."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    memory_accesses: int = 0
    total_latency: float = 0.0

    @property
    def l1_miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.l1_hits / self.accesses

    @property
    def l2_miss_rate(self) -> float:
        """Local L2 miss ratio: memory accesses / L2 references."""
        l2_refs = self.accesses - self.l1_hits
        if l2_refs == 0:
            return 0.0
        return self.memory_accesses / l2_refs

    @property
    def average_latency(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.total_latency / self.accesses


def replay(
    hierarchy: CacheHierarchy,
    addresses: Iterable[int],
    thread_id: int = 0,
    address_space: int = 0,
    warmup: int = 0,
) -> ReplayStats:
    """Drive an address stream through a hierarchy and tally outcomes.

    Args:
        hierarchy: The memory system under test.
        addresses: Byte addresses, in program order.
        thread_id / address_space: Identity of the synthetic program.
        warmup: Number of initial accesses excluded from the statistics
            (cold-start misses are not what Figure 9 measures).
    """
    stats = ReplayStats()
    for position, address in enumerate(addresses):
        outcome = hierarchy.load(
            address,
            thread_id=thread_id,
            address_space=address_space,
            count=position >= warmup,
        )
        if position < warmup:
            continue
        stats.accesses += 1
        stats.total_latency += outcome.latency
        if outcome.hit_level == CacheLevel.L1:
            stats.l1_hits += 1
        elif outcome.hit_level == CacheLevel.L2:
            stats.l2_hits += 1
        else:
            stats.memory_accesses += 1
    return stats


def record(addresses: Iterable[int], limit: int) -> List[int]:
    """Materialize a bounded prefix of a stream for repeatable replay."""
    trace: List[int] = []
    iterator: Iterator[int] = iter(addresses)
    for _ in range(limit):
        try:
            trace.append(next(iterator))
        except StopIteration:
            break
    return trace
