"""A simulated hardware/software thread.

Wraps a generator-based program with its identity (thread id, address
space) and its scheduling state (the cycle at which it can next issue).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.common.errors import SimulationError

#: A thread program: a generator yielding operations from
#: :mod:`repro.sim.ops` and receiving each operation's result.
Program = Generator


class SimThread:
    """One schedulable instruction stream.

    Args:
        name: Human-readable label for traces and errors.
        program_factory: Zero-argument callable returning a fresh
            program generator.  Factories (rather than generators) let a
            thread be restarted for repeated experiment trials.
        thread_id: Identity used for performance counters.
        address_space: Virtual address space id; threads of one process
            share a space (pthread senders in Section VI-B), separate
            processes do not.
    """

    def __init__(
        self,
        name: str,
        program_factory: Callable[[], Program],
        thread_id: int = 0,
        address_space: int = 0,
    ):
        self.name = name
        self.program_factory = program_factory
        self.thread_id = thread_id
        self.address_space = address_space
        self.ready_at: float = 0.0
        self.alive = False
        self.pending_result: Any = None
        self._program: Optional[Program] = None

    def start(self, at_cycle: float = 0.0) -> None:
        """(Re)start the program from the beginning."""
        self._program = self.program_factory()
        self.ready_at = at_cycle
        self.alive = True
        self.pending_result = None

    def next_operation(self):
        """Advance the program one step, delivering the prior result.

        Returns the next operation, or None when the program finished.
        """
        if not self.alive or self._program is None:
            raise SimulationError(f"thread {self.name!r} is not running")
        try:
            op = self._program.send(self.pending_result)
        except StopIteration:
            self.alive = False
            return None
        self.pending_result = None
        return op

    def deliver(self, result: Any) -> None:
        """Stash an operation's result for the next program step."""
        self.pending_result = result

    def __repr__(self) -> str:
        state = "alive" if self.alive else "stopped"
        return (
            f"SimThread({self.name!r}, tid={self.thread_id}, "
            f"as={self.address_space}, ready_at={self.ready_at:.0f}, {state})"
        )
