"""Fast-path simulation engine: table-driven sets, cached geometry.

The reference engine (``repro.cache``) executes each replacement policy
as a Python state machine and rediscovers the cache geometry (log2 of
line size and set count) on every access.  This module keeps the exact
control flow but removes the interpretive overhead:

* replacement policies become :class:`~repro.replacement.tables.TabledPolicy`
  instances — one interned int of state per set, transitions by table
  lookup (see ``repro.replacement.tables``);
* ``CacheSet.lookup``'s linear tag scan becomes a dict probe
  (:class:`FastCacheSet` maintains a tag -> way map across installs and
  invalidations);
* address decomposition uses shift/mask constants computed once at
  construction instead of per-access ``log2`` properties.

Policies that cannot be table-compiled (``random`` draws from an RNG
stream, ``partitioned-plru`` is domain-aware) silently fall back to
their reference implementations — still inside a :class:`FastCacheSet`,
so the tag-map speedup applies regardless.

Engine selection: :class:`~repro.sim.machine.Machine`,
:class:`~repro.cache.hierarchy.CacheHierarchy` and the CLI accept
``engine="fast" | "reference" | "batch"``; the process-wide default
lives in the ``REPRO_ENGINE`` environment variable so it propagates to
``multiprocessing`` workers under both fork and spawn start methods.
The reference engine stays the oracle: ``tests/test_perf`` drives both
engines over identical traces and requires bit-identical behaviour.

The ``batch`` engine (:mod:`repro.sim.batch`) is a superset of the fast
engine: scalar machines built under it use the fast cache classes
unchanged, and multi-trial entry points
(:meth:`~repro.experiments.runner.ExperimentRunner.run_trials`, the
CLI's ``run --trials N``, the service's multi-trial ``run`` op)
additionally vectorize the per-trial axis over numpy arrays.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.cache.cache import FillResult, LookupResult, SetAssociativeCache
from repro.cache.cache_set import CacheSet
from repro.cache.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.common.rng import RngLike
from repro.common.types import AccessType, MemoryAccess
from repro.replacement.tables import TABLEABLE_POLICIES, TabledPolicy

#: Recognised engine names.
ENGINES = ("reference", "fast", "batch")

#: Environment variable holding the process-wide default engine.
ENGINE_ENV = "REPRO_ENGINE"


def default_engine() -> str:
    """The process-wide default engine (``reference`` unless overridden)."""
    return os.environ.get(ENGINE_ENV, "reference")


def set_default_engine(engine: Optional[str]) -> None:
    """Set (or, with None, clear) the process-wide default engine.

    Stored in the environment rather than a module global so pool
    workers inherit it under both fork and spawn start methods.
    """
    if engine is None:
        os.environ.pop(ENGINE_ENV, None)
        return
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    os.environ[ENGINE_ENV] = engine


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an explicit engine choice or fall back to the default."""
    if engine is None:
        engine = default_engine()
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    return engine


class FastCacheSet(CacheSet):
    """Cache set with an O(1) tag -> way map instead of a linear scan.

    The map is maintained by the install/invalidate mutations, which are
    the only operations that change tag residency.  Behaviour is
    bit-identical to :class:`~repro.cache.cache_set.CacheSet`: resident
    tags are unique (enforced by the cache control flow and checked by
    the sanitizer), so the map and the scan agree on every lookup.
    """

    __slots__ = ("_tag_map",)

    def __init__(self, ways: int, policy):
        super().__init__(ways, policy)
        self._tag_map: Dict[int, int] = {}

    def lookup(self, tag: int) -> Optional[int]:
        return self._tag_map.get(tag)

    def _install_line(
        self, way: int, tag: int, address: int, dirty: bool = False
    ) -> Optional[int]:
        # Body of CacheSet._install_line inlined (fills are the second
        # hottest operation), plus the map maintenance.
        tag_map = self._tag_map
        line = self.lines[way]
        if line.valid:
            evicted = line.address
            if tag_map.get(line.tag) == way:
                del tag_map[line.tag]
        else:
            evicted = None
        line.tag = tag
        line.valid = True
        line.dirty = dirty
        line.locked = False
        line.utag = None
        line.address = address
        tag_map[tag] = way
        return evicted

    def invalidate_tag(self, tag: int) -> Optional[int]:
        way = self._tag_map.pop(tag, None)
        if way is None:
            return None
        self.lines[way].invalidate()
        self.policy.invalidate(way)
        return way


class FastSetAssociativeCache(SetAssociativeCache):
    """Set-associative cache using tabled policies and cached geometry.

    Drop-in subclass of :class:`~repro.cache.cache.SetAssociativeCache`;
    only construction hooks and the address/lookup hot path differ.
    When the way predictor is active or a subclass overrides a hit-path
    hook, ``lookup`` defers to the reference control flow so the hooks
    keep their exact semantics.
    """

    def __init__(
        self,
        config: CacheConfig,
        rng: RngLike = None,
        way_predictor=None,
    ):
        super().__init__(config, rng=rng, way_predictor=way_predictor)
        self._offset_bits = config.offset_bits
        self._index_mask = config.num_sets - 1
        self._tag_shift = config.offset_bits + config.index_bits
        self._line_mask = ~(config.line_size - 1)
        self._update_on_hit = config.update_lru_on_hit
        # Preallocated results: lookups are pure reads of these, so one
        # immutable instance per outcome avoids 10^6s of allocations.
        self._miss_result = LookupResult(hit=False)
        self._hit_results = [
            LookupResult(hit=True, way=way) for way in range(config.ways)
        ]
        # CounterBank.record inlined on the hot path; the dicts are
        # stable (reset() clears them in place), so binding them once is
        # safe and saves a call per access.
        self._references = self.counters.references
        self._misses = self.counters.misses
        cls = type(self)
        no_lock_hook = (
            cls._apply_lock_request is SetAssociativeCache._apply_lock_request
        )
        self._plain_hit_path = (
            no_lock_hook
            and cls._update_hit_state is SetAssociativeCache._update_hit_state
            and cls._check_way_predictor
            is SetAssociativeCache._check_way_predictor
        )
        self._plain_fill_path = (
            no_lock_hook
            and cls._choose_victim is SetAssociativeCache._choose_victim
            and cls._update_fill_state
            is SetAssociativeCache._update_fill_state
        )

    @staticmethod
    def _make_policy(config: CacheConfig, base_rng, index: int):
        if config.policy in TABLEABLE_POLICIES:
            # Every set shares one compiled table object; per-set state
            # is just the interned index inside the TabledPolicy.
            return TabledPolicy(config.ways, base=config.policy)
        return SetAssociativeCache._make_policy(config, base_rng, index)

    @staticmethod
    def _make_set(ways: int, policy) -> CacheSet:
        return FastCacheSet(ways, policy)

    def _locate(self, address: int):
        return (
            self.sets[(address >> self._offset_bits) & self._index_mask],
            address >> self._tag_shift,
        )

    def lookup(self, access: MemoryAccess, count: bool = True) -> LookupResult:
        if self.way_predictor is not None or not self._plain_hit_path:
            return super().lookup(access, count=count)
        address = access.address
        cache_set = self.sets[(address >> self._offset_bits) & self._index_mask]
        way = cache_set._tag_map.get(address >> self._tag_shift)
        if way is None:
            if count:
                self._references[access.thread_id] += 1
                self._misses[access.thread_id] += 1
            return self._miss_result
        if self._update_on_hit:
            # Same transition as CacheSet.touch(way, is_fill=False),
            # without re-resolving the optional on_fill attribute.
            cache_set.policy.touch(way)
        if count:
            self._references[access.thread_id] += 1
        return self._hit_results[way]

    def fill(self, access: MemoryAccess) -> FillResult:
        if self.way_predictor is not None or not self._plain_fill_path:
            return super().fill(access)
        address = access.address
        cache_set = self.sets[(address >> self._offset_bits) & self._index_mask]
        if len(cache_set._tag_map) == cache_set.ways:
            # Set is full: ask the policy (valid-mask construction and
            # the invalid-way scan would both be wasted work).
            victim = cache_set.policy.victim(None)
        else:
            # Hardware fills the lowest-index invalid way first.
            victim = next(
                way
                for way, line in enumerate(cache_set.lines)
                if not line.valid
            )
        evicted = cache_set.install(
            victim,
            address >> self._tag_shift,
            address & self._line_mask,
            dirty=access.access_type == AccessType.STORE,
        )
        # CacheSet.touch(victim, is_fill=True) with one less call frame.
        policy = cache_set.policy
        on_fill = getattr(policy, "on_fill", None)
        if on_fill is not None:
            on_fill(victim)
        else:
            policy.touch(victim)
        return FillResult(evicted_address=evicted)

    def probe(self, address: int) -> bool:
        cache_set = self.sets[(address >> self._offset_bits) & self._index_mask]
        return cache_set.lookup(address >> self._tag_shift) is not None
