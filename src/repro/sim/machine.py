"""A simulated machine: one core's memory system, timer, and scheduler.

``Machine`` is the top-level object experiments instantiate.  It owns a
:class:`CacheHierarchy` built from a :class:`MachineSpec`, a matching
:class:`TimestampCounter`, and constructs the requested sharing-mode
scheduler over a set of thread programs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cache.cache import SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.prefetcher import StridePrefetcher
from repro.common.rng import RngLike, make_rng, spawn_rng
from repro.faults.base import FaultInjector, FaultModel
from repro.obs.session import active as obs_active
from repro.sim.scheduler import HyperThreadedScheduler, TimeSlicedScheduler
from repro.sim.specs import INTEL_E5_2690, MachineSpec
from repro.sim.thread import SimThread
from repro.timing.tsc import TimestampCounter


class Machine:
    """One simulated core with its cache hierarchy and timer.

    Args:
        spec: Platform description; defaults to the Intel Xeon E5-2690,
            the paper's primary evaluation machine.
        rng: Master seed for all stochastic components of this machine.
        l1_cache: Optional pre-built L1 (PL cache, random-fill cache)
            replacing the spec's default.
        prefetcher: Optional stride prefetcher (Spectre noise model).
        invisible_speculation: Enable the InvisiSpec-style defense.
        faults: Fault models to inject into every run on this machine
            (Section VIII environment noise).  More can be attached
            later through :attr:`faults`.
        sanitize: Wrap this machine's caches, replacement policies, and
            schedulers in invariant-checking proxies
            (:mod:`repro.analysis.sanitize`); state corruption raises
            :class:`~repro.common.errors.InvariantViolation` at the
            offending transition.  ``None`` (the default) follows the
            process-wide flag set by the CLI's ``--sanitize``.
        engine: ``"reference"`` or ``"fast"`` simulation engine (see
            ``repro.sim.fastpath``); ``None`` (the default) follows the
            process-wide default set by the CLI's ``--engine``.
    """

    def __init__(
        self,
        spec: MachineSpec = INTEL_E5_2690,
        rng: RngLike = None,
        l1_cache: Optional[SetAssociativeCache] = None,
        prefetcher: Optional[StridePrefetcher] = None,
        invisible_speculation: bool = False,
        faults: Optional[Sequence[FaultModel]] = None,
        sanitize: Optional[bool] = None,
        engine: Optional[str] = None,
    ):
        self.spec = spec
        self.rng = make_rng(rng)
        self.hierarchy = CacheHierarchy(
            spec.hierarchy,
            rng=spawn_rng(self.rng, "hierarchy"),
            l1_cache=l1_cache,
            prefetcher=prefetcher,
            invisible_speculation=invisible_speculation,
            engine=engine,
        )
        self.engine = self.hierarchy.engine
        session = obs_active()
        if session is not None:
            session.note_machine(spec.name, self.engine)
        self.tsc = TimestampCounter(spec.tsc, rng=spawn_rng(self.rng, "tsc"))
        # The injector draws its RNG lazily on first attach, so a
        # fault-free machine consumes exactly the same seed stream as
        # before the fault framework existed.
        self.faults = FaultInjector(
            self.hierarchy, rng_source=lambda: spawn_rng(self.rng, "faults")
        )
        if faults:
            self.faults.attach_all(faults)
        # Imported lazily: repro.analysis builds on the cache layer, so
        # a module-level import here would be circular-adjacent and
        # would tax every Machine construction with the lint machinery.
        if sanitize is None:
            from repro.analysis.sanitize import sanitize_enabled

            sanitize = sanitize_enabled()
        if sanitize:
            from repro.analysis.sanitize import sanitize_machine

            sanitize_machine(self)

    def hyper_threaded(
        self, threads: Sequence[SimThread], jitter: float = 2.0
    ) -> HyperThreadedScheduler:
        """SMT scheduler over this machine's hierarchy."""
        return HyperThreadedScheduler(
            self.hierarchy,
            threads,
            rng=spawn_rng(self.rng, "smt"),
            jitter=jitter,
            faults=self.faults,
        )

    def time_sliced(
        self,
        threads: Sequence[SimThread],
        quantum: float = 4.0e6,
        switch_cost: float = 2_000.0,
    ) -> TimeSlicedScheduler:
        """OS time-sharing scheduler over this machine's hierarchy."""
        return TimeSlicedScheduler(
            self.hierarchy,
            threads,
            quantum=quantum,
            switch_cost=switch_cost,
            rng=spawn_rng(self.rng, "slice"),
            faults=self.faults,
        )

    @property
    def l1(self):
        return self.hierarchy.l1

    @property
    def l2(self):
        return self.hierarchy.l2

    def __repr__(self) -> str:
        return f"Machine({self.spec.name})"
