"""Access-event tracing for debugging channels and schedulers.

Attach an :class:`AccessTracer` to a hierarchy to record every demand
access as a timeline of (cycle, thread, address, level) events, then
query the interleaving: which thread touched a set between two of
another thread's accesses, per-set activity, Gantt-style rendering.
This is the tool used while diagnosing channel dynamics (e.g. the
Algorithm-2 even-d pathology) and is exposed for downstream users doing
the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.types import AccessOutcome, CacheLevel, MemoryAccess


@dataclass(frozen=True)
class AccessEvent:
    """One traced access."""

    sequence: int
    thread_id: int
    address: int
    set_index: int
    hit_level: CacheLevel
    latency: float


@dataclass
class AccessTracer:
    """Wraps a hierarchy's ``access`` method, recording every event.

    Usage::

        tracer = AccessTracer.attach(hierarchy)
        ... run the workload ...
        tracer.detach()
        events = tracer.for_set(5)
    """

    hierarchy: CacheHierarchy
    events: List[AccessEvent] = field(default_factory=list)
    _original: Optional[Callable] = None

    @classmethod
    def attach(cls, hierarchy: CacheHierarchy) -> "AccessTracer":
        tracer = cls(hierarchy=hierarchy)
        original = hierarchy.access

        def traced(access: MemoryAccess, count: bool = True) -> AccessOutcome:
            outcome = original(access, count=count)
            tracer.events.append(
                AccessEvent(
                    sequence=len(tracer.events),
                    thread_id=access.thread_id,
                    address=access.address,
                    set_index=hierarchy.config.l1.set_index(access.address),
                    hit_level=outcome.hit_level,
                    latency=outcome.latency,
                )
            )
            return outcome

        hierarchy.access = traced  # type: ignore[method-assign]
        tracer._original = original
        return tracer

    def detach(self) -> None:
        """Restore the hierarchy's original access method."""
        if self._original is not None:
            self.hierarchy.access = self._original  # type: ignore[method-assign]
            self._original = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def for_set(self, set_index: int) -> List[AccessEvent]:
        """Events touching one L1 set, in order."""
        return [e for e in self.events if e.set_index == set_index]

    def for_thread(self, thread_id: int) -> List[AccessEvent]:
        return [e for e in self.events if e.thread_id == thread_id]

    def interleavings(self, set_index: int) -> List[tuple]:
        """(from_thread, to_thread) transitions within one set's stream.

        The channel's signal exists exactly when sender→receiver
        transitions occur inside the receiver's period; counting them
        explains weak traces immediately.
        """
        stream = self.for_set(set_index)
        return [
            (a.thread_id, b.thread_id)
            for a, b in zip(stream, stream[1:])
            if a.thread_id != b.thread_id
        ]

    def miss_events(self) -> List[AccessEvent]:
        return [e for e in self.events if e.hit_level != CacheLevel.L1]

    def render(self, set_index: int, limit: int = 40) -> str:
        """Compact textual timeline of one set's activity.

        One token per event: ``t<thread><level-letter>``, e.g. ``t0H``
        for a thread-0 L1 hit, ``t1M`` for a thread-1 miss to memory.
        """
        letters = {
            CacheLevel.L1: "H",
            CacheLevel.L2: "2",
            CacheLevel.LLC: "3",
            CacheLevel.MEMORY: "M",
        }
        stream = self.for_set(set_index)[:limit]
        return " ".join(
            f"t{e.thread_id}{letters[e.hit_level]}" for e in stream
        )
