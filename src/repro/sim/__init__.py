"""Execution substrate: threads, schedulers, and machine presets.

Thread programs are generators over the operations in
:mod:`repro.sim.ops`; the schedulers realize the paper's two
co-residency modes (hyper-threaded SMT and OS time-slicing); the
machine specs encode the paper's three evaluation platforms.
"""

from repro.sim.fastpath import (
    ENGINES,
    FastSetAssociativeCache,
    default_engine,
    resolve_engine,
    set_default_engine,
)
from repro.sim.machine import Machine
from repro.sim.ops import Access, Compute, ReadTSC, READ_TSC_COST, SleepUntil
from repro.sim.scheduler import HyperThreadedScheduler, TimeSlicedScheduler
from repro.sim.specs import (
    ALL_SPECS,
    AMD_EPYC_7571,
    INTEL_E3_1245V5,
    INTEL_E5_2690,
    INTEL_E5_2690_3LEVEL,
    MachineSpec,
)
from repro.sim.thread import SimThread
from repro.sim.tracing import AccessEvent, AccessTracer

__all__ = [
    "ALL_SPECS",
    "AccessEvent",
    "AccessTracer",
    "AMD_EPYC_7571",
    "Access",
    "Compute",
    "ENGINES",
    "FastSetAssociativeCache",
    "HyperThreadedScheduler",
    "INTEL_E3_1245V5",
    "INTEL_E5_2690",
    "INTEL_E5_2690_3LEVEL",
    "Machine",
    "MachineSpec",
    "READ_TSC_COST",
    "ReadTSC",
    "SimThread",
    "SleepUntil",
    "TimeSlicedScheduler",
    "default_engine",
    "resolve_engine",
    "set_default_engine",
]
