"""Machine presets for the paper's three tested CPUs (Table III).

Each spec bundles cache geometry (Table III), per-level latencies
(Table II), clock frequency, TSC behaviour, and vendor quirks (the AMD
way predictor).  Everything the experiments vary between platforms lives
here, so an experiment parameterized by a spec reproduces on all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.timing.tsc import AMD_TSC, INTEL_TSC, TSCSpec


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one evaluated platform.

    Attributes:
        name: Marketing model name, as in Table III.
        microarchitecture: Vendor microarchitecture name.
        frequency_ghz: Core clock, used to convert cycles to seconds
            when reporting transmission rates (Table IV).
        hierarchy: Cache geometry and latencies.
        tsc: Time-stamp-counter behaviour (Intel fine, AMD coarse).
    """

    name: str
    microarchitecture: str
    frequency_ghz: float
    hierarchy: HierarchyConfig
    tsc: TSCSpec

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds on this machine."""
        return cycles / (self.frequency_ghz * 1e9)

    def bits_per_second(self, bits: int, cycles: float) -> float:
        """Transmission rate for ``bits`` sent over ``cycles``."""
        if cycles <= 0:
            raise ValueError(f"cycles must be > 0, got {cycles}")
        return bits / self.seconds(cycles)


def _intel_hierarchy(l2_latency: float = 12.0) -> HierarchyConfig:
    return HierarchyConfig(
        l1=CacheConfig(
            name="L1D",
            size=32 * 1024,
            ways=8,
            line_size=64,
            policy="tree-plru",
            hit_latency=4.0,
        ),
        l2=CacheConfig(
            name="L2",
            size=256 * 1024,
            ways=8,
            line_size=64,
            policy="tree-plru",
            hit_latency=l2_latency,
        ),
        memory_latency=200.0,
        flush_latency=250.0,
        way_predictor=False,
    )


def _amd_hierarchy() -> HierarchyConfig:
    return HierarchyConfig(
        l1=CacheConfig(
            name="L1D",
            size=32 * 1024,
            ways=8,
            line_size=64,
            policy="tree-plru",
            hit_latency=4.0,
        ),
        l2=CacheConfig(
            name="L2",
            size=512 * 1024,
            ways=8,
            line_size=64,
            policy="tree-plru",
            hit_latency=17.0,
        ),
        memory_latency=220.0,
        flush_latency=180.0,
        way_predictor=True,
    )


def _intel_three_level_hierarchy() -> HierarchyConfig:
    """E5-2690-like hierarchy with an explicit LLC slice.

    Used by the LLC-channel experiments (paper footnote 1 and the
    Section X comparison with concurrent LLC replacement-state work).
    The LLC models one 2 MiB slice with SRRIP — the non-LRU policy the
    paper notes LLCs use (reference [34]).
    """
    base = _intel_hierarchy(l2_latency=12.0)
    return HierarchyConfig(
        l1=base.l1,
        l2=base.l2,
        llc=CacheConfig(
            name="LLC",
            size=2 * 1024 * 1024,
            ways=16,
            line_size=64,
            policy="srrip",
            hit_latency=40.0,
        ),
        memory_latency=base.memory_latency,
        flush_latency=base.flush_latency,
        way_predictor=False,
    )


#: Intel Xeon E5-2690 — Sandy Bridge, 3.8 GHz (Table III).
INTEL_E5_2690 = MachineSpec(
    name="Intel Xeon E5-2690",
    microarchitecture="Sandy Bridge",
    frequency_ghz=3.8,
    hierarchy=_intel_hierarchy(l2_latency=12.0),
    tsc=INTEL_TSC,
)

#: Intel Xeon E3-1245 v5 — Skylake, 3.9 GHz (Table III).
INTEL_E3_1245V5 = MachineSpec(
    name="Intel Xeon E3-1245 v5",
    microarchitecture="Skylake",
    frequency_ghz=3.9,
    hierarchy=_intel_hierarchy(l2_latency=12.0),
    tsc=INTEL_TSC,
)

#: AMD EPYC 7571 — Zen, 2.5 GHz, coarse TSC, way predictor (Table III).
AMD_EPYC_7571 = MachineSpec(
    name="AMD EPYC 7571",
    microarchitecture="Zen",
    frequency_ghz=2.5,
    hierarchy=_amd_hierarchy(),
    tsc=AMD_TSC,
)

#: E5-2690 variant with an explicit LLC, for the LLC-channel studies.
INTEL_E5_2690_3LEVEL = MachineSpec(
    name="Intel Xeon E5-2690 (3-level)",
    microarchitecture="Sandy Bridge",
    frequency_ghz=3.8,
    hierarchy=_intel_three_level_hierarchy(),
    tsc=INTEL_TSC,
)

ALL_SPECS = (INTEL_E5_2690, INTEL_E3_1245V5, AMD_EPYC_7571)
