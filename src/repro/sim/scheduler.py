"""Core-sharing schedulers: hyper-threaded (SMT) and time-sliced.

The paper evaluates both co-residency modes (Section III):

* **Hyper-threaded** — sender and receiver run in parallel as SMT
  siblings; their memory accesses interleave at fine (cycle) granularity.
  We model SMT by letting each thread progress on its own cycle clock
  and executing operations in global-time order, with a small random
  arbitration jitter so interleavings vary run to run.

* **Time-sliced** — the OS alternates the two threads on one core with a
  scheduling quantum.  Only accesses in different slices interleave, so
  only the receiver's first iteration after a context switch observes
  the sender — the effect behind the paper's ~2 bps time-sliced rate
  (Section V-B).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import SimulationError
from repro.common.rng import RngLike, make_rng
from repro.common.types import MemoryAccess
from repro.obs.instruments import for_scheduler
from repro.obs.session import active as obs_active
from repro.sim.ops import Access, Compute, ReadTSC, READ_TSC_COST, SleepUntil
from repro.sim.thread import SimThread


class _SchedulerBase:
    """Shared operation-execution machinery.

    Args:
        hierarchy: The memory system every thread's accesses run against.
        rng: Arbitration/slicing noise stream.
        faults: Optional fault injector (see :mod:`repro.faults`); when
            active, simulated-time progress is reported to it before
            each operation so Poisson-arriving disturbances land between
            the threads' own accesses, and every ``ReadTSC`` result is
            routed through its timestamp perturbations.
    """

    def __init__(self, hierarchy: CacheHierarchy, rng: RngLike = None, faults=None):
        self.hierarchy = hierarchy
        self.rng = make_rng(rng)
        self.faults = faults
        self._obs = for_scheduler(obs_active())

    def _fault_wake_stall(self, thread: SimThread, now: float) -> float:
        """Fire pending fault events; return the wake-up stall for ``thread``.

        Disturbance accesses land as simulated time advances, whichever
        thread is driving the clock.  The *handler cycles* those events
        consume are charged only to a thread waking from a sleep that
        covered the event: interrupts wake a halted logical CPU, so the
        sampling loop's sleeps absorb the handler time, while a sibling
        that never sleeps (the sender's tight encode loop) keeps its
        pace and only sees the cache pollution.
        """
        if self.faults is None or not self.faults.active:
            return 0.0
        self.faults.on_time_advance(now)
        slept_from = getattr(thread, "_slept_from", None)
        if slept_from is None:
            return 0.0
        thread._slept_from = None
        stall = self.faults.stall_in_window(slept_from, now)
        if stall and self._obs is not None:
            self._obs.fault_stall_cycles.inc(int(stall))
        return stall

    def _execute(self, thread: SimThread, op, now: float) -> float:
        """Run one operation at time ``now``; return its cycle cost."""
        if self._obs is not None:
            self._obs.ops.inc()
        if isinstance(op, ReadTSC):
            reading = now
            if self.faults is not None and self.faults.active:
                reading = self.faults.perturb_tsc(now)
            thread.deliver(reading)
            return READ_TSC_COST
        if isinstance(op, Access):
            outcome = self.hierarchy.access(
                MemoryAccess(
                    address=op.address,
                    access_type=op.access_type,
                    thread_id=thread.thread_id,
                    address_space=thread.address_space,
                    locked=op.locked,
                    unlock=op.unlock,
                    speculative=op.speculative,
                ),
                count=op.count,
            )
            thread.deliver(outcome)
            return outcome.latency
        if isinstance(op, Compute):
            thread.deliver(None)
            return op.cycles
        if isinstance(op, SleepUntil):
            thread.deliver(None)
            if self.faults is not None and self.faults.active:
                thread._slept_from = now
            return max(0.0, op.cycle - now)
        raise SimulationError(f"unknown operation {op!r}")


class HyperThreadedScheduler(_SchedulerBase):
    """SMT co-residency: threads interleave at access granularity.

    Threads advance on per-thread clocks; at every step the thread with
    the earliest clock issues its next operation against the shared
    hierarchy.  A uniform arbitration jitter (0..``jitter`` cycles) is
    added to each operation's completion, modeling SMT issue competition
    and making interleavings stochastic, as on real SMT cores.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        threads: Sequence[SimThread],
        rng: RngLike = None,
        jitter: float = 2.0,
        faults=None,
    ):
        super().__init__(hierarchy, rng, faults=faults)
        if not threads:
            raise SimulationError("need at least one thread")
        self.threads: List[SimThread] = list(threads)
        self.jitter = jitter

    def run(self, until_cycle: Optional[float] = None) -> float:
        """Run until every thread finishes or the deadline passes.

        Returns the cycle time of the last completed operation.
        """
        for thread in self.threads:
            if not thread.alive:
                thread.start()
        last_time = 0.0
        while True:
            runnable = [t for t in self.threads if t.alive]
            if not runnable:
                break
            thread = min(
                runnable, key=lambda t: (t.ready_at, self.rng.random())
            )
            if until_cycle is not None and thread.ready_at >= until_cycle:
                break
            thread.ready_at += self._fault_wake_stall(thread, thread.ready_at)
            op = thread.next_operation()
            if op is None:
                continue
            cost = self._execute(thread, op, thread.ready_at)
            thread.ready_at += cost + self.rng.uniform(0.0, self.jitter)
            last_time = max(last_time, thread.ready_at)
        return last_time


class TimeSlicedScheduler(_SchedulerBase):
    """OS time-sharing of one core between two (or more) threads.

    Args:
        hierarchy: Shared memory system.
        threads: Threads to alternate, in round-robin order.
        quantum: Scheduling quantum in cycles (Linux CFS on a ~4 GHz
            core gives quanta on the order of 10⁶-10⁷ cycles).
        switch_cost: Direct cost of a context switch in cycles.
        quantum_jitter_frac: Each slice's length is perturbed by up to
            ±this fraction, modeling scheduler noise; the paper's traces
            show uneven slicing ("threads do not get scheduled evenly").
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        threads: Sequence[SimThread],
        quantum: float = 4.0e6,
        switch_cost: float = 2_000.0,
        quantum_jitter_frac: float = 0.2,
        rng: RngLike = None,
        faults=None,
    ):
        super().__init__(hierarchy, rng, faults=faults)
        if quantum <= 0:
            raise SimulationError(f"quantum must be > 0, got {quantum}")
        self.threads: List[SimThread] = list(threads)
        self.quantum = quantum
        self.switch_cost = switch_cost
        self.quantum_jitter_frac = quantum_jitter_frac

    def _slice_length(self) -> float:
        frac = self.quantum_jitter_frac
        return self.quantum * (1.0 + self.rng.uniform(-frac, frac))

    def run(self, until_cycle: float) -> float:
        """Alternate threads in slices until the deadline.

        A finished thread simply stops taking slices; the run continues
        until ``until_cycle`` or until every thread has finished.
        """
        for thread in self.threads:
            if not thread.alive:
                thread.start()
        now = 0.0
        index = 0
        while now < until_cycle and any(t.alive for t in self.threads):
            thread = self.threads[index % len(self.threads)]
            index += 1
            if not thread.alive:
                continue
            if self._obs is not None:
                self._obs.slices.inc()
            slice_end = min(now + self._slice_length(), until_cycle)
            # The thread resumes where it left off, but never in the past.
            thread.ready_at = max(thread.ready_at, now)
            while thread.alive and thread.ready_at < slice_end:
                thread.ready_at += self._fault_wake_stall(
                    thread, thread.ready_at
                )
                op = thread.next_operation()
                if op is None:
                    break
                cost = self._execute(thread, op, thread.ready_at)
                thread.ready_at += cost
            # The core moves on at the end of the slice; a thread whose
            # last operation overran (or that is sleeping far ahead)
            # keeps its own ready_at and simply does nothing next slice.
            now = slice_end + self.switch_cost
        return now
