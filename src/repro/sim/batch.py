"""Vectorized batch engine: thousands of channel trials in lockstep.

The paper's evaluation numbers (Figs. 4-9) are averages over many
independent transfer trials per (policy, ways, noise) cell, and the
scalar engines pay the full Python interpreter cost per access *per
trial*.  This module removes the per-trial axis from the interpreter:
N trials advance together through each access of the channel schedule,
with per-set replacement state held as an ``int32`` state vector that
is pushed through the dense transition arrays of
:meth:`repro.replacement.tables.PolicyTables.as_arrays` — the same
"simulate the automaton, not the cache" move the static leakage
analyzer builds on, applied to simulation.

Layout (per :class:`BatchCache`):

* ``state``  — ``(trials, sets) int32``; interned table states.
* ``tags``   — ``(trials, sets, ways) int64``; resident line tags,
  ``-1`` for an invalid way.  Tag-to-way resolution is one vectorized
  equality over the target set's tag matrix.
* transitions — gathers into ``TableArrays.touch`` / ``fill`` /
  ``victim_way`` / ``victim_next``, masked per trial.

Policies whose state space exceeds the eager closure budget (true LRU
at 16 ways has ``16!`` states) have no dense export; those sets fall
back to memoised scalar table lookups per trial — bit-identical, just
not vectorized — and the fallback volume is observable as the
``batch.fallback.open_table`` counter.

Trial independence and bit-identity: trial ``k`` of a batch draws its
message bits and timer noise from counter-based streams keyed by
``(seed, trial_offset + k)`` (:func:`repro.common.rng.trial_streams`),
so its results are byte-identical whether it runs solo, in a block of
7, or in a block of 4096 — the property the checkpointed
:meth:`~repro.experiments.runner.ExperimentRunner.run_trials` blocks
and the batch-vs-fast differential suite both rest on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.channels.base import LRUChannel
from repro.channels.batch_decode import (
    batch_error_rates,
    batch_threshold,
    decode_latency_matrix,
)
from repro.common.errors import ConfigurationError
from repro.common.rng import spawn_streams, stream_bits, trial_streams
from repro.obs.session import active as obs_active
from repro.replacement.tables import (
    TABLEABLE_POLICIES,
    TableArrays,
    compile_tables,
)
from repro.timing.measurement import batch_observed_latency
from repro.timing.tsc import INTEL_TSC, TSCSpec

#: Channel algorithms the lockstep transfer knows how to vectorize.
BATCH_CHANNELS: Dict[str, Type[LRUChannel]] = {
    "alg1": SharedMemoryLRUChannel,
    "alg2": NoSharedMemoryLRUChannel,
}

#: Pointer-chase chain length assumed by the latency model; 7 is the
#: paper's choice and fully exposes the probe latency (Section IV-D).
CHAIN_LENGTH = 7


def default_d(algorithm: str, ways: int) -> int:
    """The paper's worked-example ``d`` for each algorithm, generalized.

    Algorithm 1 initializes all N ways (d = N); Algorithm 2 splits its
    N receiver lines d / N-d, with d = N/2 as the worked example.
    """
    if algorithm == "alg1":
        return ways
    return max(1, ways // 2)


class BatchCache:
    """N lockstep images of one set-associative cache level.

    Every access is applied to all (masked-in) trials at once: one
    equality over the target set's ``(trials, ways)`` tag matrix
    resolves hits, and the per-trial replacement states advance through
    the dense transition arrays with masked gathers.  Behaviour matches
    the fast engine's demand path exactly — touch on hit (when the
    config updates LRU on hits), lowest-index invalid way on a
    non-full miss, table victim on a full miss — which is what the
    differential suite in ``tests/test_perf`` asserts per trial.

    Flushes and locked/speculative accesses are not part of the channel
    schedules and are unsupported here; the scalar engines remain the
    path for those.

    Args:
        config: Geometry of the level (policy must be tableable).
        trials: Number of lockstep trial images.
    """

    def __init__(self, config: CacheConfig, trials: int):
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        if config.policy not in TABLEABLE_POLICIES:
            raise ConfigurationError(
                f"policy {config.policy!r} cannot be batch-simulated; "
                f"choose from {sorted(TABLEABLE_POLICIES)}"
            )
        self.config = config
        self.trials = trials
        self.ways = config.ways
        self.tables = compile_tables(config.policy, config.ways)
        try:
            self.arrays: Optional[TableArrays] = self.tables.as_arrays()
        except ConfigurationError:
            self.arrays = None  # open tables: per-trial scalar fallback
        self.state = np.full(
            (trials, config.num_sets), self.tables.initial, dtype=np.int32
        )
        self.tags = np.full(
            (trials, config.num_sets, config.ways), -1, dtype=np.int64
        )
        self._update_on_hit = config.update_lru_on_hit
        self._all = np.ones(trials, dtype=bool)
        self._tag_shift = config.offset_bits + config.index_bits
        #: Lockstep steps executed (one per access call) and trial-steps
        #: served by the open-table fallback; the transfer harness
        #: publishes both through the obs counters.
        self.steps = 0
        self.fallback_steps = 0

    def access(
        self, address: int, mask: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One demand access, applied to every masked-in trial.

        Returns ``(hit, evicted)``: a boolean hit vector (False for
        masked-out trials) and an ``int64`` vector of evicted line
        addresses (``-1`` where nothing was evicted).
        """
        self.steps += 1
        set_index = self.config.set_index(address)
        tag = self.config.tag(address)
        active = self._all if mask is None else mask
        if self.arrays is None:
            return self._access_fallback(set_index, tag, active)
        return self._access_dense(set_index, tag, active)

    def _access_dense(
        self, set_index: int, tag: int, active: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        arrays = self.arrays
        ways = self.ways
        tags = self.tags[:, set_index, :]
        state = self.state[:, set_index]
        match = tags == tag
        hit = match.any(axis=1) & active
        evicted = np.full(self.trials, -1, dtype=np.int64)

        if self._update_on_hit and hit.any():
            hit_way = match.argmax(axis=1)[hit]
            gather = state[hit].astype(np.int64) * ways + hit_way
            state[hit] = arrays.touch[gather]

        miss = active & ~hit
        if miss.any():
            invalid = tags == -1
            has_invalid = invalid.any(axis=1)
            full_miss = miss & ~has_invalid
            if full_miss.any():
                current = state[full_miss].astype(np.int64)
                victim_way = arrays.victim_way[current].astype(np.int64)
                old_tags = tags[full_miss, victim_way]
                evicted[full_miss] = (old_tags << self._tag_shift) | (
                    set_index << self.config.offset_bits
                )
                after_search = arrays.victim_next[current].astype(np.int64)
                state[full_miss] = arrays.fill[after_search * ways + victim_way]
                tags[full_miss, victim_way] = tag
            easy_miss = miss & has_invalid
            if easy_miss.any():
                fill_way = invalid.argmax(axis=1)[easy_miss].astype(np.int64)
                current = state[easy_miss].astype(np.int64)
                state[easy_miss] = arrays.fill[current * ways + fill_way]
                tags[easy_miss, fill_way] = tag
        return hit, evicted

    def _access_fallback(
        self, set_index: int, tag: int, active: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Open-table path: memoised scalar lookups, one trial at a time.

        Bit-identical to the dense path (both sides of every transition
        come from the same interned tables); only the vectorization is
        lost, which is why the volume is counted.
        """
        tables = self.tables
        ways = self.ways
        tags = self.tags[:, set_index, :]
        state = self.state[:, set_index]
        hit = np.zeros(self.trials, dtype=bool)
        evicted = np.full(self.trials, -1, dtype=np.int64)
        set_base = set_index << self.config.offset_bits
        trial_indices = np.nonzero(active)[0]
        self.fallback_steps += len(trial_indices)
        for trial in trial_indices:  # repro: allow(no-scalar-loop-in-batch)
            row = tags[trial]
            way = -1
            for candidate in range(ways):
                if row[candidate] == tag:
                    way = candidate
                    break
            if way >= 0:
                hit[trial] = True
                if self._update_on_hit:
                    state[trial] = tables.touch_to(int(state[trial]), way)
                continue
            victim = -1
            for candidate in range(ways):
                if row[candidate] == -1:
                    victim = candidate
                    break
            current = int(state[trial])
            if victim < 0:
                victim, current = tables.victim_of(current)
                evicted[trial] = (int(row[victim]) << self._tag_shift) | set_base
            state[trial] = tables.fill_to(current, victim)
            row[victim] = tag
        return hit, evicted


class BatchTransferResult:
    """Per-trial outcome of one lockstep channel transfer."""

    __slots__ = (
        "algorithm",
        "trials",
        "trial_offset",
        "sent",
        "decoded",
        "latencies",
        "probe_hits",
        "threshold",
        "steps",
        "fallback_steps",
    )

    def __init__(
        self,
        algorithm: str,
        trial_offset: int,
        sent: np.ndarray,
        decoded: np.ndarray,
        latencies: np.ndarray,
        probe_hits: np.ndarray,
        threshold: float,
        steps: int,
        fallback_steps: int,
    ):
        self.algorithm = algorithm
        self.trials = sent.shape[0]
        self.trial_offset = trial_offset
        self.sent = sent
        self.decoded = decoded
        self.latencies = latencies
        self.probe_hits = probe_hits
        self.threshold = threshold
        self.steps = steps
        self.fallback_steps = fallback_steps

    @property
    def message_length(self) -> int:
        return self.sent.shape[1]

    def error_rates(self) -> np.ndarray:
        """Per-trial bit-error rate (exact, lockstep-aligned)."""
        return batch_error_rates(self.sent, self.decoded)

    def mean_error_rate(self) -> float:
        return float(self.error_rates().mean())

    def __repr__(self) -> str:
        return (
            f"BatchTransferResult({self.algorithm!r}, trials={self.trials}, "
            f"bits={self.message_length}, "
            f"ber={self.mean_error_rate():.4f})"
        )


class BatchEngine:
    """Lockstep transfer harness over :class:`BatchCache`.

    One engine instance binds a channel algorithm to a hierarchy shape
    and runs N-trial transfers: per bit, the receiver's init accesses,
    the sender's bit-conditional access (masked to the trials sending a
    1), the receiver's decode accesses, and the timed probe — the exact
    per-bit schedule the scalar benches drive, minus the scalar loop
    over trials.  Probe readings go through the shared vectorized
    timer model and the vectorized Algorithm 1/2 receiver
    (:mod:`repro.channels.batch_decode`).

    Args:
        algorithm: ``"alg1"`` (shared memory) or ``"alg2"``.
        hierarchy: Cache shape and latencies; defaults to the Intel
            E5-2690 model like the scalar benches.
        target_set: Set index carrying the channel.
        d: Init-phase line count; defaults to the paper's worked
            example for the algorithm.
        tsc: Timer noise model.
        seed: Master seed; per-trial streams derive from it and the
            absolute trial index.
    """

    def __init__(
        self,
        algorithm: str = "alg1",
        hierarchy: Optional[HierarchyConfig] = None,
        target_set: int = 1,
        d: Optional[int] = None,
        tsc: TSCSpec = INTEL_TSC,
        seed: int = 2020,
    ):
        if algorithm not in BATCH_CHANNELS:
            raise ConfigurationError(
                f"unknown batch algorithm {algorithm!r}; "
                f"choose from {sorted(BATCH_CHANNELS)}"
            )
        if hierarchy is None:
            from repro.sim.specs import INTEL_E5_2690

            hierarchy = INTEL_E5_2690.hierarchy
        self.algorithm = algorithm
        self.hierarchy = hierarchy
        self.tsc = tsc
        self.seed = seed
        l1 = hierarchy.l1
        if d is None:
            d = default_d(algorithm, l1.ways)
        self.channel = BATCH_CHANNELS[algorithm].build(
            l1, target_set=target_set, d=d
        )
        self.threshold = batch_threshold(
            l1.hit_latency, hierarchy.l2.hit_latency, tsc, CHAIN_LENGTH
        )

    def run_transfer(
        self,
        trials: int,
        message_length: int = 64,
        trial_offset: int = 0,
        message_bits: Optional[np.ndarray] = None,
    ) -> BatchTransferResult:
        """Run ``trials`` independent transfers in lockstep.

        Args:
            trials: Lockstep batch width.
            message_length: Bits per trial.
            trial_offset: Absolute index of the first trial; blocks of a
                larger run pass their offset so per-trial streams (and
                therefore results) are independent of the blocking.
            message_bits: Optional ``(trials, message_length)`` 0/1
                override; by default each trial sends a random message
                from its own stream.
        """
        channel = self.channel
        l1 = self.hierarchy.l1
        keys = trial_streams(self.seed, trials, offset=trial_offset)
        noise_keys = spawn_streams(keys, "tsc")
        if message_bits is None:
            sent = stream_bits(spawn_streams(keys, "message"), message_length)
        else:
            sent = np.asarray(message_bits, dtype=np.int8)
            if sent.shape != (trials, message_length):
                raise ConfigurationError(
                    f"message_bits shape {sent.shape} != "
                    f"({trials}, {message_length})"
                )
        cache = BatchCache(l1, trials)
        latencies = np.empty((trials, message_length), dtype=np.float64)
        probe_hits = np.empty((trials, message_length), dtype=bool)
        init_addresses = channel.init_addresses()
        one_addresses = channel.sender_addresses(1)
        zero_addresses = channel.sender_addresses(0)
        decode_addresses = channel.decode_addresses()
        probe_address = channel.probe_address
        for position in range(message_length):
            bits = sent[:, position]
            for address in init_addresses:
                cache.access(address)
            if one_addresses:
                ones = bits == 1
                for address in one_addresses:
                    cache.access(address, mask=ones)
            if zero_addresses:
                zeros = bits == 0
                for address in zero_addresses:
                    cache.access(address, mask=zeros)
            for address in decode_addresses:
                cache.access(address)
            hit, _ = cache.access(probe_address)
            probe_hits[:, position] = hit
            latencies[:, position] = batch_observed_latency(
                hit,
                l1.hit_latency,
                self.hierarchy.l2.hit_latency,
                self.tsc,
                noise_keys,
                position,
                CHAIN_LENGTH,
            )
        decoded = decode_latency_matrix(
            latencies, self.threshold, channel.hit_means_one
        )
        result = BatchTransferResult(
            algorithm=self.algorithm,
            trial_offset=trial_offset,
            sent=sent,
            decoded=decoded,
            latencies=latencies,
            probe_hits=probe_hits,
            threshold=self.threshold,
            steps=cache.steps * trials,
            fallback_steps=cache.fallback_steps,
        )
        self._publish(result)
        return result

    @staticmethod
    def _publish(result: BatchTransferResult) -> None:
        """Publish batch-level counters into the active obs session."""
        session = obs_active()
        if session is None:
            return
        counter = session.metrics.counter
        counter("batch.trials").inc(result.trials)
        counter("batch.steps").inc(result.steps)
        if result.fallback_steps:
            counter("batch.fallback.open_table").inc(result.fallback_steps)


def run_batch_transfer(
    algorithm: str = "alg1",
    trials: int = 256,
    message_length: int = 64,
    hierarchy: Optional[HierarchyConfig] = None,
    target_set: int = 1,
    d: Optional[int] = None,
    tsc: TSCSpec = INTEL_TSC,
    seed: int = 2020,
    trial_offset: int = 0,
) -> BatchTransferResult:
    """One-call convenience wrapper around :class:`BatchEngine`."""
    engine = BatchEngine(
        algorithm=algorithm,
        hierarchy=hierarchy,
        target_set=target_set,
        d=d,
        tsc=tsc,
        seed=seed,
    )
    return engine.run_transfer(
        trials, message_length=message_length, trial_offset=trial_offset
    )
