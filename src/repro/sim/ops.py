"""Operations a simulated thread can perform.

Thread programs are Python generators that *yield* these operation
records and receive the operation's result back at the yield point — a
tiny coroutine ISA with exactly the four primitives the paper's attack
code needs: memory accesses, busy-waiting, reading the time-stamp
counter, and sleeping until a TSC deadline (Algorithm 3's receiver loop).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import AccessType


@dataclass(frozen=True)
class Access:
    """A memory operation; the scheduler returns its AccessOutcome.

    Attributes mirror :class:`repro.common.types.MemoryAccess` minus the
    thread identity, which the scheduler fills in from the issuing
    thread.
    """

    address: int
    access_type: AccessType = AccessType.LOAD
    locked: bool = False
    unlock: bool = False
    speculative: bool = False
    count: bool = True


@dataclass(frozen=True)
class Compute:
    """Busy work costing a fixed number of cycles; returns None."""

    cycles: float

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {self.cycles}")


@dataclass(frozen=True)
class ReadTSC:
    """Read the current cycle counter; returns the thread's current time.

    Costs ``READ_TSC_COST`` cycles, modeling the serializing timer read.
    """


@dataclass(frozen=True)
class SleepUntil:
    """Stall the thread until the given absolute cycle; returns None.

    This is the ``while TSC < Tlast + Tr`` spin in Algorithm 3, modeled
    as a scheduler-visible stall so other threads run during it.
    """

    cycle: float


#: Cost of one ReadTSC, roughly the rdtsc+serialization cost.
READ_TSC_COST = 10.0

Operation = (Access, Compute, ReadTSC, SleepUntil)
