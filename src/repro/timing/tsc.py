"""Time-stamp-counter measurement model.

The receiver's fundamental problem (paper Section IV-D) is that ``rdtscp``
around a *single* load cannot distinguish an L1 hit (4-5 cycles) from an
L2 hit (12-17 cycles): the serializing behaviour of the timer instructions
and out-of-order execution hide short load latencies, so both cases
measure identically (the paper's Figure 13, where the two histograms
overlap completely).

We model that with three per-vendor parameters:

* ``serialization_shadow`` — latency up to this many cycles is absorbed
  by the measurement overhead when the measured code is a single
  (non-serialized) access.  A *dependent chain* of loads (pointer chasing)
  is immune: each load's latency is architecturally exposed because the
  next load's address depends on it.
* ``overhead_mean`` / ``overhead_jitter`` — the additive cost and noise
  of the two timer reads.
* ``granularity`` — readout quantization.  Intel TSCs tick every cycle;
  the AMD EPYC readout is much coarser (Section VI-A), which is why the
  AMD channel needs averaging and runs an order of magnitude slower.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import RngLike, make_rng


@dataclass(frozen=True)
class TSCSpec:
    """Parameters of one vendor's time-stamp counter behaviour."""

    granularity: float = 1.0
    overhead_mean: float = 26.0
    overhead_jitter: float = 1.5
    serialization_shadow: float = 18.0

    def __post_init__(self) -> None:
        if self.granularity <= 0:
            raise ValueError(f"granularity must be > 0, got {self.granularity}")
        if self.overhead_jitter < 0:
            raise ValueError("overhead_jitter must be >= 0")


#: Intel-style TSC: cycle-granular readout, modest overhead.
INTEL_TSC = TSCSpec(
    granularity=1.0,
    overhead_mean=26.0,
    overhead_jitter=1.5,
    serialization_shadow=18.0,
)

#: AMD EPYC-style TSC: coarse readout quantum and larger jitter, making
#: single traces unreadable without a moving average (Figure 7).
AMD_TSC = TSCSpec(
    granularity=9.0,
    overhead_mean=38.0,
    overhead_jitter=7.0,
    serialization_shadow=20.0,
)


class TimestampCounter:
    """Converts true simulated latencies into observed measurements.

    Args:
        spec: Vendor behaviour parameters.
        rng: Noise source; defaults to the library's deterministic seed.
    """

    def __init__(self, spec: TSCSpec = INTEL_TSC, rng: RngLike = None):
        self.spec = spec
        self._rng = make_rng(rng)

    def quantize(self, value: float) -> float:
        """Round a raw reading down to the counter's granularity."""
        g = self.spec.granularity
        return (value // g) * g

    def measure(self, true_latency: float, serialized: bool = False) -> float:
        """Observed duration of a region whose true cost is ``true_latency``.

        Args:
            true_latency: Simulated cycles actually spent.
            serialized: True when the measured code is a dependent chain
                (pointer chasing), whose latency cannot hide behind the
                timer serialization.
        """
        if true_latency < 0:
            raise ValueError(f"latency must be >= 0, got {true_latency}")
        exposed = true_latency
        if not serialized:
            exposed = max(0.0, true_latency - self.spec.serialization_shadow)
        overhead = self._rng.gauss(self.spec.overhead_mean, self.spec.overhead_jitter)
        return max(0.0, self.quantize(exposed + overhead))
