"""Timing measurement: TSC models and the pointer-chasing primitive.

Reproduces the paper's Section IV-D and Appendix A: ``rdtscp`` around a
single load cannot separate L1 from L2 hits, while a dependent pointer
chase can.
"""

from repro.timing.measurement import (
    PointerChase,
    observed_chase_latency,
    rdtscp_measure,
)
from repro.timing.tsc import AMD_TSC, INTEL_TSC, TimestampCounter, TSCSpec

__all__ = [
    "AMD_TSC",
    "INTEL_TSC",
    "PointerChase",
    "TSCSpec",
    "TimestampCounter",
    "observed_chase_latency",
    "rdtscp_measure",
]
