"""Latency-measurement primitives: single-access rdtscp and pointer chasing.

The paper's receiver needs to see the 4-vs-12-cycle difference between an
L1 hit and an L1 miss.  Appendix A shows a bare ``rdtscp`` measurement
(Figure 12's code) cannot do this; Section IV-D's pointer-chasing data
structure can:

* seven list elements live in the receiver's own memory, **all mapping to
  one dedicated cache set** so they never pollute the target set;
* the 8th element is the target address;
* the loads are address-dependent, so the total time is the true sum of
  the eight latencies, cleanly exposing the target's hit/miss delta.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ConfigurationError
from repro.timing.tsc import TimestampCounter


def observed_chase_latency(
    tsc: TimestampCounter, total_latency: float, chain_length: int
) -> float:
    """Observed value of a pointer-chase traversal of ``chain_length``+1 loads.

    Short chains (below the paper's 7 elements) let the timer
    serialization re-absorb part of the work (footnote 3's "noise by
    lfence"); at length >= 7 the chain fully exposes the true latency sum.
    """
    shadow_fraction = max(0.0, 1.0 - chain_length / 7.0)
    hidden = shadow_fraction * tsc.spec.serialization_shadow
    exposed = max(0.0, total_latency - hidden)
    return tsc.measure(exposed, serialized=True)


def batch_observed_latency(
    probe_hit,
    hit_latency: float,
    miss_latency: float,
    spec,
    noise_keys,
    draw_index: int,
    chain_length: int = 7,
):
    """Vectorized pointer-chase probe measurement for a batch of trials.

    One trial's reading is exactly what the scalar path produces for a
    primed chain: ``chain_length`` L1 hits plus the probe (L1 hit or
    ``miss_latency``), run through :func:`observed_chase_latency` and
    :meth:`TimestampCounter.measure` — shadow subtraction, Gaussian
    timer overhead, floor quantization, clamp at zero.  The overhead
    draw comes from the trial's counter-based noise stream
    (:func:`repro.common.rng.stream_gauss`) at position ``draw_index``,
    so the value is a pure function of (trial key, draw index) and the
    batch and solo paths read identical noise.

    Args:
        probe_hit: Boolean ndarray, one entry per trial.
        hit_latency / miss_latency: Serving latencies for the probe's
            two outcomes (L1 hit vs. next-level hit).
        spec: :class:`~repro.timing.tsc.TSCSpec` noise parameters.
        noise_keys: Per-trial stream keys (``uint64`` ndarray).
        draw_index: Stream position; advance it once per probe.
        chain_length: Pointer-chase chain length (7 fully exposes the
            latency sum; shorter chains re-enter the timer shadow).
    """
    import numpy as np  # deferred: scalar callers never pay the import

    from repro.common.rng import stream_gauss

    total = chain_length * hit_latency + np.where(
        probe_hit, hit_latency, miss_latency
    )
    shadow_fraction = max(0.0, 1.0 - chain_length / 7.0)
    exposed = np.maximum(0.0, total - shadow_fraction * spec.serialization_shadow)
    overhead = stream_gauss(
        noise_keys, draw_index, spec.overhead_mean, spec.overhead_jitter
    )
    granularity = spec.granularity
    reading = np.floor((exposed + overhead) / granularity) * granularity
    return np.maximum(0.0, reading)


def rdtscp_measure(
    hierarchy: CacheHierarchy,
    tsc: TimestampCounter,
    address: int,
    thread_id: int = 0,
    address_space: int = 0,
    count: bool = False,
) -> float:
    """Measure one load with rdtscp, as in the paper's Figure 12.

    Returns the *observed* duration — which, per Appendix A, does not
    separate L1 hits from L2 hits because the load hides behind the
    timer's serialization (``serialized=False``).
    """
    outcome = hierarchy.load(
        address, thread_id=thread_id, address_space=address_space, count=count
    )
    return tsc.measure(outcome.latency, serialized=False)


class PointerChase:
    """The paper's pointer-chasing measurement structure (Section IV-D).

    Args:
        hierarchy: The memory system to measure against.
        tsc: Timer model producing observed values.
        chain_set: Cache-set index that hosts the local chain elements.
            Must differ from every target set the receiver measures
            (the paper's "any other set can be used as the target set").
        chain_length: Number of local elements before the target; the
            paper uses 7 and footnote 3 explains the trade-off, which
            :meth:`measure` models (short chains partially hide behind
            the timer serialization again).
        thread_id / address_space: Identity of the measuring thread.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        tsc: TimestampCounter,
        chain_set: int = 0,
        chain_length: int = 7,
        thread_id: int = 0,
        address_space: int = 0,
    ):
        if chain_length < 1:
            raise ConfigurationError(
                f"chain_length must be >= 1, got {chain_length}"
            )
        l1 = hierarchy.config.l1
        if chain_length > l1.ways:
            raise ConfigurationError(
                f"chain of {chain_length} cannot stay resident in a "
                f"{l1.ways}-way set"
            )
        if not 0 <= chain_set < l1.num_sets:
            raise ConfigurationError(f"chain_set {chain_set} out of range")
        self.hierarchy = hierarchy
        self.tsc = tsc
        self.chain_set = chain_set
        self.chain_length = chain_length
        self.thread_id = thread_id
        self.address_space = address_space
        self.chain_addresses: List[int] = self._build_chain(l1)

    def _build_chain(self, l1) -> List[int]:
        """Distinct line addresses that all map to ``chain_set``.

        Tags are spaced irregularly (gaps 1, 2, 3, ...) so that walking
        the chain never presents a constant stride to the hardware
        prefetcher — a linked list in practice is similarly scattered.
        """
        set_stride = l1.num_sets * l1.line_size
        base = self.chain_set * l1.line_size
        # High tag offset keeps chain lines disjoint from channel lines.
        chain_base = base + (1 << 30)
        addresses = []
        offset = 0
        for i in range(self.chain_length):
            addresses.append(chain_base + offset * set_stride)
            offset += i + 1
        return addresses

    def prime_chain(self) -> None:
        """Fetch the local elements into L1 before measuring."""
        for address in self.chain_addresses:
            self.hierarchy.load(
                address,
                thread_id=self.thread_id,
                address_space=self.address_space,
                count=False,
            )

    def measure(self, target_address: int, count: bool = False) -> float:
        """Timed traversal: chain elements then the target address.

        Returns the observed total duration.  When the chain is primed,
        the total is ``chain_length * L1_hit + target_latency`` plus
        timer overhead; the target's hit/miss difference survives intact
        because the chain serializes execution.

        Short chains (below the paper's 7) re-expose part of the timer
        serialization shadow, degrading separability — the ablation
        benchmark sweeps this.
        """
        total = 0.0
        for address in self.chain_addresses:
            outcome = self.hierarchy.load(
                address,
                thread_id=self.thread_id,
                address_space=self.address_space,
                count=count,
            )
            total += outcome.latency
        target_outcome = self.hierarchy.load(
            target_address,
            thread_id=self.thread_id,
            address_space=self.address_space,
            count=count,
        )
        total += target_outcome.latency
        return observed_chase_latency(self.tsc, total, self.chain_length)

    def expected_all_hit_latency(self) -> float:
        """True (pre-noise) cost when every element including target hits."""
        return (self.chain_length + 1) * self.hierarchy.config.l1.hit_latency

    def hit_miss_threshold(self) -> float:
        """Decision threshold between target-hit and target-miss readings.

        Placed midway between the expected all-hit total and the total
        with an L2-latency target, plus the timer's mean overhead — the
        red dotted line in the paper's trace figures.
        """
        hit_total = self.expected_all_hit_latency()
        miss_total = (
            self.chain_length * self.hierarchy.config.l1.hit_latency
            + self.hierarchy.config.l2.hit_latency
        )
        midpoint = (hit_total + miss_total) / 2.0
        return midpoint + self.tsc.spec.overhead_mean
