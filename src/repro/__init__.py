"""Reproduction of "Leaking Information Through Cache LRU States" (HPCA 2020).

A simulator-backed implementation of the paper's LRU timing channels,
baselines, Spectre demonstration, and defenses.
"""

__version__ = "1.0.0"
