"""FIFO (Round-Robin) replacement — one of the paper's defenses.

The key security property (Section IX-A): FIFO state is updated **only on
fills**, never on hits.  A sender signaling with cache hits therefore
leaves no trace in the replacement state, which removes the LRU channel
while still leaking the same information as classic (miss-based) cache
channels would.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.replacement.base import ReplacementPolicy, check_way


class FIFO(ReplacementPolicy):
    """Round-robin victim pointer, advanced on every fill."""

    name = "FIFO"

    def __init__(self, ways: int):
        super().__init__(ways)
        self._next_victim = 0

    def touch(self, way: int) -> None:
        """Hits do not move the pointer — FIFO ignores reuse.

        The cache layer distinguishes hits from fills by calling
        :meth:`on_fill` for fills; ``touch`` (hit path) is a no-op, which
        is precisely the property that defeats hit-based LRU channels.
        """
        check_way(self, way)

    def on_fill(self, way: int) -> None:
        """A new line entered ``way``; advance the round-robin pointer."""
        check_way(self, way)
        if way == self._next_victim:
            self._next_victim = (self._next_victim + 1) % self.ways

    def victim(self, valid: Optional[Sequence[bool]] = None) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        return self._next_victim

    def state_snapshot(self) -> Tuple[int]:
        return (self._next_victim,)

    def state_restore(self, snapshot: Tuple[int]) -> None:
        (pointer,) = snapshot
        if not 0 <= pointer < self.ways:
            raise ValueError(f"invalid FIFO snapshot {snapshot!r}")
        self._next_victim = pointer

    @property
    def state_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.ways)))
