"""True LRU replacement.

Tracks the exact age ordering of all ways (log2(N) bits per way in
hardware).  The least recently used way is always the victim, so the
channel access sequences in the paper behave deterministically: in an
N-way set, accessing N+1 distinct lines always evicts the oldest
(Section IV-C: "true LRU will always evict line 0").
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.replacement.base import ReplacementPolicy, check_way


class TrueLRU(ReplacementPolicy):
    """Exact LRU: maintains a recency stack of way indices.

    ``_stack[0]`` is the most recently used way; ``_stack[-1]`` the least.
    """

    name = "LRU"

    def __init__(self, ways: int):
        super().__init__(ways)
        # Power-on: way 0 is treated as most recent, way N-1 as least.
        self._stack: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        check_way(self, way)
        self._stack.remove(way)
        self._stack.insert(0, way)

    def victim(self, valid: Optional[Sequence[bool]] = None) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        return self._stack[-1]

    def age_of(self, way: int) -> int:
        """Return the recency rank of a way (0 = most recently used)."""
        check_way(self, way)
        return self._stack.index(way)

    def state_snapshot(self) -> Tuple[int, ...]:
        return tuple(self._stack)

    def state_restore(self, snapshot: Tuple[int, ...]) -> None:
        if sorted(snapshot) != list(range(self.ways)):
            raise ValueError(f"invalid LRU snapshot {snapshot!r}")
        self._stack = list(snapshot)

    @property
    def state_bits(self) -> int:
        # log2(N) bits of age per way, as described in Section II-B.
        return self.ways * max(1, math.ceil(math.log2(self.ways)))
