"""Bit-PLRU / MRU replacement (Malamy et al.; paper Section II-B).

One MRU bit per way.  An access sets the way's bit; when the last zero
bit would disappear, all *other* bits are cleared (the just-accessed way
keeps its bit, so it is not immediately evictable).  The victim is the
lowest-index way whose MRU bit is 0.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.replacement.base import ReplacementPolicy, check_way


class BitPLRU(ReplacementPolicy):
    """MRU-bit pseudo-LRU: N bits of state for an N-way set."""

    name = "Bit-PLRU"

    def __init__(self, ways: int):
        super().__init__(ways)
        self._mru = [0] * ways

    def touch(self, way: int) -> None:
        check_way(self, way)
        self._mru[way] = 1
        if all(self._mru):
            # Saturation: "once all the ways have the MRU-bit set to 1,
            # all the MRU-bits are reset to 0" (paper Section II-B).
            # Note the just-accessed way is reset too — this exact
            # semantic is what makes Table I's Bit-PLRU column converge
            # to 100%/99% eviction after >= 8 loop iterations.
            self._mru = [0] * self.ways

    def victim(self, valid: Optional[Sequence[bool]] = None) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        for way, bit in enumerate(self._mru):
            if bit == 0:
                return way
        # Unreachable given touch() never leaves all bits set, but a
        # freshly-restored snapshot could: fall back to way 0.
        return 0

    def mru_bit(self, way: int) -> int:
        """Expose a way's MRU bit for tests."""
        check_way(self, way)
        return self._mru[way]

    def state_snapshot(self) -> Tuple[int, ...]:
        return tuple(self._mru)

    def state_restore(self, snapshot: Tuple[int, ...]) -> None:
        if len(snapshot) != self.ways or any(b not in (0, 1) for b in snapshot):
            raise ValueError(f"invalid Bit-PLRU snapshot {snapshot!r}")
        self._mru = list(snapshot)

    @property
    def state_bits(self) -> int:
        return self.ways
