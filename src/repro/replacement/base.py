"""Replacement-policy interface.

A replacement policy is a per-set state machine.  The cache informs it of
every access (hits *and* fills — this is the property the paper exploits:
LRU-family state is updated even on hits, so a sender can signal with
cache hits alone) and asks it for a victim way on a miss that requires a
replacement.

Policies are deliberately unaware of addresses; they see only way indices.
This keeps them bit-exact replicas of the hardware state machines they
model and makes them independently testable (Table I reproduces directly
on these classes).
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Sequence

from repro.common.errors import ConfigurationError


class ReplacementPolicy(abc.ABC):
    """Per-set replacement state machine for an N-way cache set.

    Subclasses implement the three state transitions: ``touch`` (access to
    a way, hit or fill), ``victim`` (choose the way to evict), and
    ``invalidate`` (a way's line was removed without replacement).
    """

    #: Human-readable policy name used in experiment tables.
    name: str = "abstract"

    # Slots on the base let fully-slotted subclasses (the table-driven
    # fast path) avoid per-instance dicts; subclasses that declare no
    # ``__slots__`` of their own still get a ``__dict__`` as usual.
    __slots__ = ("ways",)

    def __init__(self, ways: int):
        if ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {ways}")
        self.ways = ways

    @abc.abstractmethod
    def touch(self, way: int) -> None:
        """Record an access (hit or fill) to ``way``, updating the state."""

    @abc.abstractmethod
    def victim(self, valid: Optional[Sequence[bool]] = None) -> int:
        """Return the way to evict next, without mutating the state.

        Args:
            valid: Optional per-way validity flags.  When given and some
                way is invalid, hardware fills invalid ways first; the
                policy must return the lowest-index invalid way in that
                case (matching real controllers).
        """

    def invalidate(self, way: int) -> None:
        """A line was removed from ``way`` (flush); default is no-op.

        Policies that track per-way recency may choose to age the way so
        it becomes the next victim; the default models hardware that
        leaves replacement state untouched on invalidation (the valid bit
        already forces the way to be refilled first).
        """

    def reset(self) -> None:
        """Return the state to its power-on value."""
        self.__init__(self.ways)  # subclasses store all state in __init__

    @abc.abstractmethod
    def state_snapshot(self) -> Any:
        """Return an immutable copy of the internal state (for tests)."""

    @abc.abstractmethod
    def state_restore(self, snapshot: Any) -> None:
        """Restore internal state from a snapshot."""

    @property
    @abc.abstractmethod
    def state_bits(self) -> int:
        """Number of hardware bits this policy needs per set."""

    def _first_invalid(self, valid: Optional[Sequence[bool]]) -> Optional[int]:
        """Shared helper: lowest invalid way index, or None if all valid."""
        if valid is None:
            return None
        if len(valid) != self.ways:
            raise ConfigurationError(
                f"valid mask has {len(valid)} entries for {self.ways}-way set"
            )
        for i, v in enumerate(valid):
            if not v:
                return i
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(ways={self.ways})"


def check_way(policy: ReplacementPolicy, way: int) -> None:
    """Validate a way index against a policy's associativity."""
    if not 0 <= way < policy.ways:
        raise ConfigurationError(
            f"way {way} out of range for {policy.ways}-way set"
        )


def access_sequence(policy: ReplacementPolicy, ways: List[int]) -> None:
    """Apply a sequence of way touches; convenience for tests/experiments."""
    for way in ways:
        policy.touch(way)
