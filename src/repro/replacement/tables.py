"""Precompiled replacement-policy transition tables (fast-path engine).

Replacement policies are tiny per-set finite-state machines — the same
observation the paper's in-house simulator builds on when it enumerates
policy state spaces (Section IV-C).  Instead of re-executing the Python
state machine on every access, this module compiles a policy into lookup
tables over interned state indices:

* ``touch``:  ``state x way -> state`` (hit-path transition),
* ``fill``:   ``state x way -> state`` (fill-path transition; identical
  to ``touch`` for LRU-family policies that do not distinguish fills),
* ``victim``: ``state -> (way, state)`` — a transition, not just a
  lookup, because SRRIP's victim search *ages* the RRPVs in place,
* ``invalidate``: ``state x way -> state`` (sparse; flushes are rare).

States are interned as dense integers; per-set replacement state then
collapses to a single int, and the hot loop becomes two list indexings.
Small state spaces (Tree-PLRU's ``2^(N-1)``, FIFO's ``N``) are
enumerated eagerly by breadth-first closure from the power-on state;
large ones (true LRU at 16 ways has ``16!`` orderings) fill in lazily,
memoising exactly the states a workload actually reaches.

:class:`TabledPolicy` wraps a compiled table set in the standard
:class:`~repro.replacement.base.ReplacementPolicy` interface, so a
table-driven set is a drop-in replacement for the reference policy and
can be checked bit-for-bit against it (``tests/test_perf``).
"""

from __future__ import annotations

import inspect
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.common.errors import ConfigurationError
from repro.replacement.base import ReplacementPolicy, check_way
from repro.replacement.bit_plru import BitPLRU
from repro.replacement.fifo import FIFO
from repro.replacement.rrip import SRRIP
from repro.replacement.tree_plru import TreePLRU
from repro.replacement.true_lru import TrueLRU

#: Policies whose transitions are pure functions of (state, way) and can
#: therefore be compiled.  ``random`` is excluded (victim selection draws
#: from an RNG stream, not from state) and ``partitioned-plru`` is
#: excluded (its ``victim_for`` protocol is domain-aware).
TABLEABLE_POLICIES: Dict[str, Type[ReplacementPolicy]] = {
    "lru": TrueLRU,
    "tree-plru": TreePLRU,
    "bit-plru": BitPLRU,
    "fifo": FIFO,
    "srrip": SRRIP,
}

#: Enumerate the full state space eagerly while it fits in this many
#: states; beyond the budget, tables grow lazily as states are visited.
EAGER_STATE_BUDGET = 4096


class TableArrays:
    """Dense numpy snapshot of a *closed* table set (batch-engine export).

    The same data ``repro.analysis.reachability`` freezes into a
    :class:`~repro.analysis.reachability.ClosedTransitionSystem` — flat
    ``state * ways + way`` transition vectors plus per-state victim
    way/state — as read-only ``int32`` ndarrays, so the batch engine can
    advance thousands of trials with ``np.take``-style gathers instead
    of per-trial list indexing.  Exists only for eagerly-closed tables:
    an open (lazily-growing) table set has no dense form, and callers
    fall back to per-trial scalar lookups (``batch.fallback.open_table``).

    Attributes:
        touch: ``state * ways + way -> state`` hit-path transitions.
        fill: ``state * ways + way -> state`` fill-path transitions.
        victim_way: ``state -> way`` chosen on a full-set miss.
        victim_next: ``state -> state`` after the victim *search* (before
            the fill transition; SRRIP ages RRPVs while searching).
        evict_to: ``state -> state`` for a composed full-set miss
            (victim search + fill into the chosen way).
        initial: Interned power-on state.
        prepared: State after filling ways ``0..ways-1`` from power-on.
    """

    __slots__ = (
        "policy_name",
        "ways",
        "state_count",
        "touch",
        "fill",
        "victim_way",
        "victim_next",
        "evict_to",
        "initial",
        "prepared",
    )

    def __init__(self, tables: "PolicyTables"):
        import numpy as np  # deferred: keeps the lint/analysis import chain numpy-free

        ways = tables.ways
        n = tables.state_count
        self.policy_name = tables.policy_name
        self.ways = ways
        self.state_count = n
        self.touch = np.fromiter(tables._touch, dtype=np.int32, count=n * ways)
        self.fill = np.fromiter(tables._fill, dtype=np.int32, count=n * ways)
        self.victim_way = np.fromiter(
            (way for way, _ in tables._victim), dtype=np.int32, count=n
        )
        self.victim_next = np.fromiter(
            (nxt for _, nxt in tables._victim), dtype=np.int32, count=n
        )
        self.evict_to = self.fill[
            self.victim_next.astype(np.int64) * ways + self.victim_way
        ]
        self.initial = tables.initial
        prepared = tables.initial
        for way in range(ways):
            prepared = tables.fill_to(prepared, way)
        self.prepared = prepared
        for array in (
            self.touch,
            self.fill,
            self.victim_way,
            self.victim_next,
            self.evict_to,
        ):
            array.setflags(write=False)  # shared through the memo

    def __repr__(self) -> str:
        return (
            f"TableArrays({self.policy_name!r}, ways={self.ways}, "
            f"states={self.state_count})"
        )


def estimated_state_count(
    policy_name: str, ways: int, **kwargs: Any
) -> Optional[int]:
    """Size of a policy's reachable-state upper bound, or None if unknown.

    Used only to decide eager-vs-lazy compilation, so an over-estimate is
    harmless (it merely forces lazy mode).
    """
    if policy_name == "lru":
        return math.factorial(ways)
    if policy_name == "tree-plru":
        return 2 ** (ways - 1)
    if policy_name == "bit-plru":
        return 2 ** ways
    if policy_name == "fifo":
        return ways
    if policy_name == "srrip":
        rrpv_bits = kwargs.get("rrpv_bits", 2)
        return (2 ** rrpv_bits) ** ways
    return None


class PolicyTables:
    """Compiled transition/victim tables for one (policy, ways) pairing.

    Tables are flat lists indexed ``state * ways + way`` (transitions) or
    ``state`` (victims).  Entries start as None and are materialised on
    first use by replaying the reference policy; eager compilation simply
    walks the breadth-first closure up front so the hot path never pays
    the replay cost.

    Args:
        policy_name: Key into :data:`TABLEABLE_POLICIES`.
        ways: Set associativity.
        eager_budget: Enumerate the full space up front when the
            estimated state count does not exceed this.
        **kwargs: Forwarded to the reference policy constructor
            (e.g. ``rrpv_bits`` for SRRIP).
    """

    def __init__(
        self,
        policy_name: str,
        ways: int,
        eager_budget: int = EAGER_STATE_BUDGET,
        **kwargs: Any,
    ):
        if policy_name not in TABLEABLE_POLICIES:
            raise ConfigurationError(
                f"policy {policy_name!r} cannot be table-compiled; "
                f"choose from {sorted(TABLEABLE_POLICIES)}"
            )
        self.policy_name = policy_name
        self.ways = ways
        self.kwargs = dict(kwargs)
        # One mutable reference instance is reused for every replay.
        self._scratch = TABLEABLE_POLICIES[policy_name](ways, **kwargs)
        self.base_type = type(self._scratch)
        self.display_name = self._scratch.name
        self.state_bits = self._scratch.state_bits
        self.has_fill = hasattr(self._scratch, "on_fill")

        self.states: List[Any] = []
        self.index: Dict[Any, int] = {}
        self._touch: List[Optional[int]] = []
        self._fill: List[Optional[int]] = []
        self._victim: List[Optional[Tuple[int, int]]] = []
        self._invalidate: Dict[Tuple[int, int], int] = {}

        fresh = TABLEABLE_POLICIES[policy_name](ways, **kwargs)
        self.initial = self.intern(fresh.state_snapshot())
        estimate = estimated_state_count(policy_name, ways, **kwargs)
        self.eager = estimate is not None and estimate <= eager_budget
        self._closed = False
        self._arrays: Optional[TableArrays] = None
        if self.eager:
            self._compile_closure()
            self._closed = True

    # -- state interning -------------------------------------------------

    def intern(self, snapshot: Any) -> int:
        """Map a reference-policy snapshot to its dense state index."""
        idx = self.index.get(snapshot)
        if idx is None:
            idx = len(self.states)
            self.index[snapshot] = idx
            self.states.append(snapshot)
            self._touch.extend([None] * self.ways)
            self._fill.extend([None] * self.ways)
            self._victim.append(None)
        return idx

    # -- hot-path lookups (lazily self-filling) --------------------------

    def touch_to(self, state: int, way: int) -> int:
        nxt = self._touch[state * self.ways + way]
        if nxt is None:
            nxt = self._replay_touch(state, way, is_fill=False)
        return nxt

    def fill_to(self, state: int, way: int) -> int:
        nxt = self._fill[state * self.ways + way]
        if nxt is None:
            nxt = self._replay_touch(state, way, is_fill=True)
        return nxt

    def victim_of(self, state: int) -> Tuple[int, int]:
        entry = self._victim[state]
        if entry is None:
            entry = self._replay_victim(state)
        return entry

    def invalidate_to(self, state: int, way: int) -> int:
        nxt = self._invalidate.get((state, way))
        if nxt is None:
            scratch = self._scratch
            scratch.state_restore(self.states[state])
            scratch.invalidate(way)
            nxt = self.intern(scratch.state_snapshot())
            self._invalidate[(state, way)] = nxt
        return nxt

    # -- replay (reference policy is the single source of truth) ---------

    def _replay_touch(self, state: int, way: int, is_fill: bool) -> int:
        scratch = self._scratch
        scratch.state_restore(self.states[state])
        if is_fill and self.has_fill:
            scratch.on_fill(way)  # type: ignore[attr-defined]
        else:
            scratch.touch(way)
        nxt = self.intern(scratch.state_snapshot())
        table = self._fill if is_fill else self._touch
        table[state * self.ways + way] = nxt
        return nxt

    def _replay_victim(self, state: int) -> Tuple[int, int]:
        scratch = self._scratch
        scratch.state_restore(self.states[state])
        # victim() may mutate (SRRIP ages RRPVs while searching), so the
        # table entry is a full transition: (chosen way, next state).
        way = scratch.victim(None)
        entry = (way, self.intern(scratch.state_snapshot()))
        self._victim[state] = entry
        return entry

    def _compile_closure(self) -> None:
        """Breadth-first closure over touch/fill/victim from power-on."""
        cursor = 0
        while cursor < len(self.states):
            for way in range(self.ways):
                self.touch_to(cursor, way)
                self.fill_to(cursor, way)
            self.victim_of(cursor)
            cursor += 1

    # -- introspection ---------------------------------------------------

    @property
    def state_count(self) -> int:
        return len(self.states)

    @property
    def is_closed(self) -> bool:
        """True when the eager breadth-first closure has been computed.

        A closed table set enumerates *every* state reachable from
        power-on via touch/fill/victim, with all transition entries
        materialised — the precondition for exact static analysis
        (``repro.analysis.leakage``).  Lazily-grown tables are never
        closed: they memoise only the states a workload happened to
        reach.  (``invalidate`` transitions stay lazy either way; a
        flush can intern states past the closed core.)
        """
        return self._closed

    def as_arrays(self) -> TableArrays:
        """Dense numpy snapshot of a closed table set (memoised).

        Repeated calls return the *same* :class:`TableArrays` object, so
        every batch-engine instance built over one memoised table set
        shares one copy of the transition arrays.
        :func:`clear_table_cache` drops the memo along with the tables.

        Raises:
            ConfigurationError: When the tables are open (grown lazily);
                an open state space has no dense form.  Batch callers
                catch this and take the per-trial scalar fallback.
        """
        if not self._closed:
            raise ConfigurationError(
                f"tables for {self.policy_name!r} at {self.ways} ways are "
                f"open (lazily grown) and have no dense array export; "
                f"raise eager_budget to close the space, or use the "
                f"batch engine's per-trial fallback"
            )
        if self._arrays is None:
            self._arrays = TableArrays(self)
        return self._arrays

    def transition_count(self) -> int:
        """Number of materialised (state, way) transition entries."""
        return sum(
            1 for entry in self._touch if entry is not None
        ) + sum(1 for entry in self._fill if entry is not None)

    def __repr__(self) -> str:
        mode = "eager" if self.eager else "lazy"
        return (
            f"PolicyTables({self.policy_name!r}, ways={self.ways}, "
            f"states={self.state_count}, {mode})"
        )


#: Process-wide memo so every set of a cache shares one table object.
_TABLE_CACHE: Dict[Tuple[Any, ...], PolicyTables] = {}


def _effective_parameters(
    policy_name: str, ways: int, kwargs: Dict[str, Any]
) -> Tuple[Tuple[str, Any], ...]:
    """Canonical constructor parameters for the memo key.

    Binding through the reference constructor's signature (defaults
    applied) makes ``compile_tables("srrip", 4)`` and
    ``compile_tables("srrip", 4, rrpv_bits=2)`` share one table object,
    while genuinely different parameterizations never collide.
    """
    cls = TABLEABLE_POLICIES[policy_name]
    try:
        bound = inspect.signature(cls.__init__).bind(None, ways, **kwargs)
    except TypeError as error:
        raise ConfigurationError(
            f"cannot compile tables for {policy_name!r}: {error}"
        ) from None
    bound.apply_defaults()
    params = []
    for name, value in bound.arguments.items():
        if name in ("self", "ways"):
            continue
        if bound.signature.parameters[name].kind is inspect.Parameter.VAR_KEYWORD:
            params.extend(sorted(value.items()))
            continue
        params.append((name, value))
    for name, value in params:
        try:
            hash(value)
        except TypeError:
            raise ConfigurationError(
                f"policy parameter {name}={value!r} is unhashable and "
                f"cannot key the table memo; pass a hashable value"
            ) from None
    return tuple(sorted(params))


def compile_tables(
    policy_name: str,
    ways: int,
    eager_budget: Optional[int] = None,
    **kwargs: Any,
) -> PolicyTables:
    """Return (building if needed) the shared tables for a policy shape.

    The memo key covers the policy class identity, associativity, the
    *effective* constructor parameters (defaults applied), and any
    non-default ``eager_budget``, so parameterized or defended variants
    never silently share interned tables.
    """
    if policy_name not in TABLEABLE_POLICIES:
        raise ConfigurationError(
            f"policy {policy_name!r} cannot be table-compiled; "
            f"choose from {sorted(TABLEABLE_POLICIES)}"
        )
    params = _effective_parameters(policy_name, ways, kwargs)
    budget = EAGER_STATE_BUDGET if eager_budget is None else eager_budget
    key = (policy_name, TABLEABLE_POLICIES[policy_name], ways, params, budget)
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        tables = PolicyTables(policy_name, ways, eager_budget=budget, **kwargs)
        _TABLE_CACHE[key] = tables
    return tables


def clear_table_cache() -> None:
    """Drop memoised tables (test isolation / memory pressure).

    Also drops each cached table set's dense :class:`TableArrays`
    snapshot, so callers holding a ``PolicyTables`` reference across a
    clear rebuild their arrays instead of resurrecting dropped ones.
    """
    for tables in _TABLE_CACHE.values():
        tables._arrays = None
    _TABLE_CACHE.clear()


class TabledPolicy(ReplacementPolicy):
    """Table-driven drop-in for any policy in :data:`TABLEABLE_POLICIES`.

    Holds a single int (the interned state index) instead of the
    reference policy's lists, and performs every transition by table
    lookup.  Snapshots are exchanged in the *reference* format, so a
    tabled set and a reference set can be compared directly and the
    PR 2 sanitizer checkers apply unchanged.

    Args:
        ways: Set associativity.
        base: Name of the underlying policy to compile.
        tables: Pre-compiled tables to share (must match ``ways``).
        **kwargs: Forwarded to the reference policy constructor.
    """

    __slots__ = ("name", "rrpv_bits", "_tables", "_state")

    def __init__(
        self,
        ways: int,
        base: str = "tree-plru",
        tables: Optional[PolicyTables] = None,
        **kwargs: Any,
    ):
        super().__init__(ways)
        if tables is None:
            tables = compile_tables(base, ways, **kwargs)
        elif tables.ways != ways:
            raise ConfigurationError(
                f"tables sized for {tables.ways} ways used in "
                f"{ways}-way policy"
            )
        self._tables = tables
        self._state = tables.initial
        self.name = tables.display_name
        if isinstance(tables._scratch, SRRIP):
            # Mirror the attribute the sanitizer's SRRIP checker reads.
            self.rrpv_bits = tables._scratch.rrpv_bits

    @property
    def table_base_type(self) -> Type[ReplacementPolicy]:
        """Reference policy class these tables were compiled from."""
        return self._tables.base_type

    def touch(self, way: int) -> None:
        # check_way and PolicyTables.touch_to are inlined here: this is
        # the single hottest call in the fast engine and each saved
        # frame is measurable.
        if way < 0 or way >= self.ways:
            check_way(self, way)
        tables = self._tables
        state = self._state
        nxt = tables._touch[state * tables.ways + way]
        if nxt is None:
            nxt = tables._replay_touch(state, way, is_fill=False)
        self._state = nxt

    def on_fill(self, way: int) -> None:
        """Fill-path transition (same as touch for LRU-family bases)."""
        if way < 0 or way >= self.ways:
            check_way(self, way)
        tables = self._tables
        state = self._state
        nxt = tables._fill[state * tables.ways + way]
        if nxt is None:
            nxt = tables._replay_touch(state, way, is_fill=True)
        self._state = nxt

    def victim(self, valid: Optional[Sequence[bool]] = None) -> int:
        if valid is not None:
            invalid = self._first_invalid(valid)
            if invalid is not None:
                return invalid
        tables = self._tables
        entry = tables._victim[self._state]
        if entry is None:
            entry = tables._replay_victim(self._state)
        way, self._state = entry
        return way

    def invalidate(self, way: int) -> None:
        check_way(self, way)
        self._state = self._tables.invalidate_to(self._state, way)

    def reset(self) -> None:
        self._state = self._tables.initial

    def state_snapshot(self) -> Any:
        return self._tables.states[self._state]

    def state_restore(self, snapshot: Any) -> None:
        idx = self._tables.index.get(snapshot)
        if idx is None:
            # Never-visited state: validate through the reference policy
            # (which raises ValueError on malformed snapshots), then
            # intern its canonical snapshot form.
            scratch = self._tables._scratch
            scratch.state_restore(snapshot)
            idx = self._tables.intern(scratch.state_snapshot())
        self._state = idx

    @property
    def state_bits(self) -> int:
        return self._tables.state_bits

    def __repr__(self) -> str:
        return (
            f"TabledPolicy({self._tables.policy_name!r}, "
            f"ways={self.ways}, state={self._state})"
        )
