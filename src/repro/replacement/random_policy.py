"""Random replacement — the paper's stateless defense.

Random replacement keeps *no* state at all ("does not need any states in
the cache", Section IX-A), so there is nothing for the LRU channel to
modulate.  Victim choice is drawn uniformly from the valid ways.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.common.rng import RngLike, make_rng
from repro.replacement.base import ReplacementPolicy, check_way


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection; zero bits of replacement state."""

    name = "Random"

    def __init__(self, ways: int, rng: RngLike = None):
        super().__init__(ways)
        self._rng = make_rng(rng)

    def touch(self, way: int) -> None:
        check_way(self, way)  # stateless: accesses leave no trace

    def victim(self, valid: Optional[Sequence[bool]] = None) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        return self._rng.randrange(self.ways)

    def state_snapshot(self) -> Tuple[()]:
        return ()

    def state_restore(self, snapshot: Tuple[()]) -> None:
        if snapshot != ():
            raise ValueError("Random policy carries no state")

    @property
    def state_bits(self) -> int:
        return 0
