"""Cache replacement policies — the state machines whose state leaks.

The paper's channel exists because LRU-family policies update their state
on *every* access (hits included).  This package provides bit-exact models
of the policies the paper discusses:

* :class:`TrueLRU` — exact recency ordering (Section II-B).
* :class:`TreePLRU` — tree-based pseudo-LRU (Table I victim behaviour).
* :class:`BitPLRU` — MRU-bit pseudo-LRU (Table I victim behaviour).
* :class:`FIFO` — fill-only state; a proposed defense (Section IX-A).
* :class:`RandomPolicy` — stateless; a proposed defense (Section IX-A).
* :class:`SRRIP` — LLC-style RRIP (reference [34]).
* :class:`PartitionedPLRU` — DAWG-style per-domain PLRU state
  partitioning (Section IX-B).
* :class:`TabledPolicy` — table-compiled drop-in for any of the above
  deterministic policies (the fast-path engine; see
  ``repro.replacement.tables`` and ``docs/PERFORMANCE.md``).

``POLICY_REGISTRY`` maps the names used in experiment configs to
constructors.  The exhaustive state-space analysis lives in
``repro.replacement.analysis`` (imported directly, not re-exported here,
because it builds on the cache layer above this package).
"""

from typing import Callable, Dict

from repro.replacement.base import ReplacementPolicy, access_sequence
from repro.replacement.bit_plru import BitPLRU
from repro.replacement.fifo import FIFO
from repro.replacement.partitioned import PartitionedPLRU
from repro.replacement.random_policy import RandomPolicy
from repro.replacement.rrip import SRRIP
from repro.replacement.tables import TabledPolicy
from repro.replacement.tree_plru import TreePLRU
from repro.replacement.true_lru import TrueLRU

POLICY_REGISTRY: Dict[str, Callable[..., ReplacementPolicy]] = {
    "lru": TrueLRU,
    "tree-plru": TreePLRU,
    "bit-plru": BitPLRU,
    "fifo": FIFO,
    "random": RandomPolicy,
    "srrip": SRRIP,
    "partitioned-plru": PartitionedPLRU,
    "tabled": TabledPolicy,
}


def make_policy(name: str, ways: int, **kwargs) -> ReplacementPolicy:
    """Construct a policy by registry name.

    Args:
        name: One of ``POLICY_REGISTRY``'s keys (case-insensitive).
        ways: Set associativity.
        **kwargs: Policy-specific options (e.g. ``rng`` for ``random``).
    """
    key = name.lower()
    if key not in POLICY_REGISTRY:
        raise KeyError(
            f"unknown policy {name!r}; known: {sorted(POLICY_REGISTRY)}"
        )
    return POLICY_REGISTRY[key](ways, **kwargs)


__all__ = [
    "BitPLRU",
    "FIFO",
    "POLICY_REGISTRY",
    "PartitionedPLRU",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIP",
    "TabledPolicy",
    "TreePLRU",
    "TrueLRU",
    "access_sequence",
    "make_policy",
]
