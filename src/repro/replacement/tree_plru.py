"""Tree-PLRU replacement (So & Rechtschaffen; paper Section II-B).

A binary tree with N-1 one-bit nodes for an N-way set.  Each node bit
records which of its two subtrees is *less* recently used.  Victim search
walks from the root following the less-recently-used side; an access sets
every node on the accessed way's root path to point at the sibling
subtree.

Because N-1 bits cannot represent the full access ordering, Tree-PLRU is
only an approximation of LRU — this imperfection is exactly what the
paper quantifies in Table I (line 0 survives eviction sequences with
noticeable probability).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.replacement.base import ReplacementPolicy, check_way


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class TreePLRU(ReplacementPolicy):
    """Tree-based pseudo-LRU for power-of-two associativity.

    The tree is stored heap-style in ``_bits``: node 1 is the root, node
    ``k`` has children ``2k`` and ``2k+1``, and nodes ``N..2N-1`` are the
    leaves corresponding to ways ``0..N-1``.  A node bit of 0 means the
    left subtree is less recently used; 1 means the right subtree is.
    """

    name = "Tree-PLRU"

    def __init__(self, ways: int):
        super().__init__(ways)
        if not _is_power_of_two(ways):
            raise ConfigurationError(
                f"Tree-PLRU requires power-of-two associativity, got {ways}"
            )
        # _bits[0] unused; _bits[1..ways-1] are the tree nodes.
        self._bits = [0] * ways

    def touch(self, way: int) -> None:
        check_way(self, way)
        node = way + self.ways  # leaf index in the implicit heap
        while node > 1:
            parent = node // 2
            came_from_left = node == 2 * parent
            # The accessed side is now the *more* recently used one, so
            # point the node at the sibling.
            self._bits[parent] = 1 if came_from_left else 0
            node = parent

    def victim(self, valid: Optional[Sequence[bool]] = None) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        node = 1
        while node < self.ways:
            node = 2 * node + self._bits[node]
        return node - self.ways

    def state_snapshot(self) -> Tuple[int, ...]:
        return tuple(self._bits)

    def state_restore(self, snapshot: Tuple[int, ...]) -> None:
        if len(snapshot) != self.ways or any(b not in (0, 1) for b in snapshot):
            raise ValueError(f"invalid Tree-PLRU snapshot {snapshot!r}")
        self._bits = list(snapshot)

    @property
    def state_bits(self) -> int:
        return self.ways - 1

    def node_bit(self, node: int) -> int:
        """Expose a tree node bit (1-indexed heap position) for tests."""
        if not 1 <= node < self.ways:
            raise ValueError(f"node {node} out of range")
        return self._bits[node]
