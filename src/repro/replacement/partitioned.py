"""DAWG-style partitioned Tree-PLRU (paper Section IX-B).

DAWG (Kiriansky et al.) partitions both the cache *ways* and the
*Tree-PLRU state* between protection domains.  The paper highlights DAWG
as the one prior design that considered the replacement state.  We model
it as a policy that owns one independent Tree-PLRU instance per domain,
each confined to that domain's way range; an access from one domain can
never perturb another domain's replacement state, closing the LRU channel
between domains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.replacement.base import ReplacementPolicy
from repro.replacement.tree_plru import TreePLRU


class PartitionedPLRU(ReplacementPolicy):
    """Way- and state-partitioned PLRU across protection domains.

    Args:
        ways: Total associativity of the set.
        domain_ways: Mapping from domain id to the number of contiguous
            ways it owns.  Way ranges are assigned in ascending domain-id
            order and must sum to ``ways``.  Each partition size must be a
            power of two (Tree-PLRU constraint).
    """

    name = "Partitioned-PLRU"

    def __init__(self, ways: int, domain_ways: Optional[Dict[int, int]] = None):
        super().__init__(ways)
        if domain_ways is None:
            domain_ways = {0: ways}
        if sum(domain_ways.values()) != ways:
            raise ConfigurationError(
                f"domain way counts {domain_ways} do not sum to {ways}"
            )
        self.domain_ways = dict(domain_ways)
        self._base: Dict[int, int] = {}
        self._trees: Dict[int, TreePLRU] = {}
        base = 0
        for domain in sorted(domain_ways):
            count = domain_ways[domain]
            self._base[domain] = base
            self._trees[domain] = TreePLRU(count)
            base += count
        # Reverse map way -> domain for touch().
        self._way_domain: List[int] = []
        for domain in sorted(domain_ways):
            self._way_domain.extend([domain] * domain_ways[domain])

    def domain_of(self, way: int) -> int:
        """Return the protection domain that owns a way."""
        if not 0 <= way < self.ways:
            raise ConfigurationError(f"way {way} out of range")
        return self._way_domain[way]

    def touch(self, way: int) -> None:
        domain = self.domain_of(way)
        self._trees[domain].touch(way - self._base[domain])

    def victim(self, valid: Optional[Sequence[bool]] = None) -> int:
        """Global victim (used only if the cache is not domain-aware)."""
        return self.victim_for(min(self._trees), valid)

    def victim_for(
        self, domain: int, valid: Optional[Sequence[bool]] = None
    ) -> int:
        """Victim restricted to a domain's own ways.

        Only the domain's slice of the validity mask is consulted, so one
        domain's misses can never evict (or observe) another's lines.
        """
        if domain not in self._trees:
            raise ConfigurationError(f"unknown domain {domain}")
        base = self._base[domain]
        count = self.domain_ways[domain]
        sub_valid = None
        if valid is not None:
            sub_valid = list(valid[base : base + count])
        return base + self._trees[domain].victim(sub_valid)

    def state_snapshot(self) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
        return tuple(
            (domain, tree.state_snapshot())
            for domain, tree in sorted(self._trees.items())
        )

    def state_restore(self, snapshot) -> None:
        for domain, tree_state in snapshot:
            self._trees[domain].state_restore(tree_state)

    def reset(self) -> None:
        self.__init__(self.ways, self.domain_ways)

    @property
    def state_bits(self) -> int:
        return sum(tree.state_bits for tree in self._trees.values())
