"""Exhaustive state-space verification of the Table I plateau claims.

Table I's Monte-Carlo rows end with limits: "≥ 8 loop iterations" gives
100% eviction for Sequence 1 under Tree-PLRU and Bit-PLRU, and ~99% for
Bit-PLRU Sequence 2.  Monte Carlo shows these hold *on the sampled
initial conditions*; the functions here prove the Sequence-1 claims by
brute force over the **entire** state space:

* Tree-PLRU in an 8-way set has 2^7 = 128 tree states;
* Bit-PLRU has 2^8 = 256 MRU-bit states (255 reachable);
* line-to-way placements are permutations, but Sequence 1 touches every
  line each iteration, so only the *state bits* and the victim-way→line
  assignment matter; we enumerate states against every placement of the
  tracked line.

``sequence1_worst_case(policy, ways)`` returns the maximum number of
Sequence-1 iterations any (state, placement) pair needs before line 0
is evicted — the "≥ 8" claim verified exactly rather than sampled.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cache.cache_set import CacheSet
from repro.common.errors import ConfigurationError
from repro.replacement import make_policy


@dataclass
class WorstCaseResult:
    """Outcome of the exhaustive Sequence-1 sweep.

    Attributes:
        policy: Policy name.
        ways: Associativity analyzed.
        states_checked: Number of (state, placement) pairs enumerated.
        worst_iterations: Max iterations before line 0's eviction; None
            if some pair never evicts (the claim would be false).
        histogram: iterations → count of pairs needing exactly that many.
    """

    policy: str
    ways: int
    states_checked: int
    worst_iterations: int
    histogram: Dict[int, int]

    @property
    def claim_holds(self) -> bool:
        """True when every state evicts line 0 within ``ways`` iterations."""
        return self.worst_iterations <= self.ways


def _enumerate_states(policy_name: str, ways: int):
    """All reachable replacement-state snapshots for a policy."""
    if policy_name == "tree-plru":
        for bits in itertools.product((0, 1), repeat=ways):
            # snapshot layout: index 0 unused, 1..ways-1 are tree nodes.
            if bits[0] != 0:
                continue  # index 0 is padding; keep it zero
            yield tuple(bits)
    elif policy_name == "bit-plru":
        for bits in itertools.product((0, 1), repeat=ways):
            if all(bits):
                continue  # all-ones resets immediately; unreachable rest state
            yield tuple(bits)
    elif policy_name == "lru":
        for order in itertools.permutations(range(ways)):
            yield tuple(order)
    else:
        raise ConfigurationError(
            f"exhaustive analysis supports lru/tree-plru/bit-plru, "
            f"not {policy_name!r}"
        )


def _run_sequence1_until_eviction(
    policy_name: str,
    ways: int,
    state,
    placement: Tuple[int, ...],
    max_iterations: int,
) -> int:
    """Iterations of Sequence 1 until line 0 leaves the set.

    Args:
        placement: ``placement[way] = line`` initially resident.

    Returns the 1-based iteration count, or ``max_iterations + 1`` if
    line 0 survived every iteration.
    """
    policy = make_policy(policy_name, ways)
    policy.state_restore(state)
    cache_set = CacheSet(ways, policy)
    for way, line in enumerate(placement):
        cache_set.install(way, tag=line, address=line)
    extra_line = ways  # "line N": the one address beyond the resident N

    for iteration in range(1, max_iterations + 1):
        for line in list(range(ways)) + [extra_line]:
            way = cache_set.lookup(line)
            if way is not None:
                cache_set.touch(way, is_fill=False)
                continue
            victim = cache_set.choose_victim()
            cache_set.install(victim, tag=line, address=line)
            cache_set.touch(victim, is_fill=True)
        if cache_set.lookup(0) is None:
            return iteration
        # "line N" changes identity each iteration in the worst case:
        # whichever line got evicted becomes next iteration's outsider.
        extra_line = ways if cache_set.lookup(ways) is not None else ways
    return max_iterations + 1


def sequence1_worst_case(
    policy_name: str, ways: int = 8, max_iterations: int = 16
) -> WorstCaseResult:
    """Exhaustively bound Sequence 1's eviction delay for a policy.

    Enumerates every reachable replacement state crossed with every
    rotation of line placements (full permutations for true LRU are
    already covered by the state enumeration, so rotations suffice).
    """
    histogram: Dict[int, int] = {}
    worst = 0
    checked = 0
    placements: List[Tuple[int, ...]] = [
        tuple((start + i) % ways for i in range(ways))
        for start in range(ways)
    ]
    for state in _enumerate_states(policy_name, ways):
        for placement in placements:
            iterations = _run_sequence1_until_eviction(
                policy_name, ways, state, placement, max_iterations
            )
            histogram[iterations] = histogram.get(iterations, 0) + 1
            worst = max(worst, iterations)
            checked += 1
    return WorstCaseResult(
        policy=policy_name,
        ways=ways,
        states_checked=checked,
        worst_iterations=worst,
        histogram=dict(sorted(histogram.items())),
    )
