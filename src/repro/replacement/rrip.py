"""Static RRIP replacement (Jaleel et al., the paper's reference [34]).

The paper notes that LLCs often use re-reference interval prediction
rather than LRU because of reduced locality at the last level.  We include
SRRIP so the hierarchy can model an LLC with a non-LRU policy, and so the
defense evaluation can compare one more realistic alternative.

Each way carries an M-bit re-reference prediction value (RRPV).  A fill
inserts with RRPV = 2^M - 2 ("long"); a hit promotes to 0 ("near").  The
victim is the lowest-index way with RRPV = 2^M - 1; if none exists, all
RRPVs are incremented until one does.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.replacement.base import ReplacementPolicy, check_way


class SRRIP(ReplacementPolicy):
    """Static re-reference interval prediction with M-bit RRPVs."""

    name = "SRRIP"

    def __init__(self, ways: int, rrpv_bits: int = 2):
        super().__init__(ways)
        if rrpv_bits < 1:
            raise ConfigurationError(f"rrpv_bits must be >= 1, got {rrpv_bits}")
        self.rrpv_bits = rrpv_bits
        self._max_rrpv = (1 << rrpv_bits) - 1
        # Power-on: everything looks distant so invalid ways fill first.
        self._rrpv = [self._max_rrpv] * ways

    def touch(self, way: int) -> None:
        """Hit promotion: predicted near-immediate re-reference."""
        check_way(self, way)
        self._rrpv[way] = 0

    def on_fill(self, way: int) -> None:
        """Fill insertion: predicted long re-reference interval."""
        check_way(self, way)
        self._rrpv[way] = self._max_rrpv - 1

    def victim(self, valid: Optional[Sequence[bool]] = None) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        while True:
            for way, rrpv in enumerate(self._rrpv):
                if rrpv == self._max_rrpv:
                    return way
            self._rrpv = [min(r + 1, self._max_rrpv) for r in self._rrpv]

    def state_snapshot(self) -> Tuple[int, ...]:
        return tuple(self._rrpv)

    def state_restore(self, snapshot: Tuple[int, ...]) -> None:
        if len(snapshot) != self.ways or any(
            not 0 <= r <= self._max_rrpv for r in snapshot
        ):
            raise ValueError(f"invalid SRRIP snapshot {snapshot!r}")
        self._rrpv = list(snapshot)

    @property
    def state_bits(self) -> int:
        return self.ways * self.rrpv_bits
