"""Analytic CPI model for the defense evaluation (paper Figure 9).

The paper runs SPEC CPU2006 on GEM5 to show that swapping the L1D
replacement policy (Tree-PLRU → FIFO or Random) changes CPI by less than
2 %.  The CPI effect of a replacement-policy change flows entirely through
the change in per-level miss rates times per-level miss penalties; we use
the standard analytic decomposition

    CPI = CPI_base
        + f_mem * miss_L1 * (lat_L2 - lat_L1)
        + f_mem * miss_L1 * miss_L2 * (lat_mem - lat_L2)

where ``f_mem`` is the fraction of instructions that access memory and
``miss_X`` are local miss ratios.  An out-of-order core hides part of the
L2-hit penalty; the ``mlp`` (memory-level-parallelism) factor divides the
stall terms to model that, matching GEM5's out-of-order configuration in
spirit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPIModelConfig:
    """Parameters of the analytic CPI model.

    Defaults mirror the paper's GEM5 setup: L1D latency 4 cycles, L2
    latency 8 cycles (the paper's "latency of 8 cycles" for L2), and a
    50 ns main memory on a ~3 GHz core ≈ 150 cycles.
    """

    base_cpi: float = 0.6  # out-of-order core, compute-bound IPC ~1.7
    mem_fraction: float = 0.35  # loads+stores per instruction
    l1_latency: float = 4.0
    l2_latency: float = 8.0
    memory_latency: float = 150.0
    mlp: float = 2.0  # average overlap of outstanding misses


class CPIModel:
    """Computes CPI from per-level miss rates."""

    def __init__(self, config: CPIModelConfig = CPIModelConfig()):
        self.config = config

    def cpi(self, l1_miss_rate: float, l2_miss_rate: float) -> float:
        """CPI for given L1D and (local) L2 miss rates.

        Args:
            l1_miss_rate: L1D misses / L1D references.
            l2_miss_rate: L2 misses / L2 references (local miss ratio).
        """
        for name, rate in (("l1", l1_miss_rate), ("l2", l2_miss_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name}_miss_rate must be in [0,1], got {rate}")
        c = self.config
        l2_stall = l1_miss_rate * (c.l2_latency - c.l1_latency)
        mem_stall = l1_miss_rate * l2_miss_rate * (c.memory_latency - c.l2_latency)
        return c.base_cpi + c.mem_fraction * (l2_stall + mem_stall) / c.mlp

    def normalized_cpi(
        self,
        l1_miss_rate: float,
        l2_miss_rate: float,
        baseline_l1: float,
        baseline_l2: float,
    ) -> float:
        """CPI relative to a baseline configuration (Figure 9 bottom)."""
        base = self.cpi(baseline_l1, baseline_l2)
        if base == 0.0:
            raise ValueError("baseline CPI is zero")
        return self.cpi(l1_miss_rate, l2_miss_rate) / base
