"""Hardware-performance-counter model (paper Tables VI and VII).

The paper measures per-process cache miss rates with Linux ``perf`` to
show that the LRU channel's sender is stealthier than Flush+Reload's.  We
attach a :class:`CounterBank` to every cache level; it tallies references
and misses per thread id, and :class:`MissRateReport` renders the same
rows the paper reports (L1D/L2/LLC miss rate per process).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional


@dataclass
class CounterBank:
    """Per-thread reference/miss counters for one cache level.

    Attributes:
        level_name: Label used in reports (``"L1D"``, ``"L2"``, ``"LLC"``).
    """

    level_name: str = "L1D"
    references: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    misses: Dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, thread_id: int, miss: bool) -> None:
        """Count one reference (and possibly one miss) for a thread."""
        self.references[thread_id] += 1
        if miss:
            self.misses[thread_id] += 1

    def miss_rate(self, thread_id: Optional[int] = None) -> float:
        """Miss rate for one thread, or across all threads when None."""
        if thread_id is None:
            refs = sum(self.references.values())
            miss = sum(self.misses.values())
        else:
            refs = self.references.get(thread_id, 0)
            miss = self.misses.get(thread_id, 0)
        if refs == 0:
            return 0.0
        return miss / refs

    def total_references(self, thread_id: Optional[int] = None) -> int:
        if thread_id is None:
            return sum(self.references.values())
        return self.references.get(thread_id, 0)

    def total_misses(self, thread_id: Optional[int] = None) -> int:
        if thread_id is None:
            return sum(self.misses.values())
        return self.misses.get(thread_id, 0)

    def reset(self) -> None:
        self.references.clear()
        self.misses.clear()


@dataclass
class MissRateRow:
    """One row of a Table VI / VII style report."""

    label: str
    l1d: float
    l2: float
    llc: float

    def formatted(self) -> str:
        return (
            f"{self.label:<24s} L1D {self.l1d:7.2%}  "
            f"L2 {self.l2:7.2%}  LLC {self.llc:7.2%}"
        )


class MissRateReport:
    """Collects rows of per-scenario miss rates and renders them."""

    def __init__(self, title: str = "Cache Miss Rate"):
        self.title = title
        self.rows: list = []

    def add(self, label: str, l1d: float, l2: float, llc: float = 0.0) -> None:
        self.rows.append(MissRateRow(label, l1d, l2, llc))

    def add_from_banks(
        self,
        label: str,
        banks: Iterable[CounterBank],
        thread_id: Optional[int] = None,
    ) -> None:
        """Build a row directly from the hierarchy's counter banks."""
        rates = {bank.level_name: bank.miss_rate(thread_id) for bank in banks}
        self.add(
            label,
            rates.get("L1D", 0.0),
            rates.get("L2", 0.0),
            rates.get("LLC", 0.0),
        )

    def render(self) -> str:
        lines = [self.title, "-" * len(self.title)]
        lines.extend(row.formatted() for row in self.rows)
        return "\n".join(lines)
