"""Performance modeling: hardware counters and an analytic CPI model.

Used by the defense evaluation (Figure 9) and the stealthiness
comparison (Tables VI and VII).
"""

from repro.perf.counters import CounterBank, MissRateReport, MissRateRow
from repro.perf.cpi import CPIModel, CPIModelConfig

__all__ = [
    "CPIModel",
    "CPIModelConfig",
    "CounterBank",
    "MissRateReport",
    "MissRateRow",
]
