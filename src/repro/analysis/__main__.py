"""Command-line interface: ``python -m repro.analysis``.

Subcommands:

* ``lint <path> [<path> ...]`` — run every registered rule over the
  given files/directories; print one ``file:line: [rule-id] message``
  diagnostic per finding and exit non-zero if any were found.  This is
  the command CI runs (``python -m repro.analysis lint src/repro``).
* ``rules`` — list the registered rule ids with their one-line
  descriptions.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_lint(paths: List[str], rule_ids: Optional[List[str]]) -> int:
    from repro.analysis.lint import iter_python_files, lint_paths

    files = iter_python_files(paths)
    if not files:
        print(f"no python files under {', '.join(paths)}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(paths, rule_ids)
    except KeyError as error:
        print(str(error.args[0]), file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"{len(findings)} finding(s) in {len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"{len(files)} file(s) clean")
    return 0


def _cmd_rules() -> int:
    from repro.analysis.rules import RULE_REGISTRY

    width = max(len(rule_id) for rule_id in RULE_REGISTRY)
    for rule_id in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[rule_id]
        print(f"  {rule_id.ljust(width)}  [{rule.scope}] {rule.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant checks for the repro simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lint_parser = sub.add_parser("lint", help="lint files or directories")
    lint_parser.add_argument("paths", nargs="+", help="files or directories")
    lint_parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE_ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    sub.add_parser("rules", help="list registered lint rules")

    args = parser.parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args.paths, args.rules)
    return _cmd_rules()


if __name__ == "__main__":
    sys.exit(main())
