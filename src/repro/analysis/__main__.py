"""Command-line interface: ``python -m repro.analysis``.

Subcommands:

* ``lint <path> [<path> ...]`` — run every registered rule over the
  given files/directories; print one ``file:line: [rule-id] message``
  diagnostic per finding and exit non-zero if any were found.  This is
  the command CI runs (``python -m repro.analysis lint src/repro``).
* ``rules`` — list the registered rule ids with their one-line
  descriptions.
* ``leakage`` — run the static leakage analyzer over the registered
  replacement policies (zero simulation; docs/LEAKAGE.md), print the
  ranked table, optionally write the canonical JSON artifact
  (``--json``) and/or fail on drift against a committed baseline
  (``--check benchmarks/LEAKAGE_baseline.json``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_lint(paths: List[str], rule_ids: Optional[List[str]]) -> int:
    from repro.analysis.lint import iter_python_files, lint_paths

    files = iter_python_files(paths)
    if not files:
        print(f"no python files under {', '.join(paths)}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(paths, rule_ids)
    except KeyError as error:
        print(str(error.args[0]), file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"{len(findings)} finding(s) in {len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"{len(files)} file(s) clean")
    return 0


def _cmd_leakage(args) -> int:
    import json

    from repro.analysis.leakage import analyze_matrix, diff_reports
    from repro.replacement.tables import clear_table_cache

    # Start from a clean memo: an earlier experiment in this process may
    # have compiled the same shapes lazily or under a different budget.
    clear_table_cache()
    report = analyze_matrix(
        policies=args.policies,
        ways=tuple(args.ways or (4, 8)),
        defenses=tuple(args.defenses or ("none", "no-hit-update")),
        eager_budget=args.eager_budget,
    )
    print(report.render_table())
    if args.json_path:
        with open(args.json_path, "w") as handle:
            handle.write(report.to_canonical_json())
        print(f"wrote {args.json_path}", file=sys.stderr)
    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        problems = diff_reports(report.to_dict(), baseline)
        if problems:
            for problem in problems:
                print(f"LEAKAGE DRIFT: {problem}", file=sys.stderr)
            return 1
        print(f"no drift against {args.check}", file=sys.stderr)
    return 0


def _cmd_rules() -> int:
    from repro.analysis.rules import RULE_REGISTRY

    width = max(len(rule_id) for rule_id in RULE_REGISTRY)
    for rule_id in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[rule_id]
        print(f"  {rule_id.ljust(width)}  [{rule.scope}] {rule.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant checks for the repro simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lint_parser = sub.add_parser("lint", help="lint files or directories")
    lint_parser.add_argument("paths", nargs="+", help="files or directories")
    lint_parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE_ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    sub.add_parser("rules", help="list registered lint rules")
    leakage_parser = sub.add_parser(
        "leakage",
        help="static leakage analysis over compiled policy tables",
    )
    leakage_parser.add_argument(
        "--policy",
        action="append",
        dest="policies",
        metavar="NAME",
        help="analyze only this policy (repeatable; default: all "
        "registered policies)",
    )
    leakage_parser.add_argument(
        "--ways",
        action="append",
        type=int,
        metavar="N",
        help="associativity to analyze (repeatable; default: 4 and 8)",
    )
    leakage_parser.add_argument(
        "--defense",
        action="append",
        dest="defenses",
        choices=("none", "no-hit-update"),
        help="defense model (repeatable; default: both)",
    )
    leakage_parser.add_argument(
        "--eager-budget",
        type=int,
        default=None,
        metavar="STATES",
        help="state-space ceiling for exact analysis; shapes whose "
        "estimate exceeds it are refused (default: the table "
        "compiler's eager budget)",
    )
    leakage_parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        help="write the canonical JSON artifact here",
    )
    leakage_parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="fail (exit 1) if metrics or rankings drift from this "
        "committed baseline JSON",
    )

    args = parser.parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args.paths, args.rules)
    if args.command == "leakage":
        return _cmd_leakage(args)
    return _cmd_rules()


if __name__ == "__main__":
    sys.exit(main())
