"""Bounded access-trace ring buffer for sanitizer diagnostics.

When a proxy detects a corrupted state it raises
:class:`~repro.common.errors.InvariantViolation` carrying the last few
operations that led up to the corruption — the difference between "a
Tree-PLRU bit left {0,1}" and a reproducible bug report.

When an observability session with tracing is active
(:mod:`repro.obs.session`), every recorded event is also mirrored onto
the session's trace bus as a ``sanitizer.access`` event, so a
``--trace`` artifact interleaves the sanitizer's view with the
channel-level records.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.obs.session import active as obs_active


class AccessTrace:
    """Fixed-depth log of recent simulator operations.

    One trace is shared by every proxy wrapped around one machine (or
    one cache), so the tail interleaves policy transitions with the
    cache/hierarchy operations that caused them, in order.

    Args:
        depth: Number of events retained (oldest fall off).
    """

    def __init__(self, depth: int = 32):
        self._events: Deque[str] = deque(maxlen=depth)
        self.depth = depth
        session = obs_active()
        self._bus = session.bus if session is not None else None

    def record(self, event: str) -> None:
        self._events.append(event)
        if self._bus is not None:
            self._bus.event("sanitizer.access", detail=event)

    def tail(self) -> Tuple[str, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"AccessTrace(depth={self.depth}, held={len(self._events)})"
