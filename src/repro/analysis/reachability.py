"""Reachability and observation-equivalence over compiled policy tables.

A replacement policy compiled by :mod:`repro.replacement.tables` *is* a
finite transition system: states are interned policy snapshots, inputs
are ``touch(way)`` (a hit on a resident line), ``evict`` (a miss that
runs the victim search and fills the chosen way), and ``invalidate``
(a flush).  This module turns an eagerly-closed table set into an
explicit :class:`ClosedTransitionSystem` and computes the two exact
ingredients of the Cañones–Köpf–Reineke leakage metrics:

* **reachable sets** — breadth-first closures from a start state under a
  chosen input alphabet (hits-only for the paper's stealth sender, full
  alphabet for a sender that may also miss, flush-augmented to account
  for ``invalidate``);
* **observation-equivalence partitions** — Moore-style partition
  refinement to a fixed point, under two attacker models:

  - the **victim-way observer** (the paper's Algorithm 2 receiver): the
    attacker owns every line in the set, may touch any way, and on each
    miss observes *which way* was evicted;
  - the **hit/miss observer** (the paper's Algorithm 1 receiver): the
    attacker shares one *target* line with the victim, may re-access the
    target (observing hit or miss) or access a fresh line (forcing an
    eviction), and observes only timing — modelled exactly as a
    marked-line product automaton over ``(policy state, marked way)``.

Everything here is exact and deterministic: no simulation, no sampling,
no randomness.  Lazily-grown (open) tables are refused with
:class:`~repro.common.errors.LeakageAnalysisError` rather than silently
under-approximated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import LeakageAnalysisError
from repro.replacement.tables import (
    EAGER_STATE_BUDGET,
    TABLEABLE_POLICIES,
    PolicyTables,
    compile_tables,
    estimated_state_count,
)

#: Defense dimension understood by the static analyzer.  ``none`` is the
#: unmodified policy; ``no-hit-update`` models the Section IX-B defense
#: (hits do not update replacement state, as in InvisiSpec's invisible
#: loads): the touch table becomes the identity while fills and victim
#: search are untouched.
DEFENSES: Tuple[str, ...] = ("none", "no-hit-update")

#: Marker for "the shared target line has been evicted" in the
#: marked-line product automaton (stored where a way index would be).
EVICTED = -1


@dataclass(frozen=True)
class ClosedTransitionSystem:
    """Immutable dense view of one eagerly-closed policy table set.

    All arrays are snapshots taken at construction time, so later lazy
    growth of the shared :class:`PolicyTables` (e.g. via ``invalidate``)
    cannot skew an analysis in flight.

    Attributes:
        policy_name: Registry key (``lru``, ``tree-plru``, ...).
        display_name: Human-readable policy name.
        ways: Set associativity.
        defense: ``none`` or ``no-hit-update``.
        n: Number of states in the closed core.
        initial: Power-on state index.
        prepared: State after sequentially filling ways ``0..ways-1``
            from power-on (the receiver's prime phase).
        touch: ``state * ways + way -> state`` hit transitions.
        fill: ``state * ways + way -> state`` fill transitions.
        victim_way: ``state -> way`` chosen by the victim search.
        evict_to: ``state -> state`` after victim search *and* filling
            the chosen way (one complete miss).
        state_bits: Hardware bits of replacement state per set.
    """

    policy_name: str
    display_name: str
    ways: int
    defense: str
    n: int
    initial: int
    prepared: int
    touch: Tuple[int, ...]
    fill: Tuple[int, ...]
    victim_way: Tuple[int, ...]
    evict_to: Tuple[int, ...]
    state_bits: int

    def touch_to(self, state: int, way: int) -> int:
        return self.touch[state * self.ways + way]


def require_closed(
    policy_name: str,
    ways: int,
    eager_budget: Optional[int] = None,
    **kwargs: Any,
) -> PolicyTables:
    """Compile tables for a policy shape, refusing lazy (open) tables.

    Raises:
        LeakageAnalysisError: When the estimated state space exceeds the
            eager budget, so the tables would grow lazily and any
            "exact" analysis over them would be a silent lie.
        ConfigurationError: When the policy is not tableable at all.
    """
    budget = EAGER_STATE_BUDGET if eager_budget is None else eager_budget
    estimate = estimated_state_count(policy_name, ways, **kwargs)
    if estimate is None or estimate > budget:
        raise LeakageAnalysisError(
            f"tables for {policy_name!r} at {ways} ways are open "
            f"(estimated {estimate} states > eager budget {budget}); "
            f"exact analysis requires an eagerly-closed state space — "
            f"raise eager_budget to at least {estimate} to analyze, "
            f"or accept the refusal",
            policy=policy_name,
            ways=ways,
            estimated_states=estimate,
            eager_budget=budget,
        )
    tables = compile_tables(policy_name, ways, eager_budget=budget, **kwargs)
    if not tables.is_closed:
        raise LeakageAnalysisError(
            f"tables for {policy_name!r} at {ways} ways were compiled "
            f"lazily and are not closed",
            policy=policy_name,
            ways=ways,
            estimated_states=estimate,
            eager_budget=budget,
        )
    return tables


def build_system(
    policy_name: str,
    ways: int,
    defense: str = "none",
    eager_budget: Optional[int] = None,
    **kwargs: Any,
) -> ClosedTransitionSystem:
    """Snapshot a closed table set into a dense transition system."""
    if defense not in DEFENSES:
        raise LeakageAnalysisError(
            f"unknown defense {defense!r}; choose from {list(DEFENSES)}",
            policy=policy_name,
            ways=ways,
        )
    tables = require_closed(policy_name, ways, eager_budget, **kwargs)
    n = tables.state_count
    # The dense form is shared with the batch engine: PolicyTables
    # memoises one TableArrays snapshot per closed table set, and this
    # system is a frozen (tuple-typed, defense-adjusted) view of it.
    arrays = tables.as_arrays()
    if defense == "no-hit-update":
        # Hits leave replacement state untouched: the hit channel the
        # paper exploits (Section IV) is closed by construction.
        touch = tuple(s for s in range(n) for _ in range(ways))
    else:
        touch = tuple(int(s) for s in arrays.touch)
    return ClosedTransitionSystem(
        policy_name=policy_name,
        display_name=tables.display_name,
        ways=ways,
        defense=defense,
        n=n,
        initial=arrays.initial,
        prepared=arrays.prepared,
        touch=touch,
        fill=tuple(int(s) for s in arrays.fill),
        victim_way=tuple(int(w) for w in arrays.victim_way),
        evict_to=tuple(int(s) for s in arrays.evict_to),
        state_bits=tables.state_bits,
    )


def resting_reachable_count(
    policy_name: str,
    ways: int,
    include_flush: bool = False,
    eager_budget: Optional[int] = None,
    **kwargs: Any,
) -> int:
    """States reachable between complete accesses ("resting" states).

    The table core counts every interned snapshot, *including* the
    transient mid-victim-search states of policies whose search mutates
    state (SRRIP ages RRPVs while scanning).  This closure instead
    composes each miss into one step (victim search + fill into the
    chosen way), so it counts only the states a set can actually rest
    in between accesses.  With ``include_flush`` the lazy ``invalidate``
    table joins the alphabet — flushes can reach states ordinary
    accesses cannot, and may intern states beyond the closed core.
    """
    tables = require_closed(policy_name, ways, eager_budget, **kwargs)
    seen = {tables.initial}
    frontier = [tables.initial]
    while frontier:
        nxt: List[int] = []
        for s in frontier:
            succs = [tables.touch_to(s, w) for w in range(tables.ways)]
            succs += [tables.fill_to(s, w) for w in range(tables.ways)]
            way, after = tables.victim_of(s)
            succs.append(tables.fill_to(after, way))
            if include_flush:
                succs += [
                    tables.invalidate_to(s, w) for w in range(tables.ways)
                ]
            for t in succs:
                if t not in seen:
                    seen.add(t)
                    nxt.append(t)
        frontier = nxt
    return len(seen)


# -- reachability ---------------------------------------------------------


def absorbed_levels(
    system: ClosedTransitionSystem,
    start: int,
    alphabet: str = "touch",
    max_depth: Optional[int] = None,
) -> Tuple[List[int], int]:
    """Cumulative absorbed-state counts per access-sequence length.

    ``absorbed[k]`` is the number of distinct states a sender can drive
    the policy into using at most ``k`` accesses from ``start`` — the
    Cañones–Köpf–Reineke *absorbed secrets* at horizon ``k``.  With the
    ``"touch"`` alphabet the sender is the paper's stealth sender (hits
    only, never causing an eviction); ``"touch+evict"`` additionally
    allows misses.

    Returns ``(levels, converged_at)`` where ``levels[0] == 1`` (just
    the start state), the last entry is the fixed point, and
    ``converged_at`` is the smallest horizon reaching it.
    """
    ways = system.ways
    seen = {start}
    frontier = [start]
    levels = [1]
    depth = 0
    while frontier and (max_depth is None or depth < max_depth):
        nxt: List[int] = []
        for s in frontier:
            base = s * ways
            for w in range(ways):
                t = system.touch[base + w]
                if t not in seen:
                    seen.add(t)
                    nxt.append(t)
            if alphabet == "touch+evict":
                t = system.evict_to[s]
                if t not in seen:
                    seen.add(t)
                    nxt.append(t)
        depth += 1
        frontier = nxt
        if nxt:
            levels.append(len(seen))
    return levels, len(levels) - 1


# -- observation-equivalence refinement -----------------------------------


def _moore_refine(
    n: int,
    initial_block: Sequence[int],
    successor_tables: Sequence[Sequence[int]],
) -> Tuple[List[int], int]:
    """Coarsest Moore partition: same outputs, same successor blocks.

    ``initial_block[s]`` is the (already-canonicalised) output class of
    state ``s``; ``successor_tables`` holds one ``state -> state`` array
    per input symbol.  Returns ``(block_id per state, class count)``.
    The refinement reaches its fixed point in at most ``n`` rounds; in
    practice distinguishing experiments for replacement policies are
    short and it converges in a handful.
    """
    block = list(initial_block)
    count = len(set(block))
    while True:
        signatures: Dict[Tuple[int, ...], int] = {}
        new_block = [0] * n
        for s in range(n):
            sig = (block[s],) + tuple(
                block[table[s]] for table in successor_tables
            )
            idx = signatures.get(sig)
            if idx is None:
                idx = len(signatures)
                signatures[sig] = idx
            new_block[s] = idx
        if len(signatures) == count:
            return new_block, count
        block = new_block
        count = len(signatures)


def victim_observer_partition(
    system: ClosedTransitionSystem,
) -> Tuple[List[int], int]:
    """Observation-equivalence under the victim-way observer.

    The attacker owns every line, may touch any way (always a hit) and
    force an eviction with a fresh line; each eviction reveals the
    chosen victim way (the attacker sees *which of its lines* missed —
    the paper's Algorithm 2 receiver).  Two policy states are
    equivalent iff no such strategy tells them apart.
    """
    n = system.n
    ways = system.ways
    tables: List[List[int]] = []
    for w in range(ways):
        tables.append([system.touch[s * ways + w] for s in range(n)])
    tables.append(list(system.evict_to))
    return _moore_refine(n, system.victim_way, tables)


@dataclass
class HitMissPartition:
    """Result of the marked-line product refinement.

    Attributes:
        block_of_state: Equivalence class of ``(s, marked_way)`` for
            each policy state ``s``, with the marked (target) line at
            the canonical post-prepare way — i.e. which policy states
            the Algorithm 1 receiver can tell apart.
        classes_over_states: Number of distinct classes in
            ``block_of_state``.
        product_classes: Classes over the whole product automaton.
        marked_way: Canonical target way after the prepare phase.
        start_state: Policy state after the prepare phase (prime the
            set, then install the target line) — the sender's starting
            point for absorption.
    """

    block_of_state: List[int] = field(default_factory=list)
    classes_over_states: int = 0
    product_classes: int = 0
    marked_way: int = 0
    start_state: int = 0


def hitmiss_observer_partition(
    system: ClosedTransitionSystem,
) -> HitMissPartition:
    """Observation-equivalence under the hit/miss (timing) observer.

    Models the paper's Algorithm 1 receiver exactly: one shared target
    line at a (hidden, evolving) way ``m``, two inputs —

    * ``check``: re-access the target.  Hit if resident (state follows
      the touch table); miss if evicted (victim search runs, the target
      is re-installed at the chosen way).
    * ``evict``: access a fresh line, always a miss; the chosen victim
      way is *not* observed, but if it held the target the target is
      now evicted.

    The product automaton has states ``(policy state, m)`` with ``m`` a
    way index or :data:`EVICTED`; observations are the hit/miss bit per
    input.  Partition refinement over the product yields the coarsest
    equivalence; states are then compared with the target at the
    canonical post-prepare way.
    """
    n = system.n
    ways = system.ways
    marks = ways + 1  # way 0..ways-1, or EVICTED at index `ways`
    size = n * marks

    check_to = [0] * size
    evict_to = [0] * size
    # Output bit of `check` (1 = hit); `evict` always observes a miss.
    check_obs = [0] * size
    for s in range(n):
        v = system.victim_way[s]
        after_evict = system.evict_to[s]
        base = s * marks
        for m in range(ways):
            i = base + m
            check_obs[i] = 1
            check_to[i] = system.touch[s * ways + m] * marks + m
            evict_to[i] = after_evict * marks + (ways if v == m else m)
        i = base + ways  # target evicted
        check_obs[i] = 0
        check_to[i] = after_evict * marks + v
        evict_to[i] = after_evict * marks + ways

    block, product_classes = _moore_refine(
        size, check_obs, (check_to, evict_to)
    )

    # Canonical prepare phase: prime ways 0..ways-1, then access the
    # target (a miss) — it lands at the victim way of the primed state.
    prepared = system.prepared
    marked_way = system.victim_way[prepared]
    start_state = system.evict_to[prepared]

    block_of_state = [block[s * marks + marked_way] for s in range(n)]
    classes_over_states = len(set(block_of_state))
    return HitMissPartition(
        block_of_state=block_of_state,
        classes_over_states=classes_over_states,
        product_classes=product_classes,
        marked_way=marked_way,
        start_state=start_state,
    )
