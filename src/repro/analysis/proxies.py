"""Invariant-checking proxies for replacement policies and cache sets.

These wrap live simulator objects and re-verify structural invariants
after every state transition, raising
:class:`~repro.common.errors.InvariantViolation` at the exact operation
that corrupted the state:

* true-LRU age stacks stay a permutation of ``0..ways-1``;
* Tree-PLRU node-bit vectors stay well-formed ({0, 1} bits, right
  length) — per domain for the DAWG-style partitioned policy;
* Bit-PLRU MRU bits stay in {0, 1} and never saturate after a touch
  (the hardware reset rule);
* SRRIP RRPVs stay within their M-bit range;
* FIFO's round-robin pointer stays in range;
* victims are in range, and (for non-domain-aware policies) invalid
  ways fill first, matching real controllers;
* PL-cache locked lines are never evicted, and per-set content
  bookkeeping balances (no duplicate resident tags, evictions reported
  exactly when a valid line was displaced).

Proxies are transparent: they hold no randomness and change no
behaviour, so a sanitized run is bit-identical to an unsanitized one —
only slower (one snapshot + check per transition).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.analysis.trace import AccessTrace
from repro.common.errors import InvariantViolation
from repro.replacement.base import ReplacementPolicy
from repro.replacement.bit_plru import BitPLRU
from repro.replacement.fifo import FIFO
from repro.replacement.partitioned import PartitionedPLRU
from repro.replacement.random_policy import RandomPolicy
from repro.replacement.rrip import SRRIP
from repro.replacement.tree_plru import TreePLRU
from repro.replacement.true_lru import TrueLRU

#: A structural problem found by a checker: (invariant id, message,
#: offending way or None).
Problem = Tuple[str, str, Optional[int]]

#: Checker signature: (policy, operation-name) -> problem or None.
PolicyChecker = Callable[[ReplacementPolicy, str], Optional[Problem]]


def _check_true_lru(policy: TrueLRU, op: str) -> Optional[Problem]:
    snapshot = policy.state_snapshot()
    if sorted(snapshot) != list(range(policy.ways)):
        return (
            "true-lru-permutation",
            f"LRU age stack {snapshot!r} is not a permutation of "
            f"0..{policy.ways - 1}",
            None,
        )
    return None


def _check_bits(bits: Sequence[int]) -> Optional[int]:
    """Index of the first non-binary entry, or None."""
    for index, bit in enumerate(bits):
        if bit not in (0, 1):
            return index
    return None


def _check_tree_plru(policy: TreePLRU, op: str) -> Optional[Problem]:
    snapshot = policy.state_snapshot()
    if len(snapshot) != policy.ways:
        return (
            "tree-plru-shape",
            f"Tree-PLRU bit vector has {len(snapshot)} entries for "
            f"{policy.ways} ways",
            None,
        )
    bad = _check_bits(snapshot[1:])
    if bad is not None:
        node = bad + 1
        return (
            "tree-plru-bits",
            f"Tree-PLRU node {node} holds {snapshot[node]!r}, not a bit",
            None,
        )
    return None


def _check_bit_plru(policy: BitPLRU, op: str) -> Optional[Problem]:
    snapshot = policy.state_snapshot()
    if len(snapshot) != policy.ways:
        return (
            "bit-plru-shape",
            f"Bit-PLRU has {len(snapshot)} MRU bits for {policy.ways} ways",
            None,
        )
    bad = _check_bits(snapshot)
    if bad is not None:
        return (
            "bit-plru-bits",
            f"MRU bit of way {bad} holds {snapshot[bad]!r}, not a bit",
            bad,
        )
    if op == "touch" and all(snapshot):
        # Hardware resets all MRU bits when the last zero would vanish
        # (paper Section II-B); all-ones after a touch means that reset
        # was lost, and the victim search would dead-end.
        return (
            "bit-plru-saturation",
            "all MRU bits set after a touch; saturation reset was lost",
            None,
        )
    return None


def _check_srrip(policy: SRRIP, op: str) -> Optional[Problem]:
    snapshot = policy.state_snapshot()
    max_rrpv = (1 << policy.rrpv_bits) - 1
    for way, rrpv in enumerate(snapshot):
        if not isinstance(rrpv, int) or not 0 <= rrpv <= max_rrpv:
            return (
                "srrip-rrpv-range",
                f"RRPV of way {way} is {rrpv!r}, outside 0..{max_rrpv}",
                way,
            )
    return None


def _check_fifo(policy: FIFO, op: str) -> Optional[Problem]:
    (pointer,) = policy.state_snapshot()
    if not isinstance(pointer, int) or not 0 <= pointer < policy.ways:
        return (
            "fifo-pointer-range",
            f"FIFO victim pointer is {pointer!r}, outside "
            f"0..{policy.ways - 1}",
            None,
        )
    return None


def _check_random(policy: RandomPolicy, op: str) -> Optional[Problem]:
    snapshot = policy.state_snapshot()
    if snapshot != ():
        return (
            "random-stateless",
            f"random policy grew state {snapshot!r}; it must stay "
            "stateless",
            None,
        )
    return None


def _check_partitioned(policy: PartitionedPLRU, op: str) -> Optional[Problem]:
    for domain, bits in policy.state_snapshot():
        count = policy.domain_ways.get(domain)
        if count is None:
            return (
                "partitioned-domains",
                f"snapshot names unknown domain {domain}",
                None,
            )
        if len(bits) != count:
            return (
                "tree-plru-shape",
                f"domain {domain} tree has {len(bits)} entries for "
                f"{count} ways",
                None,
            )
        bad = _check_bits(bits[1:])
        if bad is not None:
            return (
                "tree-plru-bits",
                f"domain {domain} tree node {bad + 1} holds "
                f"{bits[bad + 1]!r}, not a bit",
                None,
            )
    return None


#: Structural checkers by policy type; dispatch walks the MRO so
#: subclasses of a known policy inherit its checker.
POLICY_CHECKERS: Dict[Type[ReplacementPolicy], PolicyChecker] = {
    TrueLRU: _check_true_lru,
    TreePLRU: _check_tree_plru,
    BitPLRU: _check_bit_plru,
    SRRIP: _check_srrip,
    FIFO: _check_fifo,
    RandomPolicy: _check_random,
    PartitionedPLRU: _check_partitioned,
}


def checker_for(policy: ReplacementPolicy) -> Optional[PolicyChecker]:
    """The structural checker for a policy instance, if one exists.

    Table-driven policies (``repro.replacement.tables.TabledPolicy``)
    expose snapshots in their base policy's format, so they dispatch to
    the base policy's checker via ``table_base_type``.
    """
    for klass in type(policy).__mro__:
        if klass in POLICY_CHECKERS:
            return POLICY_CHECKERS[klass]
    base_type = getattr(policy, "table_base_type", None)
    if base_type is not None:
        for klass in base_type.__mro__:
            if klass in POLICY_CHECKERS:
                checker = POLICY_CHECKERS[klass]
                if hasattr(base_type, "on_fill"):
                    return checker
                # The tabled wrapper always exposes on_fill; when the
                # base policy does not (LRU family), a fill is really a
                # touch, and the checker must see it as one so rules
                # like Bit-PLRU saturation keep their full strength.
                def adapted(policy, op, _checker=checker):
                    return _checker(policy, "touch" if op == "on_fill" else op)

                return adapted
    return None


class SanitizingPolicy:
    """Transparent invariant-checking wrapper around a policy instance.

    Not a :class:`ReplacementPolicy` subclass on purpose: it implements
    the same interface by delegation (so ``CacheSet`` accepts it), but
    it is plumbing, not a policy — registering it or linting it against
    the policy contract would be a category error.

    Args:
        inner: The wrapped policy.
        set_index: Cache set this policy belongs to, for diagnostics.
        trace: Shared access trace; a fresh private one by default.
        label: Cache-level name prefixed to trace events.
    """

    def __init__(
        self,
        inner: ReplacementPolicy,
        set_index: Optional[int] = None,
        trace: Optional[AccessTrace] = None,
        label: str = "",
    ):
        if isinstance(inner, SanitizingPolicy):
            inner = inner.inner  # never stack proxies
        self.inner = inner
        self.ways = inner.ways
        self._set_index = set_index
        self._trace = trace if trace is not None else AccessTrace()
        self._label = label or type(inner).__name__
        self._checker = checker_for(inner)
        self._where = (
            f"{self._label}[set {set_index}]"
            if set_index is not None
            else self._label
        )
        self._verify("init", None)

    # -- the ReplacementPolicy interface, checked ----------------------

    def touch(self, way: int) -> None:
        self._record(f"touch(way={way})")
        self.inner.touch(way)
        self._verify("touch", way)

    def victim(self, valid: Optional[Sequence[bool]] = None) -> int:
        choice = self.inner.victim(valid)
        self._record(f"victim() -> {choice}")
        self._verify_victim(choice, valid)
        self._verify("victim", choice)
        return choice

    def invalidate(self, way: int) -> None:
        self._record(f"invalidate(way={way})")
        self.inner.invalidate(way)
        self._verify("invalidate", way)

    def reset(self) -> None:
        self._record("reset()")
        self.inner.reset()
        self._verify("reset", None)

    def state_snapshot(self):
        return self.inner.state_snapshot()

    def state_restore(self, snapshot) -> None:
        self._record(f"state_restore({snapshot!r})")
        self.inner.state_restore(snapshot)
        self._verify("restore", None)

    @property
    def state_bits(self) -> int:
        return self.inner.state_bits

    def __getattr__(self, name: str):
        # Only consulted for names the proxy does not define; exposes
        # optional protocol extensions (on_fill, victim_for) exactly
        # when the wrapped policy has them, with checks attached.
        attr = getattr(self.inner, name)
        if name == "on_fill":

            def checked_on_fill(way: int, _fn=attr):
                self._record(f"on_fill(way={way})")
                result = _fn(way)
                self._verify("on_fill", way)
                return result

            return checked_on_fill
        if name == "victim_for":

            def checked_victim_for(
                domain: int,
                valid: Optional[Sequence[bool]] = None,
                _fn=attr,
            ):
                choice = _fn(domain, valid)
                self._record(f"victim_for(domain={domain}) -> {choice}")
                self._verify_victim(choice, valid=None)
                self._verify("victim", choice)
                return choice

            return checked_victim_for
        return attr

    def __repr__(self) -> str:
        return f"SanitizingPolicy({self.inner!r})"

    # -- checking machinery --------------------------------------------

    def _record(self, event: str) -> None:
        self._trace.record(f"{self._where}.{event}")

    def _raise(
        self, invariant: str, message: str, way: Optional[int]
    ) -> None:
        raise InvariantViolation(
            f"{self._where}: {message}",
            invariant=invariant,
            set_index=self._set_index,
            way=way,
            trace=self._trace.tail(),
        )

    def _verify(self, op: str, way: Optional[int]) -> None:
        if self._checker is None:
            return
        problem = self._checker(self.inner, op)
        if problem is not None:
            invariant, message, bad_way = problem
            self._raise(invariant, message, bad_way if bad_way is not None else way)

    def _verify_victim(
        self, choice: int, valid: Optional[Sequence[bool]]
    ) -> None:
        if not isinstance(choice, int) or not 0 <= choice < self.ways:
            self._raise(
                "victim-range",
                f"victim {choice!r} outside 0..{self.ways - 1}",
                choice if isinstance(choice, int) else None,
            )
        # Hardware fills invalid ways first.  Domain-aware policies
        # (victim_for) legitimately confine the search to their own way
        # range, so the global check applies only to plain policies.
        if (
            valid is not None
            and not all(valid)
            and not hasattr(self.inner, "victim_for")
        ):
            expected = next(i for i, v in enumerate(valid) if not v)
            if choice != expected:
                self._raise(
                    "invalid-way-first",
                    f"victim {choice} but way {expected} is invalid and "
                    "must fill first",
                    choice,
                )


def sanitize_cache_set(
    cache_set,
    set_index: Optional[int] = None,
    trace: Optional[AccessTrace] = None,
    label: str = "",
):
    """Wrap one :class:`~repro.cache.cache_set.CacheSet` in checks.

    The set's policy is replaced by a :class:`SanitizingPolicy` and its
    ``install`` method is wrapped to enforce the cache-level invariants
    (lock honoured, content bookkeeping balanced).  Idempotent.
    """
    if trace is None:
        trace = AccessTrace()
    if isinstance(cache_set.policy, SanitizingPolicy):
        return cache_set
    cache_set.policy = SanitizingPolicy(
        cache_set.policy, set_index=set_index, trace=trace, label=label
    )
    where = f"{label or 'cache'}[set {set_index}]"
    original_install = cache_set.install

    def checked_install(way, tag, address, dirty=False):
        line = cache_set.lines[way]
        was_valid = line.valid
        was_locked = line.locked
        old_address = line.address
        if was_valid and was_locked:
            raise InvariantViolation(
                f"{where}: fill evicts a locked line "
                f"(tag={line.tag:#x})",
                invariant="pl-lock-eviction",
                set_index=set_index,
                way=way,
                trace=trace.tail(),
            )
        evicted = original_install(way, tag, address, dirty=dirty)
        expected = old_address if was_valid else None
        if evicted != expected:
            raise InvariantViolation(
                f"{where}: install reported eviction of "
                f"{evicted!r}, expected {expected!r}",
                invariant="eviction-accounting",
                set_index=set_index,
                way=way,
                trace=trace.tail(),
            )
        tags = [l.tag for l in cache_set.lines if l.valid]
        if len(tags) != len(set(tags)):
            raise InvariantViolation(
                f"{where}: duplicate resident tag after install; "
                "lookups are ambiguous",
                invariant="duplicate-tag",
                set_index=set_index,
                way=way,
                trace=trace.tail(),
            )
        trace.record(f"{where}.install(way={way}, tag={tag:#x})")
        return evicted

    cache_set.install = checked_install
    return cache_set


def sanitize_cache(cache, trace: Optional[AccessTrace] = None):
    """Wrap every set of a :class:`SetAssociativeCache`-like object."""
    if trace is None:
        trace = AccessTrace()
    label = getattr(getattr(cache, "config", None), "name", "") or "cache"
    for index, cache_set in enumerate(cache.sets):
        sanitize_cache_set(cache_set, set_index=index, trace=trace, label=label)
    return cache
