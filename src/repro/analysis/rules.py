"""Built-in lint rules and the pluggable rule registry.

Each rule enforces one repo-wide structural invariant:

``no-direct-random``
    All randomness flows through ``repro.common.rng``; a stray
    ``import random`` gives a component its own unseeded stream and
    silently breaks whole-experiment reproducibility from one seed.

``no-wallclock``
    ``time.time()`` / ``datetime.now()`` readings leak host wall-clock
    into simulated results.  Simulated time comes from the scheduler;
    duration measurement uses ``time.monotonic`` (allowed).

``no-cycle-arithmetic``
    Thread cycle accounting (``ready_at``, ``_slept_from``) is written
    only by the scheduler/machine layer (``repro.sim``).  Anything else
    mutating it bypasses fault-stall charging and breaks the
    "cycle charges never go backwards" runtime invariant.  The
    fast-path engine (``repro.sim.fastpath``) is deliberately *not*
    exempt: it is cache machinery that merely lives under the package,
    and it must not touch cycle accounting.

``policy-contract``
    Every ``ReplacementPolicy`` subclass implements the full base
    contract (``touch``, ``victim``, ``state_snapshot``,
    ``state_restore``, ``state_bits``) so snapshot/restore-based tests
    and the sanitizer proxies work on every policy.

``policy-registered``
    Every ``ReplacementPolicy`` subclass is reachable through
    ``POLICY_REGISTRY`` — an unregistered policy is dead code that
    experiments can never sweep.

``experiment-registered``
    Every module-level ``run_*`` function in ``repro.experiments`` is
    decorated with ``@register(...)`` so ``python -m repro run all``
    and the EXPERIMENTS.md generator actually see it.

``fault-declares-injection``
    Every ``FaultModel`` subclass declares its ``injection_points`` so
    readers (and the injector's runtime validation) know which of the
    three hooks the model uses.

``no-bare-pool``
    Process fan-out goes through the supervised executor
    (``repro.experiments.supervisor``), which survives worker crashes,
    hangs, and signals.  A bare ``multiprocessing.Pool`` elsewhere
    reintroduces the failure mode this repo already paid to remove:
    one dead worker aborts the whole batch.

``metric-registered``
    Every metric name emitted as a string literal
    (``.counter("...")``, ``.gauge("...")``, ``.histogram("...")``)
    is declared in ``repro.obs.catalog.METRIC_CATALOG``.  The registry
    enforces this at runtime too, but only on code paths a test
    happens to execute; the lint rule rejects the typo at review time.

``no-unbounded-queue``
    Every in-process queue (``asyncio.Queue``, ``queue.Queue`` and
    their Lifo/Priority variants) is constructed with an explicit
    ``maxsize``.  An unbounded queue is where backpressure goes to
    die: producers never block, memory grows until the OOM killer
    makes the load-shedding decision for you.  Multiprocessing queues
    are exempt (the supervised executor owns and drains them).

``no-scalar-loop-in-batch``
    The vectorized batch engine (``repro.sim.batch``) exists to keep
    the per-trial axis out of the Python interpreter; a ``for`` loop
    over trials inside it silently reintroduces the scalar cost the
    module was built to remove.  The deliberate open-table fallback
    carries an explicit ``# repro: allow(no-scalar-loop-in-batch)``.

``no-blocking-call-in-async``
    No synchronous blocking call (``time.sleep``, builtin ``open``,
    blocking socket constructors, any ``subprocess`` API) inside an
    ``async def`` body in the service layer (``repro.service``).  One
    blocking call inside the event loop stalls *every* connection —
    admission control, heartbeats, and drains included.  Blocking work
    belongs in a nested sync ``def`` handed to an executor (which the
    rule deliberately skips).

Rules register through :func:`rule`; external code can add more the
same way before calling the engine.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import FileContext, Project
from repro.obs.catalog import METRIC_CATALOG

#: The three runtime hooks a fault model may use (mirrors
#: ``repro.faults.base.FaultModel``).
FAULT_INJECTION_POINTS = frozenset({"time-advance", "tsc", "observation"})

#: Methods/attributes every ReplacementPolicy subclass must provide.
POLICY_CONTRACT = (
    "touch",
    "victim",
    "state_snapshot",
    "state_restore",
    "state_bits",
)


@dataclass(frozen=True)
class LintRule:
    """One registered rule.

    Attributes:
        rule_id: Stable identifier used in reports and allow comments.
        scope: ``"file"`` (fn receives a :class:`FileContext`) or
            ``"project"`` (fn receives a :class:`Project`).
        description: One-line summary for ``python -m repro.analysis
            rules``.
        fn: The check itself.
    """

    rule_id: str
    scope: str
    description: str
    fn: Callable


RULE_REGISTRY: Dict[str, LintRule] = {}


def rule(rule_id: str, scope: str = "file", description: str = ""):
    """Decorator registering a lint rule under ``rule_id``."""
    if scope not in ("file", "project"):
        raise ValueError(f"scope must be 'file' or 'project', got {scope!r}")

    def wrap(fn: Callable) -> Callable:
        RULE_REGISTRY[rule_id] = LintRule(
            rule_id=rule_id,
            scope=scope,
            description=description or (fn.__doc__ or "").strip().split("\n")[0],
            fn=fn,
        )
        return fn

    return wrap


def resolve_rules(
    rule_ids: Optional[Sequence[str]] = None,
) -> Tuple[List[LintRule], List[LintRule]]:
    """Split the chosen rules into (file-scope, project-scope) lists."""
    if rule_ids is None:
        chosen = [RULE_REGISTRY[k] for k in sorted(RULE_REGISTRY)]
    else:
        unknown = [k for k in rule_ids if k not in RULE_REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown rule(s) {unknown}; known: {sorted(RULE_REGISTRY)}"
            )
        chosen = [RULE_REGISTRY[k] for k in rule_ids]
    return (
        [r for r in chosen if r.scope == "file"],
        [r for r in chosen if r.scope == "project"],
    )


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _base_names(node: ast.ClassDef) -> Set[str]:
    """Names of a class's bases (``Name`` and dotted ``Attribute``)."""
    names: Set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _class_member_names(node: ast.ClassDef) -> Set[str]:
    """Names defined directly in a class body (defs and assignments)."""
    names: Set[str] = set()
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(item.name)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name):
                names.add(item.target.id)
    return names


def _subclasses_of(project: Project, root: str) -> List[Tuple[FileContext, ast.ClassDef]]:
    """All classes transitively deriving (by name) from ``root``."""
    classes: List[Tuple[FileContext, ast.ClassDef]] = []
    for ctx in project.files:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                classes.append((ctx, node))
    known = {root}
    result: List[Tuple[FileContext, ast.ClassDef]] = []
    # Iterate to a fixed point so grandchildren count too.
    changed = True
    while changed:
        changed = False
        for ctx, node in classes:
            if node.name in known:
                continue
            if _base_names(node) & known:
                known.add(node.name)
                result.append((ctx, node))
                changed = True
    return result


# ----------------------------------------------------------------------
# File-scope rules
# ----------------------------------------------------------------------


@rule(
    "no-direct-random",
    description="stdlib random imported outside repro.common.rng",
)
def check_no_direct_random(ctx: FileContext) -> None:
    if ctx.module == "repro.common.rng":
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    ctx.report(
                        "no-direct-random",
                        node,
                        "direct `import random` bypasses seeded RNG plumbing",
                        hint="use repro.common.rng.make_rng/spawn_rng",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                ctx.report(
                    "no-direct-random",
                    node,
                    "direct `from random import ...` bypasses seeded "
                    "RNG plumbing",
                    hint="use repro.common.rng.make_rng/spawn_rng",
                )


def _is_wallclock_call(node: ast.Call) -> Optional[str]:
    """Return the dotted name when ``node`` reads host wall-clock."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "time" and isinstance(func.value, ast.Name):
        if func.value.id == "time":
            return "time.time()"
    if func.attr in ("now", "utcnow", "today"):
        value = func.value
        if isinstance(value, ast.Name) and value.id in ("datetime", "date"):
            return f"{value.id}.{func.attr}()"
        if (
            isinstance(value, ast.Attribute)
            and value.attr in ("datetime", "date")
            and isinstance(value.value, ast.Name)
            and value.value.id == "datetime"
        ):
            return f"datetime.{value.attr}.{func.attr}()"
    return None


@rule(
    "no-wallclock",
    description="host wall-clock read (time.time/datetime.now)",
)
def check_no_wallclock(ctx: FileContext) -> None:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            dotted = _is_wallclock_call(node)
            if dotted:
                ctx.report(
                    "no-wallclock",
                    node,
                    f"{dotted} leaks host wall-clock into the simulator",
                    hint="simulated time comes from the scheduler; use "
                    "time.monotonic for duration measurement",
                )


#: Module the scalar-loop rule polices: the one whose whole point is
#: that the trial axis lives in numpy, not in Python loops.
_BATCH_MODULE = "repro.sim.batch"


def _mentions_trial(node: ast.AST) -> bool:
    """Whether any name/attribute in the expression names the trial axis."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "trial" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "trial" in sub.attr.lower():
            return True
    return False


@rule(
    "no-scalar-loop-in-batch",
    description="per-trial Python loop inside the vectorized batch engine",
)
def check_no_scalar_loop_in_batch(ctx: FileContext) -> None:
    """Flag ``for`` loops over the trial axis in ``repro.sim.batch``.

    Loops over bit positions or channel addresses are fine (those axes
    are short and schedule-ordered); a loop whose target or iterable
    names trials is the scalar path the module exists to avoid.  A
    deliberate fallback (the open-table path) is opted out with
    ``# repro: allow(no-scalar-loop-in-batch)`` on the loop line.
    """
    if ctx.module != _BATCH_MODULE:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.For):
            continue
        if _mentions_trial(node.target) or _mentions_trial(node.iter):
            ctx.report(
                "no-scalar-loop-in-batch",
                node,
                "Python for-loop over the trial axis in the batch engine",
                hint="vectorize with masked numpy gathers over the trial "
                "axis; a deliberate scalar fallback takes "
                "`# repro: allow(no-scalar-loop-in-batch)`",
            )


#: Attributes owned by the scheduler layer's cycle accounting.
_CYCLE_ATTRS = ("ready_at", "_slept_from")


@rule(
    "no-cycle-arithmetic",
    description="thread cycle accounting mutated outside repro.sim",
)
def check_no_cycle_arithmetic(ctx: FileContext) -> None:
    # The scheduler/machine layer owns cycle accounting — but the
    # fast-path engine under repro.sim is cache machinery, not a
    # scheduler, so it stays covered like any other module.
    if ctx.module.startswith("repro.sim") and ctx.module != "repro.sim.fastpath":
        return
    for node in ast.walk(ctx.tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr in _CYCLE_ATTRS:
                ctx.report(
                    "no-cycle-arithmetic",
                    node,
                    f"write to `{target.attr}` outside the scheduler layer",
                    hint="cycle charging belongs to repro.sim schedulers; "
                    "use scheduler/machine APIs instead",
                )


@rule(
    "policy-contract",
    description="ReplacementPolicy subclass missing base-contract members",
)
def check_policy_contract(ctx: FileContext) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if "ReplacementPolicy" not in _base_names(node):
            continue
        members = _class_member_names(node)
        missing = [name for name in POLICY_CONTRACT if name not in members]
        if missing:
            ctx.report(
                "policy-contract",
                node,
                f"policy {node.name} missing contract member(s): "
                f"{', '.join(missing)}",
                hint="implement the full ReplacementPolicy contract so "
                "snapshot tests and sanitizer proxies cover this policy",
            )


@rule(
    "experiment-registered",
    description="run_* experiment function missing @register decorator",
)
def check_experiment_registered(ctx: FileContext) -> None:
    if not ctx.module.startswith("repro.experiments."):
        return
    if ctx.module in ("repro.experiments.base", "repro.experiments.runner"):
        return
    for node in ctx.tree.body:  # module level only
        if not isinstance(node, ast.FunctionDef):
            continue
        if not node.name.startswith("run_"):
            continue
        registered = False
        for decorator in node.decorator_list:
            call = decorator if isinstance(decorator, ast.Call) else None
            func = call.func if call else decorator
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name == "register":
                registered = True
        if not registered:
            ctx.report(
                "experiment-registered",
                node,
                f"experiment function {node.name} is not registered",
                hint="decorate with @register(\"<experiment-id>\") from "
                "repro.experiments.base",
            )


@rule(
    "fault-declares-injection",
    description="FaultModel subclass missing injection_points declaration",
)
def check_fault_declares_injection(ctx: FileContext) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not (_base_names(node) & {"FaultModel", "PoissonFault"}):
            continue
        if "injection_points" not in _class_member_names(node):
            ctx.report(
                "fault-declares-injection",
                node,
                f"fault model {node.name} does not declare its "
                "injection_points",
                hint="add `injection_points = (...)` with values from "
                f"{sorted(FAULT_INJECTION_POINTS)}",
            )


#: The one module allowed to build raw process pools/processes: the
#: supervised executor, which wraps them in crash/hang/signal handling.
_POOL_OWNER = "repro.experiments.supervisor"


@rule(
    "no-bare-pool",
    description="multiprocessing.Pool used outside the supervised executor",
)
def check_no_bare_pool(ctx: FileContext) -> None:
    if ctx.module == _POOL_OWNER:
        return
    pool_aliases: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module in ("multiprocessing", "multiprocessing.pool"):
                for alias in node.names:
                    if alias.name == "Pool":
                        pool_aliases.add(alias.asname or alias.name)
                        ctx.report(
                            "no-bare-pool",
                            node,
                            "Pool imported from multiprocessing outside "
                            "the supervised executor",
                            hint="use repro.experiments.supervisor."
                            "SupervisedExecutor (or run_many(jobs=N)); "
                            "it survives worker crashes and signals",
                        )
    for node in ast.walk(ctx.tree):
        func = node.func if isinstance(node, ast.Call) else None
        if func is None:
            continue
        if isinstance(func, ast.Attribute) and func.attr == "Pool":
            # multiprocessing.Pool(...), mp.Pool(...), ctx.Pool(...)
            ctx.report(
                "no-bare-pool",
                node,
                "bare multiprocessing Pool constructed outside the "
                "supervised executor",
                hint="use repro.experiments.supervisor.SupervisedExecutor "
                "(or run_many(jobs=N)); it survives worker crashes "
                "and signals",
            )
        elif isinstance(func, ast.Name) and func.id in pool_aliases:
            ctx.report(
                "no-bare-pool",
                node,
                "bare multiprocessing Pool constructed outside the "
                "supervised executor",
                hint="use repro.experiments.supervisor.SupervisedExecutor "
                "(or run_many(jobs=N)); it survives worker crashes "
                "and signals",
            )


#: Registry factory methods whose first argument is a metric name.
_METRIC_FACTORIES = ("counter", "gauge", "histogram")


@rule(
    "metric-registered",
    description="metric name emitted that is absent from METRIC_CATALOG",
)
def check_metric_registered(ctx: FileContext) -> None:
    # The catalogue module itself is the declaration site, and the
    # registry's own tests exercise rejection paths with bogus names.
    if ctx.module == "repro.obs.catalog":
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _METRIC_FACTORIES:
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not isinstance(first, ast.Constant) or not isinstance(
            first.value, str
        ):
            continue
        name = first.value
        if name in METRIC_CATALOG:
            continue
        ctx.report(
            "metric-registered",
            node,
            f"metric {name!r} is not declared in METRIC_CATALOG",
            hint="add a MetricSpec to repro/obs/catalog.py (the registry "
            "would reject this name at runtime anyway)",
        )


#: In-process queue classes that accept (and should get) a maxsize.
_QUEUE_CLASSES = ("Queue", "LifoQueue", "PriorityQueue")

#: Modules whose queue constructors the rule covers.  Multiprocessing
#: queues are deliberately absent: the supervised executor owns them.
_QUEUE_MODULES = ("asyncio", "queue")


def _has_maxsize(node: ast.Call) -> bool:
    """True when the queue constructor pins a capacity."""
    if node.args:
        return True
    return any(kw.arg == "maxsize" for kw in node.keywords)


@rule(
    "no-unbounded-queue",
    description="asyncio/queue Queue constructed without a maxsize bound",
)
def check_no_unbounded_queue(ctx: FileContext) -> None:
    queue_aliases: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module in _QUEUE_MODULES:
                for alias in node.names:
                    if alias.name in _QUEUE_CLASSES:
                        queue_aliases.add(alias.asname or alias.name)
    for node in ast.walk(ctx.tree):
        func = node.func if isinstance(node, ast.Call) else None
        if func is None:
            continue
        flagged = False
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _QUEUE_CLASSES
            and isinstance(func.value, ast.Name)
            and func.value.id in _QUEUE_MODULES
        ):
            # asyncio.Queue(...), queue.Queue(...), queue.LifoQueue(...)
            flagged = True
        elif isinstance(func, ast.Name) and func.id in queue_aliases:
            flagged = True
        if flagged and not _has_maxsize(node):
            ctx.report(
                "no-unbounded-queue",
                node,
                "queue constructed without a maxsize: producers will "
                "never feel backpressure",
                hint="pass an explicit maxsize (and handle QueueFull by "
                "shedding), or `# repro: allow(no-unbounded-queue)` "
                "with a stated reason",
            )


#: Module prefix the async-blocking rule polices: the asyncio service.
_ASYNC_SCOPE = "repro.service"

#: ``module -> attribute`` calls that block the event loop.
_BLOCKING_ATTR_CALLS = {
    "time": {"sleep"},
    "socket": {"create_connection", "socket", "socketpair"},
}


def _iter_async_body_calls(fn: ast.AsyncFunctionDef):
    """Yield Call nodes in an async def, skipping nested sync defs.

    A nested synchronous ``def`` is the standard way to package
    blocking work for ``run_in_executor``, so calls inside one are not
    event-loop hazards.  Nested ``async def`` bodies stay covered.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@rule(
    "no-blocking-call-in-async",
    description="blocking call (sleep/open/socket/subprocess) inside an "
    "async def in repro.service",
)
def check_no_blocking_call_in_async(ctx: FileContext) -> None:
    if not ctx.module.startswith(_ASYNC_SCOPE):
        return
    subprocess_names: Set[str] = set()
    subprocess_modules: Set[str] = {"subprocess"}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "subprocess":
                    subprocess_modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "subprocess":
            for alias in node.names:
                subprocess_names.add(alias.asname or alias.name)
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        for call in _iter_async_body_calls(fn):
            func = call.func
            blocked = None
            if isinstance(func, ast.Name):
                if func.id == "open":
                    blocked = "open() performs blocking file I/O"
                elif func.id in subprocess_names:
                    blocked = f"subprocess call {func.id}() blocks"
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                owner, attr = func.value.id, func.attr
                if attr in _BLOCKING_ATTR_CALLS.get(owner, ()):
                    blocked = f"{owner}.{attr}() blocks the event loop"
                elif owner in subprocess_modules:
                    blocked = f"subprocess call {owner}.{attr}() blocks"
            if blocked:
                ctx.report(
                    "no-blocking-call-in-async",
                    call,
                    f"{blocked} inside async def {fn.name}: one stalled "
                    "coroutine stalls every connection",
                    hint="await the asyncio equivalent (asyncio.sleep, "
                    "open_connection, create_subprocess_exec) or move "
                    "the work into a sync def run via an executor",
                )


# ----------------------------------------------------------------------
# Project-scope rules
# ----------------------------------------------------------------------


def _registry_policy_names(ctx: FileContext) -> Optional[Set[str]]:
    """Class names referenced in POLICY_REGISTRY's dict literal."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):  # POLICY_REGISTRY: Dict[...] = {}
            targets = [node.target]
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "POLICY_REGISTRY"
            for t in targets
        ):
            continue
        if node.value is None or not isinstance(node.value, ast.Dict):
            return set()
        names: Set[str] = set()
        for value in node.value.values:
            if isinstance(value, ast.Name):
                names.add(value.id)
            elif isinstance(value, ast.Attribute):
                names.add(value.attr)
        return names
    return None


@rule(
    "policy-registered",
    scope="project",
    description="ReplacementPolicy subclass absent from POLICY_REGISTRY",
)
def check_policy_registered(project: Project) -> None:
    registry_names: Optional[Set[str]] = None
    registry_seen = False
    for ctx in project.files:
        names = _registry_policy_names(ctx)
        if names is not None:
            registry_seen = True
            registry_names = (registry_names or set()) | names
    if not registry_seen:
        # Tree under lint does not contain the registry module (e.g. a
        # single-file invocation): nothing to cross-check.
        return
    for ctx, node in _subclasses_of(project, "ReplacementPolicy"):
        if node.name.startswith("_"):
            continue
        if node.name not in registry_names:
            ctx.report(
                "policy-registered",
                node,
                f"policy {node.name} is not in POLICY_REGISTRY",
                hint="register it in repro/replacement/__init__.py so "
                "experiments can select it by name",
            )
