"""Simulator invariant toolkit: static lint pass + runtime sanitizer.

The paper's channels exist only because replacement-state metadata
obeys strict structural invariants (tree-PLRU bit vectors, true-LRU age
permutations, PL-cache locks); a silently corrupted policy model
invalidates every downstream BER/capacity number.  This package checks
those invariants by machine, at two layers:

* **Static** — ``python -m repro.analysis lint src/repro`` runs an
  AST-based lint pass with a pluggable rule registry
  (:mod:`repro.analysis.rules`): seeded-RNG discipline, no host
  wall-clock, cycle accounting confined to the scheduler layer, policy
  and experiment and fault-model contracts.  Findings report
  ``file:line``, a rule id, and a fix hint; an inline
  ``# repro: allow(<rule>)`` comment suppresses one line.

* **Runtime** — ``--sanitize`` (CLI) / ``Machine(sanitize=True)``
  wraps caches, replacement policies, and schedulers in
  invariant-checking proxies (:mod:`repro.analysis.proxies`,
  :mod:`repro.analysis.sanitize`) that raise a structured
  :class:`~repro.common.errors.InvariantViolation` — with the offending
  set/way and the access-trace tail — at the exact transition that
  corrupted the state.

* **Leakage** — ``python -m repro.analysis leakage`` computes exact
  information-flow metrics (reachable states, distinguishing-state
  partitions under hit/miss and victim-way observers, absorbed secrets,
  channel-capacity bounds) directly from the compiled policy tables —
  zero simulation (:mod:`repro.analysis.leakage`,
  :mod:`repro.analysis.reachability`; see ``docs/LEAKAGE.md``).

See ``docs/ANALYSIS.md`` for the rule catalogue and the cost model.
"""

from repro.analysis.leakage import (
    ANALYTIC_POLICIES,
    LeakageReport,
    PolicyLeakage,
    analyze_matrix,
    analyze_policy,
    diff_reports,
)
from repro.analysis.lint import (
    FileContext,
    LintFinding,
    Project,
    assert_clean,
    lint_paths,
    lint_sources,
)
from repro.analysis.proxies import (
    POLICY_CHECKERS,
    SanitizingPolicy,
    checker_for,
    sanitize_cache,
    sanitize_cache_set,
)
from repro.analysis.rules import (
    FAULT_INJECTION_POINTS,
    POLICY_CONTRACT,
    RULE_REGISTRY,
    LintRule,
    rule,
)
from repro.analysis.sanitize import (
    enable_sanitize,
    sanitize_enabled,
    sanitize_hierarchy,
    sanitize_machine,
    sanitize_scheduler,
    scoped_sanitize,
)
from repro.analysis.trace import AccessTrace

__all__ = [
    "ANALYTIC_POLICIES",
    "AccessTrace",
    "FAULT_INJECTION_POINTS",
    "LeakageReport",
    "PolicyLeakage",
    "analyze_matrix",
    "analyze_policy",
    "diff_reports",
    "FileContext",
    "LintFinding",
    "LintRule",
    "POLICY_CHECKERS",
    "POLICY_CONTRACT",
    "Project",
    "RULE_REGISTRY",
    "SanitizingPolicy",
    "assert_clean",
    "checker_for",
    "enable_sanitize",
    "lint_paths",
    "lint_sources",
    "rule",
    "sanitize_cache",
    "sanitize_cache_set",
    "sanitize_enabled",
    "sanitize_hierarchy",
    "sanitize_machine",
    "sanitize_scheduler",
    "scoped_sanitize",
]
