"""Runtime sanitizer orchestration: machines, hierarchies, schedulers.

:func:`sanitize_machine` arms an entire simulated machine with the
invariant-checking proxies from :mod:`repro.analysis.proxies` plus two
scheduler-level checks:

* **cycle monotonicity** — within one scheduler run, a thread never
  issues an operation at an earlier cycle than its previous one (cycle
  charges never go backwards);
* **non-negative charges** — no operation reports a negative cycle
  cost.

Enable it three ways:

* ``Machine(..., sanitize=True)`` — one machine;
* :func:`enable_sanitize` — process-wide, so every machine built
  afterwards is sanitized (this is what the CLI ``--sanitize`` flag
  sets before dispatching);
* ``ExperimentRunner(sanitize=True)`` — scoped to each experiment run.

Sanitizing changes no simulation behaviour and draws no randomness;
results are bit-identical, at roughly 1.5-2x slowdown on
policy-transition-heavy runs (one snapshot + structural check per
replacement-state transition).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.proxies import sanitize_cache
from repro.analysis.trace import AccessTrace
from repro.common.errors import InvariantViolation

_GLOBAL_SANITIZE = False


def enable_sanitize(enabled: bool = True) -> None:
    """Turn process-wide sanitization on (or off).

    Machines built with ``sanitize=None`` (the default) consult this
    flag, so flipping it here arms every machine an experiment builds
    without threading an option through each run function.
    """
    global _GLOBAL_SANITIZE
    _GLOBAL_SANITIZE = enabled


def sanitize_enabled() -> bool:
    """Whether process-wide sanitization is on."""
    return _GLOBAL_SANITIZE


class scoped_sanitize:
    """Context manager enabling sanitization for a ``with`` block."""

    def __enter__(self):
        self._previous = sanitize_enabled()
        enable_sanitize(True)
        return self

    def __exit__(self, *exc_info):
        enable_sanitize(self._previous)
        return False


def sanitize_hierarchy(hierarchy, trace: Optional[AccessTrace] = None):
    """Wrap every cache level of a hierarchy, sharing one trace.

    Also wraps ``hierarchy.access`` so the trace tail interleaves the
    demand stream with the policy transitions it caused.
    """
    if trace is None:
        trace = AccessTrace()
    if getattr(hierarchy, "_sanitize_trace", None) is not None:
        return hierarchy
    sanitize_cache(hierarchy.l1, trace=trace)
    sanitize_cache(hierarchy.l2, trace=trace)
    if hierarchy.llc is not None:
        sanitize_cache(hierarchy.llc, trace=trace)

    original_access = hierarchy.access

    def traced_access(access, count=True):
        kind = getattr(access.access_type, "value", access.access_type)
        trace.record(
            f"{kind} addr={access.address:#x} tid={access.thread_id}"
        )
        return original_access(access, count=count)

    hierarchy.access = traced_access
    hierarchy._sanitize_trace = trace
    return hierarchy


def sanitize_scheduler(scheduler, trace: Optional[AccessTrace] = None):
    """Attach cycle-accounting checks to one scheduler instance."""
    if trace is None:
        trace = AccessTrace()
    if getattr(scheduler, "_sanitize_trace", None) is not None:
        return scheduler
    last_issue: Dict[int, Tuple[str, float]] = {}
    original_execute = scheduler._execute
    original_run = scheduler.run

    def checked_execute(thread, op, now):
        previous = last_issue.get(id(thread))
        if previous is not None and now < previous[1]:
            raise InvariantViolation(
                f"thread {thread.name!r} issued at cycle {now:.1f} after "
                f"issuing at {previous[1]:.1f}; cycle charges went "
                "backwards",
                invariant="cycle-monotonicity",
                trace=trace.tail(),
            )
        cost = original_execute(thread, op, now)
        if cost < 0:
            raise InvariantViolation(
                f"operation {op!r} of thread {thread.name!r} charged "
                f"{cost:.1f} cycles; charges must be >= 0",
                invariant="negative-cycle-charge",
                trace=trace.tail(),
            )
        last_issue[id(thread)] = (thread.name, now)
        return cost

    def checked_run(*args, **kwargs):
        # Threads may be restarted (ready_at back to 0) between runs of
        # one scheduler; monotonicity is per run.
        last_issue.clear()
        return original_run(*args, **kwargs)

    scheduler._execute = checked_execute
    scheduler.run = checked_run
    scheduler._sanitize_trace = trace
    return scheduler


def sanitize_machine(machine, trace_depth: int = 32):
    """Arm a :class:`~repro.sim.machine.Machine` with every check.

    The hierarchy's caches, every scheduler the machine subsequently
    builds, and the shared access trace are wired together; the trace
    is exposed as ``machine.sanitize_trace``.  Idempotent.
    """
    if getattr(machine, "sanitize_trace", None) is not None:
        return machine
    trace = AccessTrace(trace_depth)
    sanitize_hierarchy(machine.hierarchy, trace=trace)

    original_ht = machine.hyper_threaded
    original_ts = machine.time_sliced

    def hyper_threaded(*args, **kwargs):
        return sanitize_scheduler(original_ht(*args, **kwargs), trace=trace)

    def time_sliced(*args, **kwargs):
        return sanitize_scheduler(original_ts(*args, **kwargs), trace=trace)

    machine.hyper_threaded = hyper_threaded
    machine.time_sliced = time_sliced
    machine.sanitize_trace = trace
    return machine
