"""Static leakage metrics over compiled replacement-policy tables.

Implements ROADMAP item 4: quantify the paper's LRU-state channel
*statically*, in the style of Cañones–Köpf–Reineke ("Security Analysis
of Cache Replacement Policies"), by walking the exact transition system
that :mod:`repro.replacement.tables` already compiles — zero simulation.

For every ``policy x associativity x defense`` cell the analyzer
reports:

* ``reachable_states`` — size of the eager closure from power-on (and
  ``flush_reachable_states``, the closure when ``invalidate`` joins the
  alphabet);
* ``distinguishable`` — observation-equivalence class counts under the
  *victim-way* observer (Algorithm 2 receiver) and the *hit/miss*
  observer (Algorithm 1 receiver, via the marked-line product
  automaton);
* ``absorbed`` — cumulative absorbed-secret counts per sender sequence
  length, for the paper's stealth hits-only sender and for a sender
  that may also miss, to their fixed points;
* ``capacity_bits`` — channel-capacity upper bounds per length:
  ``log2`` of the number of *distinguishable* states among the states
  absorbed within ``n`` accesses, per observer, with the fixed-point
  limit.

The bounds are exact upper bounds for one channel use: no receiver
strategy can extract more than ``capacity`` bits per transmission,
and for every pair of distinguishable states some strategy separates
them.  Policies outside :data:`TABLEABLE_POLICIES` get analytic
entries (``random`` is stateless toward recency; ``partitioned-plru``
isolates domains by construction); shapes whose state space exceeds
the eager budget are *refused*, not approximated — the refusal is
itself a structured entry.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, LeakageAnalysisError
from repro.analysis.reachability import (
    DEFENSES,
    build_system,
    hitmiss_observer_partition,
    resting_reachable_count,
    victim_observer_partition,
)
from repro.replacement.tables import TABLEABLE_POLICIES

#: Bump when the JSON artifact's schema or semantics change; the drift
#: checker refuses to compare across versions.
LEAKAGE_SCHEMA_VERSION = 1

#: Policies analyzed without tables, mapped to the analytic rationale.
ANALYTIC_POLICIES: Dict[str, str] = {
    "random": (
        "victim selection draws from an RNG stream, independent of the "
        "access history; replacement state absorbs no secrets and both "
        "observers see noise — capacity 0 (paper Section IX-A)"
    ),
    "partitioned-plru": (
        "DAWG-style way partitioning confines each domain's fills and "
        "victim search to its own ways; cross-domain replacement state "
        "is never shared, so cross-domain capacity is 0 by construction "
        "(paper Section IX-C)"
    ),
}

#: Registry aliases that are engines, not policies, and are skipped.
SKIPPED_POLICIES: Dict[str, str] = {
    "tabled": "engine alias for a table-compiled base policy, not a "
    "distinct replacement algorithm",
}


@dataclass
class PolicyLeakage:
    """Exact (or analytic) leakage metrics for one policy shape."""

    policy: str
    display_name: str
    ways: int
    defense: str
    mode: str  # "exact" | "analytic" | "refused"
    table_states: int = 0
    reachable_states: int = 0
    flush_reachable_states: int = 0
    state_bits: int = 0
    distinguishable: Dict[str, int] = field(default_factory=dict)
    absorbed: Dict[str, Any] = field(default_factory=dict)
    capacity_bits: Dict[str, Any] = field(default_factory=dict)
    refusal: str = ""
    notes: str = ""

    def capacity_limit(self, observer: str) -> float:
        return float(self.capacity_bits.get(f"{observer}-limit", 0.0))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "display_name": self.display_name,
            "ways": self.ways,
            "defense": self.defense,
            "mode": self.mode,
            "table_states": self.table_states,
            "reachable_states": self.reachable_states,
            "flush_reachable_states": self.flush_reachable_states,
            "state_bits": self.state_bits,
            "distinguishable": dict(self.distinguishable),
            "absorbed": dict(self.absorbed),
            "capacity_bits": dict(self.capacity_bits),
            "refusal": self.refusal,
            "notes": self.notes,
        }


def _round_bits(value: float) -> float:
    """Stable 6-decimal rounding so JSON artifacts are byte-comparable."""
    return round(value, 6)


def _capacity_series(
    absorbed_sets: Sequence[Sequence[int]],
    block_of_state: Sequence[int],
) -> List[float]:
    """log2(#distinct observation classes) among each absorbed set."""
    series = []
    for states in absorbed_sets:
        classes = len({block_of_state[s] for s in states})
        series.append(_round_bits(math.log2(classes)))
    return series


def _absorbed_sets(
    system, start: int, alphabet: str
) -> Tuple[List[int], List[List[int]]]:
    """Levels plus the concrete absorbed state set at every horizon."""
    ways = system.ways
    seen = {start}
    frontier = [start]
    sets: List[List[int]] = [[start]]
    levels = [1]
    while frontier:
        nxt: List[int] = []
        for s in frontier:
            base = s * ways
            for w in range(ways):
                t = system.touch[base + w]
                if t not in seen:
                    seen.add(t)
                    nxt.append(t)
            if alphabet == "touch+evict":
                t = system.evict_to[s]
                if t not in seen:
                    seen.add(t)
                    nxt.append(t)
        frontier = nxt
        if nxt:
            levels.append(len(seen))
            sets.append(sets[-1] + nxt)
    return levels, sets


def analyze_policy(
    policy: str,
    ways: int,
    defense: str = "none",
    eager_budget: Optional[int] = None,
    **kwargs: Any,
) -> PolicyLeakage:
    """Full static leakage analysis of one policy shape.

    Returns an ``exact`` entry for tableable policies whose state space
    closes within the eager budget, an ``analytic`` entry for policies
    whose leakage is known without tables, and a ``refused`` entry when
    exact analysis is impossible (open tables).  Unknown policy names
    raise :class:`~repro.common.errors.ConfigurationError`.
    """
    if defense not in DEFENSES:
        raise ConfigurationError(
            f"unknown defense {defense!r}; choose from {list(DEFENSES)}"
        )
    if policy in ANALYTIC_POLICIES:
        return PolicyLeakage(
            policy=policy,
            display_name=policy,
            ways=ways,
            defense=defense,
            mode="analytic",
            distinguishable={"victim-way": 1, "hit-miss": 1},
            absorbed={
                "hit-only": [1],
                "hit-only-limit": 1,
                "hit-only-converged-at": 0,
                "full-limit": 1,
            },
            capacity_bits={
                "victim-way": [0.0],
                "hit-miss": [0.0],
                "victim-way-limit": 0.0,
                "hit-miss-limit": 0.0,
            },
            notes=ANALYTIC_POLICIES[policy],
        )
    if policy in SKIPPED_POLICIES:
        raise ConfigurationError(
            f"policy {policy!r} is not analyzable: {SKIPPED_POLICIES[policy]}"
        )
    if policy not in TABLEABLE_POLICIES:
        raise ConfigurationError(
            f"unknown policy {policy!r}; analyzable policies are "
            f"{sorted(TABLEABLE_POLICIES) + sorted(ANALYTIC_POLICIES)}"
        )
    try:
        system = build_system(
            policy, ways, defense=defense, eager_budget=eager_budget, **kwargs
        )
    except LeakageAnalysisError as refusal:
        return PolicyLeakage(
            policy=policy,
            display_name=policy,
            ways=ways,
            defense=defense,
            mode="refused",
            refusal=str(refusal),
        )

    vw_block, vw_classes = victim_observer_partition(system)
    hm = hitmiss_observer_partition(system)

    hit_levels, hit_sets = _absorbed_sets(system, hm.start_state, "touch")
    full_levels, _ = _absorbed_sets(system, hm.start_state, "touch+evict")

    vw_series = _capacity_series(hit_sets, vw_block)
    hm_series = _capacity_series(hit_sets, hm.block_of_state)

    resting_states = resting_reachable_count(
        policy, ways, include_flush=False, eager_budget=eager_budget, **kwargs
    )
    flush_states = resting_reachable_count(
        policy, ways, include_flush=True, eager_budget=eager_budget, **kwargs
    )

    return PolicyLeakage(
        policy=policy,
        display_name=system.display_name,
        ways=ways,
        defense=defense,
        mode="exact",
        table_states=system.n,
        reachable_states=resting_states,
        flush_reachable_states=flush_states,
        state_bits=system.state_bits,
        distinguishable={
            "victim-way": vw_classes,
            "hit-miss": hm.classes_over_states,
            "hit-miss-product": hm.product_classes,
        },
        absorbed={
            "hit-only": hit_levels,
            "hit-only-limit": hit_levels[-1],
            "hit-only-converged-at": len(hit_levels) - 1,
            "full-limit": full_levels[-1],
        },
        capacity_bits={
            "victim-way": vw_series,
            "hit-miss": hm_series,
            "victim-way-limit": vw_series[-1],
            "hit-miss-limit": hm_series[-1],
        },
        notes=(
            "exact over the closed transition system; capacities are "
            "per-transmission upper bounds for a hits-only sender"
        ),
    )


@dataclass
class LeakageReport:
    """All analyzed cells plus the derived defense ranking."""

    entries: List[PolicyLeakage]
    ways: Tuple[int, ...]
    defenses: Tuple[str, ...]
    eager_budget: int
    skipped: Dict[str, str] = field(default_factory=dict)

    def ranking(self) -> List[Dict[str, Any]]:
        """Cells ordered worst (leakiest) first.

        Primary key is the hit/miss capacity limit (the paper's
        Algorithm 1 channel), then the victim-way limit, then name —
        refused cells sink to the bottom with null capacities.
        """
        def sort_key(entry: PolicyLeakage):
            refused = 1 if entry.mode == "refused" else 0
            return (
                refused,
                -entry.capacity_limit("hit-miss"),
                -entry.capacity_limit("victim-way"),
                entry.policy,
                entry.ways,
                entry.defense,
            )

        ranked = []
        for rank, entry in enumerate(sorted(self.entries, key=sort_key), 1):
            ranked.append(
                {
                    "rank": rank,
                    "policy": entry.policy,
                    "ways": entry.ways,
                    "defense": entry.defense,
                    "mode": entry.mode,
                    "capacity_hit_miss": (
                        None
                        if entry.mode == "refused"
                        else entry.capacity_limit("hit-miss")
                    ),
                    "capacity_victim_way": (
                        None
                        if entry.mode == "refused"
                        else entry.capacity_limit("victim-way")
                    ),
                }
            )
        return ranked

    def to_dict(self) -> Dict[str, Any]:
        return {
            "leakage_version": LEAKAGE_SCHEMA_VERSION,
            "eager_budget": self.eager_budget,
            "ways": list(self.ways),
            "defenses": list(self.defenses),
            "skipped": dict(self.skipped),
            "entries": [entry.to_dict() for entry in self.entries],
            "ranking": self.ranking(),
        }

    def to_canonical_json(self) -> str:
        """Deterministic serialization: sorted keys, fixed indentation.

        Every number in the report is either an integer or a 6-decimal
        rounding of ``log2`` of an integer, so two runs over the same
        code produce byte-identical artifacts on any platform.
        """
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render_table(self) -> str:
        """Human-readable ranked table for the CLI."""
        header = (
            f"{'rank':>4}  {'policy':<16} {'ways':>4}  {'defense':<13} "
            f"{'mode':<8} {'states':>7} {'absorbed':>8} "
            f"{'cap(hit/miss)':>13} {'cap(victim)':>11}"
        )
        lines = [header, "-" * len(header)]
        by_key = {
            (e.policy, e.ways, e.defense): e for e in self.entries
        }
        for row in self.ranking():
            entry = by_key[(row["policy"], row["ways"], row["defense"])]
            if entry.mode == "refused":
                absorbed = states = "-"
                cap_hm = cap_vw = "refused"
            else:
                states = str(entry.reachable_states) or "-"
                if entry.mode == "analytic":
                    states = "-"
                absorbed = str(entry.absorbed.get("hit-only-limit", "-"))
                cap_hm = f"{row['capacity_hit_miss']:.3f}"
                cap_vw = f"{row['capacity_victim_way']:.3f}"
            lines.append(
                f"{row['rank']:>4}  {entry.policy:<16} {entry.ways:>4}  "
                f"{entry.defense:<13} {entry.mode:<8} {states:>7} "
                f"{absorbed:>8} {cap_hm:>13} {cap_vw:>11}"
            )
        if self.skipped:
            lines.append("")
            for name in sorted(self.skipped):
                lines.append(f"skipped {name}: {self.skipped[name]}")
        return "\n".join(lines)


def analyze_matrix(
    policies: Optional[Sequence[str]] = None,
    ways: Sequence[int] = (4, 8),
    defenses: Sequence[str] = DEFENSES,
    eager_budget: Optional[int] = None,
) -> LeakageReport:
    """Analyze every requested policy x ways x defense cell.

    ``policies`` defaults to every registered policy
    (:data:`~repro.replacement.POLICY_REGISTRY`); engine aliases are
    skipped with a recorded reason rather than silently dropped.
    """
    from repro.replacement import POLICY_REGISTRY
    from repro.replacement.tables import EAGER_STATE_BUDGET

    if policies is None:
        policies = sorted(POLICY_REGISTRY)
    budget = EAGER_STATE_BUDGET if eager_budget is None else eager_budget
    skipped: Dict[str, str] = {}
    entries: List[PolicyLeakage] = []
    for policy in policies:
        if policy in SKIPPED_POLICIES:
            skipped[policy] = SKIPPED_POLICIES[policy]
            continue
        for w in ways:
            for defense in defenses:
                entries.append(
                    analyze_policy(
                        policy, w, defense=defense, eager_budget=budget
                    )
                )
    return LeakageReport(
        entries=entries,
        ways=tuple(ways),
        defenses=tuple(defenses),
        eager_budget=budget,
        skipped=skipped,
    )


def diff_reports(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Human-readable drift between two leakage report dicts.

    Compares schema version, the full ranking order, and every entry's
    exact metrics.  Returns an empty list when nothing drifted.  Used
    by ``scripts_check_bench_regression.py`` and the CLI ``--check``
    flag so a policy or defense change that alters leakage rankings
    fails the build.
    """
    problems: List[str] = []
    cur_version = current.get("leakage_version")
    base_version = baseline.get("leakage_version")
    if cur_version != base_version:
        return [
            f"leakage schema version changed: baseline {base_version}, "
            f"current {cur_version}; regenerate the baseline"
        ]

    def rank_key(row):
        return (row["policy"], row["ways"], row["defense"])

    cur_rank = [rank_key(r) for r in current.get("ranking", [])]
    base_rank = [rank_key(r) for r in baseline.get("ranking", [])]
    if cur_rank != base_rank:
        problems.append(
            "leakage ranking order changed:\n"
            f"  baseline: {base_rank}\n"
            f"  current:  {cur_rank}"
        )

    def entry_map(report):
        return {
            (e["policy"], e["ways"], e["defense"]): e
            for e in report.get("entries", [])
        }

    cur_entries = entry_map(current)
    base_entries = entry_map(baseline)
    for key in sorted(set(base_entries) | set(cur_entries)):
        label = f"{key[0]}/ways={key[1]}/defense={key[2]}"
        if key not in cur_entries:
            problems.append(f"{label}: present in baseline, missing now")
            continue
        if key not in base_entries:
            problems.append(f"{label}: new cell not in baseline")
            continue
        cur_e, base_e = cur_entries[key], base_entries[key]
        for metric in (
            "mode",
            "table_states",
            "reachable_states",
            "flush_reachable_states",
            "distinguishable",
            "absorbed",
            "capacity_bits",
        ):
            if cur_e.get(metric) != base_e.get(metric):
                problems.append(
                    f"{label}: {metric} drifted from "
                    f"{base_e.get(metric)!r} to {cur_e.get(metric)!r}"
                )
    return problems
