"""AST-based lint engine enforcing repo-wide simulator invariants.

The replacement-state channels exist only because the policy models are
bit-exact; a policy model silently corrupted by a refactor invalidates
every downstream BER/capacity number.  This engine machine-checks the
structural conventions that keep the models trustworthy: all randomness
flows through ``repro.common.rng``, cycle accounting stays inside the
scheduler layer, every policy/experiment/fault class upholds its
contract.

The engine is deliberately small: it parses each file once, hands the
tree to every *file-scope* rule, then hands the full parsed project to
every *project-scope* rule (rules that need cross-file context, e.g.
"every ``ReplacementPolicy`` subclass is registered").  Rules live in
:mod:`repro.analysis.rules` and register themselves; third parties can
add rules through the same decorator.

Suppression: a finding whose source line carries an inline
``# repro: allow(<rule-id>)`` comment is discarded at report time, so
intentional exceptions (e.g. wall-clock use in the experiment runner)
are visible in the diff rather than configured away in a dotfile.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import LintError

#: Inline suppression: ``# repro: allow(rule-id)`` or
#: ``# repro: allow(rule-a, rule-b)`` on the offending line.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule_id: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text


class FileContext:
    """One parsed source file plus its lint bookkeeping.

    Attributes:
        path: Path as given on the command line (reported in findings).
        module: Dotted module name derived from the path, e.g.
            ``repro.experiments.extensions`` — rules scope themselves
            with it ("outside ``repro.sim``", "under
            ``repro.experiments``").
        tree: The parsed ``ast.Module``.
        source_lines: Raw lines, for allow-comment lookup.
    """

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.source_lines = source.splitlines()
        self.module = _module_name(path)
        self._allows = self._collect_allows()
        self.findings: List[LintFinding] = []

    def _collect_allows(self) -> Dict[int, Tuple[str, ...]]:
        allows: Dict[int, Tuple[str, ...]] = {}
        for lineno, line in enumerate(self.source_lines, start=1):
            match = _ALLOW_RE.search(line)
            if match:
                rules = tuple(
                    token.strip()
                    for token in match.group(1).split(",")
                    if token.strip()
                )
                allows[lineno] = rules
        return allows

    def allowed(self, rule_id: str, line: int) -> bool:
        rules = self._allows.get(line, ())
        return rule_id in rules or "*" in rules

    def report(
        self, rule_id: str, node, message: str, hint: str = ""
    ) -> None:
        """File a finding at ``node`` (an AST node or a line number)."""
        line = node if isinstance(node, int) else node.lineno
        if self.allowed(rule_id, line):
            return
        self.findings.append(
            LintFinding(
                path=self.path,
                line=line,
                rule_id=rule_id,
                message=message,
                hint=hint,
            )
        )


@dataclass
class Project:
    """Every parsed file, for rules that need cross-file context."""

    files: List[FileContext] = field(default_factory=list)

    def modules(self) -> Dict[str, FileContext]:
        return {ctx.module: ctx for ctx in self.files}


def _module_name(path: str) -> str:
    """Best-effort dotted module name from a file path.

    ``src/repro/cache/cache.py`` -> ``repro.cache.cache``; a path with
    no ``repro`` component falls back to its stem, which simply opts it
    out of the module-scoped rules.
    """
    parts = path.replace("\\", "/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    import os

    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            found.append(path)
    return found


def lint_sources(
    sources: Iterable[Tuple[str, str]],
    rule_ids: Optional[Sequence[str]] = None,
) -> List[LintFinding]:
    """Lint in-memory ``(path, source)`` pairs; the engine's core.

    Args:
        sources: Pairs of (reported path, source text).
        rule_ids: Restrict to these rule ids (default: every registered
            rule).

    Returns:
        Findings sorted by path then line.
    """
    from repro.analysis.rules import resolve_rules

    file_rules, project_rules = resolve_rules(rule_ids)
    project = Project()
    findings: List[LintFinding] = []
    for path, source in sources:
        try:
            ctx = FileContext(path, source)
        except SyntaxError as error:
            findings.append(
                LintFinding(
                    path=path,
                    line=error.lineno or 1,
                    rule_id="syntax",
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        for rule in file_rules:
            rule.fn(ctx)
        project.files.append(ctx)
    for rule in project_rules:
        rule.fn(project)
    for ctx in project.files:
        findings.extend(ctx.findings)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule_id))


def lint_paths(
    paths: Sequence[str],
    rule_ids: Optional[Sequence[str]] = None,
) -> List[LintFinding]:
    """Lint files and directories on disk."""

    def read(path: str) -> Tuple[str, str]:
        with open(path, "r", encoding="utf-8") as handle:
            return path, handle.read()

    return lint_sources(
        (read(path) for path in iter_python_files(paths)), rule_ids
    )


def assert_clean(
    paths: Sequence[str],
    rule_ids: Optional[Sequence[str]] = None,
) -> None:
    """Raise :class:`~repro.common.errors.LintError` on any finding.

    This is the pytest hook: a single test calls ``assert_clean`` on
    ``src/repro`` so every ``pytest`` run fails loudly when an invariant
    regresses, with the same ``file:line`` diagnostics the CLI prints.
    """
    findings = lint_paths(paths, rule_ids)
    if findings:
        raise LintError(findings)
