"""Performance-counter attack detection — and why it misses LRU channels.

Section X: prior work detects cache side channels in real time by
watching hardware miss counters, "because the root cause of the existing
cache side channel is cache misses.  However, the LRU channels require
either hits or misses, so counting misses of the sender only will not
detect the attack."

:class:`MissRateDetector` implements the standard detector: flag any
process whose per-level miss rates exceed thresholds calibrated on
benign workloads.  Tables VI's comparison falls out directly: the
F+R(mem) sender trips the detector, the LRU senders do not (their miss
rates sit below even benign co-located workloads like gcc).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.perf.counters import CounterBank


@dataclass
class DetectionVerdict:
    """The detector's decision for one monitored process."""

    thread_id: int
    flagged: bool
    l1_miss_rate: float
    l2_miss_rate: float
    llc_miss_rate: float
    reasons: List[str] = field(default_factory=list)


@dataclass
class MissRateDetector:
    """Threshold detector over per-process cache miss rates.

    Attributes:
        l1_threshold: Flag if the process's L1D miss rate exceeds this.
        l2_threshold: Flag on L2 miss rate.
        llc_threshold: Flag on LLC miss rate.  The defaults are tuned so
            benign SPEC-like workloads and the LRU senders pass while
            clflush-driven attacks (miss rate ~= 1 in the deepest level
            the attack reaches) are caught — the calibration the paper's
            references [42]-[44] perform with machine learning, reduced
            to its essence.  Benign pointer-heavy code reaches 70-80%
            local L2 miss ratios, so only near-total miss rates in the
            deeper levels are treated as suspicious.
        min_references: Don't judge processes with fewer samples.
    """

    l1_threshold: float = 0.30
    l2_threshold: float = 0.85
    llc_threshold: float = 0.80
    min_references: int = 100

    def judge(
        self, banks: Iterable[CounterBank], thread_id: int
    ) -> DetectionVerdict:
        """Evaluate one process against the thresholds.

        Args:
            banks: The hierarchy's counter banks (L1 outward).
            thread_id: The process under scrutiny.
        """
        rates: Dict[str, float] = {}
        refs_by_level: Dict[str, int] = {}
        total_refs = 0
        for bank in banks:
            rates[bank.level_name] = bank.miss_rate(thread_id)
            refs_by_level[bank.level_name] = bank.total_references(thread_id)
            total_refs = max(total_refs, bank.total_references(thread_id))
        verdict = DetectionVerdict(
            thread_id=thread_id,
            flagged=False,
            l1_miss_rate=rates.get("L1D", 0.0),
            l2_miss_rate=rates.get("L2", 0.0),
            llc_miss_rate=rates.get("LLC", 0.0),
        )
        if total_refs < self.min_references:
            verdict.reasons.append("insufficient samples")
            return verdict
        checks = [
            ("L1D", verdict.l1_miss_rate, self.l1_threshold),
            ("L2", verdict.l2_miss_rate, self.l2_threshold),
            ("LLC", verdict.llc_miss_rate, self.llc_threshold),
        ]
        for level, rate, threshold in checks:
            # A rate computed from a handful of references is noise, not
            # evidence: an LRU sender's 3 L2 references (all cold) would
            # otherwise read as a "100% miss rate".  Real detectors gate
            # on per-event volume for the same reason.
            if refs_by_level.get(level, 0) < self.min_references:
                continue
            if rate > threshold:
                verdict.flagged = True
                verdict.reasons.append(
                    f"{level} miss rate {rate:.1%} > {threshold:.0%}"
                )
        return verdict

    def scan(
        self, banks: Iterable[CounterBank], thread_ids: Iterable[int]
    ) -> List[DetectionVerdict]:
        """Judge several processes; banks are re-used across calls."""
        banks = list(banks)
        return [self.judge(banks, tid) for tid in thread_ids]
