"""Defenses against the LRU channels (paper Section IX).

* :mod:`repro.defenses.policy_swap` — replace LRU with FIFO/Random and
  measure the cost (Figure 9).
* :mod:`repro.defenses.pl_fix` — the PL cache LRU-state lock (Figure 11).
* :mod:`repro.defenses.detector` — perf-counter detection and why it
  fails against LRU channels (Section X).

The InvisiSpec-style "invisible speculation" defense lives on
:class:`repro.cache.hierarchy.CacheHierarchy` as the
``invisible_speculation`` flag; DAWG-style state partitioning is
:class:`repro.replacement.PartitionedPLRU`.
"""

from repro.defenses.detector import DetectionVerdict, MissRateDetector
from repro.defenses.pl_fix import PLCacheTrace, run_pl_cache_attack
from repro.defenses.policy_swap import (
    DefenseComparison,
    PolicyEvaluation,
    compare_policies,
    evaluate_policy,
    gem5_like_config,
    geometric_mean_overhead,
)

__all__ = [
    "DefenseComparison",
    "DetectionVerdict",
    "MissRateDetector",
    "PLCacheTrace",
    "PolicyEvaluation",
    "compare_policies",
    "evaluate_policy",
    "gem5_like_config",
    "geometric_mean_overhead",
    "run_pl_cache_attack",
]
