"""Defense 1: replace the L1D's LRU policy (paper Section IX-A, Figure 9).

Random replacement removes the leaking state entirely; FIFO keeps state
but updates it only on fills, so hit-encoding senders leave no trace.
The cost of either is a (small) L1D miss-rate and CPI change, which this
module quantifies over the SPEC-like workload suite.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cache.config import HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.common.rng import RngLike, make_rng, spawn_rng
from repro.perf.cpi import CPIModel, CPIModelConfig
from repro.workloads.spec_like import SPEC_LIKE_PROFILES, WorkloadProfile
from repro.workloads.trace import replay


#: The paper's GEM5 configuration: 64 KiB 8-way L1D (4 cycles), 2 MiB
#: 16-way L2 (8 cycles).  We keep the L1 at the paper's GEM5 size.
def gem5_like_config(policy: str) -> HierarchyConfig:
    """Hierarchy matching the paper's GEM5 defense-evaluation setup."""
    from repro.cache.config import CacheConfig

    return HierarchyConfig(
        l1=CacheConfig(
            name="L1D",
            size=64 * 1024,
            ways=8,
            line_size=64,
            policy=policy,
            hit_latency=4.0,
        ),
        l2=CacheConfig(
            name="L2",
            size=2 * 1024 * 1024,
            ways=16,
            line_size=64,
            policy="srrip",
            hit_latency=8.0,
        ),
        memory_latency=150.0,
    )


@dataclass
class PolicyEvaluation:
    """Miss rates and CPI for one (workload, policy) pair."""

    workload: str
    policy: str
    l1_miss_rate: float
    l2_miss_rate: float
    cpi: float


@dataclass
class DefenseComparison:
    """Figure 9's data: per-workload metrics for each candidate policy."""

    rows: List[PolicyEvaluation] = dataclasses.field(default_factory=list)

    def for_policy(self, policy: str) -> List[PolicyEvaluation]:
        return [r for r in self.rows if r.policy == policy]

    def normalized_cpi(
        self, workload: str, policy: str, baseline: str = "tree-plru"
    ) -> float:
        """CPI of ``policy`` relative to the baseline (Figure 9 bottom)."""
        base = self._lookup(workload, baseline).cpi
        return self._lookup(workload, policy).cpi / base

    def normalized_miss_rate(
        self, workload: str, policy: str, baseline: str = "tree-plru"
    ) -> float:
        """L1D miss rate relative to the baseline (Figure 9 top)."""
        base = self._lookup(workload, baseline).l1_miss_rate
        if base == 0.0:
            return 1.0
        return self._lookup(workload, policy).l1_miss_rate / base

    def _lookup(self, workload: str, policy: str) -> PolicyEvaluation:
        for row in self.rows:
            if row.workload == workload and row.policy == policy:
                return row
        raise KeyError(f"no evaluation for ({workload!r}, {policy!r})")


def evaluate_policy(
    profile: WorkloadProfile,
    policy: str,
    length: int = 40_000,
    warmup: int = 4_000,
    cpi_model: CPIModel = CPIModel(CPIModelConfig()),
    rng: RngLike = None,
) -> PolicyEvaluation:
    """Replay one workload against a hierarchy using ``policy`` in L1D."""
    r = make_rng(rng)
    hierarchy = CacheHierarchy(
        gem5_like_config(policy), rng=spawn_rng(r, policy)
    )
    stats = replay(
        hierarchy,
        profile.generate(length + warmup, rng=spawn_rng(r, profile.name)),
        warmup=warmup,
    )
    return PolicyEvaluation(
        workload=profile.name,
        policy=policy,
        l1_miss_rate=stats.l1_miss_rate,
        l2_miss_rate=stats.l2_miss_rate,
        cpi=cpi_model.cpi(stats.l1_miss_rate, stats.l2_miss_rate),
    )


def compare_policies(
    policies: Sequence[str] = ("tree-plru", "fifo", "random"),
    profiles: Sequence[WorkloadProfile] = tuple(SPEC_LIKE_PROFILES),
    length: int = 40_000,
    warmup: int = 4_000,
    rng: RngLike = None,
) -> DefenseComparison:
    """Figure 9's full sweep: every workload under every policy.

    The same workload RNG seed is reused across policies so each policy
    sees the *identical* address trace.
    """
    master = make_rng(rng)
    comparison = DefenseComparison()
    for profile in profiles:
        seed = master.getrandbits(32)
        for policy in policies:
            comparison.rows.append(
                evaluate_policy(
                    profile, policy, length=length, warmup=warmup, rng=seed
                )
            )
    return comparison


def geometric_mean_overhead(
    comparison: DefenseComparison, policy: str, baseline: str = "tree-plru"
) -> float:
    """Geometric-mean normalized CPI across workloads (headline number).

    The paper's claim is that this stays below 1.02 (a <2 % slowdown).
    """
    product = 1.0
    rows = comparison.for_policy(policy)
    if not rows:
        raise KeyError(f"no rows for policy {policy!r}")
    for row in rows:
        product *= comparison.normalized_cpi(row.workload, policy, baseline)
    return product ** (1.0 / len(rows))
