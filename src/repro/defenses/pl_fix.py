"""Defense 2: hardening the PL cache's LRU state (Section IX-B, Fig. 11).

The attack scenario of Figure 11: the sender *locks* its line in a PL
cache (so the line itself is protected from eviction), then leaks by
simply accessing it — the access is a cache **hit**, and in the original
PL design hits still update the PLRU tree, redirecting the victim
pointer from the locked way onto one of the receiver's lines.  The
receiver detects the redirect with an Algorithm-2-style sequence:

1. *Init*: access its 7 lines L0..L6 sequentially.  With the locked
   line resident, a full sequential pass deterministically parks the
   Tree-PLRU victim on the locked way.
2. *Encode*: the sender accesses (hits) its locked line iff the bit
   is 1, which flips the victim pointer onto a receiver way.
3. *Decode*: access one extra line F.  Bit 0 ⇒ the chosen victim is
   locked ⇒ F is handled *uncached* and nothing changes.  Bit 1 ⇒ F
   evicts a receiver line.
4. *Probe*: time all 7 lines; any miss ⇒ bit 1.  Flush F to restore
   the canonical state.

With the hardened design (``lock_lru=True`` — the blue boxes in the
paper's Figure 10) the sender's hit no longer updates the tree, every F
is handled uncached, and the receiver observes hits forever: the
channel is closed (Figure 11 bottom).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cache.config import HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.pl_cache import PLCache
from repro.channels.addresses import lines_for_set
from repro.common.errors import ProtocolError
from repro.common.rng import RngLike, make_rng, spawn_rng
from repro.sim.specs import INTEL_E5_2690
from repro.timing.measurement import observed_chase_latency
from repro.timing.tsc import INTEL_TSC, TimestampCounter


@dataclass
class PLCacheTrace:
    """Receiver observations against a PL cache (one point per bit).

    Attributes:
        lock_lru: Whether the hardened design was used.
        sent_bits: Ground-truth bits the sender encoded.
        latencies: The receiver's slowest timed probe per bit — the
            signal plotted in Figure 11.
        decoded_bits: Receiver's decoding (any probe miss = 1).
        threshold: Hit/miss decision threshold used.
    """

    lock_lru: bool
    sent_bits: List[int] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    decoded_bits: List[int] = field(default_factory=list)
    threshold: float = 0.0

    def leak_accuracy(self) -> float:
        """Fraction of bits the receiver decoded correctly.

        ≈1.0 means the channel works (original design); ≈0.5 against a
        random message — with every probe hitting — means it is closed.
        """
        if not self.sent_bits:
            return 0.0
        hits = sum(
            1 for s, r in zip(self.sent_bits, self.decoded_bits) if s == r
        )
        return hits / len(self.sent_bits)

    def all_hits(self) -> bool:
        """True when every probe stayed below the threshold (Fig 11 bottom)."""
        return all(lat <= self.threshold for lat in self.latencies)


def run_pl_cache_attack(
    lock_lru: bool,
    message: List[int],
    target_set: int = 1,
    rng: RngLike = None,
) -> PLCacheTrace:
    """Drive the locked-line LRU attack against a PL cache.

    Args:
        lock_lru: False = original PL design (leaks); True = hardened
            design with frozen replacement state for locked lines.
        message: Bits the sender encodes, one receiver round each.
        target_set: The L1 set carrying the channel.
        rng: Seed for the timer-noise model.

    Returns:
        The receiver's per-bit trace (Figure 11's data).
    """
    if any(b not in (0, 1) for b in message):
        raise ProtocolError("message must be bits")
    r = make_rng(rng)
    config: HierarchyConfig = INTEL_E5_2690.hierarchy
    pl_l1 = PLCache(config.l1, lock_lru=lock_lru, rng=spawn_rng(r, "pl"))
    hierarchy = CacheHierarchy(config, rng=spawn_rng(r, "h"), l1_cache=pl_l1)
    tsc = TimestampCounter(INTEL_TSC, rng=spawn_rng(r, "tsc"))

    ways = config.l1.ways
    lines = lines_for_set(config.l1, target_set, ways + 2)
    sender_line = lines[0]
    receiver_lines = lines[1:ways]  # L0..L6: one less than the ways
    fresh_line = lines[ways]  # F: the replacement trigger

    # Sender faults its line in and locks it (PL-cache lock request).
    hierarchy.load(sender_line, thread_id=1, address_space=1, count=False)
    pl_l1.lock_line(sender_line, address_space=1, thread_id=1)
    # Receiver warms its lines; they land in the remaining ways.
    for address in receiver_lines:
        hierarchy.load(address, thread_id=0, address_space=0, count=False)

    l1_hit = config.l1.hit_latency
    l2_hit = config.l2.hit_latency
    # Probes are reported as chase totals (7 local hits + target), so
    # the threshold sits midway between the all-hit and one-miss totals.
    threshold = 7 * l1_hit + (l1_hit + l2_hit) / 2.0 + tsc.spec.overhead_mean
    trace = PLCacheTrace(lock_lru=lock_lru, threshold=threshold)

    for bit in message:
        # Init: sequential pass parks the PLRU victim on the locked way.
        for address in receiver_lines:
            hierarchy.load(address, thread_id=0, address_space=0)
        # Encode: the sender's *hit* on its locked line.
        if bit == 1:
            hierarchy.load(sender_line, thread_id=1, address_space=1)
        # Decode: force one replacement decision.
        hierarchy.load(fresh_line, thread_id=0, address_space=0)
        # Probe: time every line; report the slowest one (the signal).
        slowest = 0.0
        any_miss = False
        for address in receiver_lines:
            outcome = hierarchy.load(address, thread_id=0, address_space=0)
            observed = observed_chase_latency(
                tsc, 7 * l1_hit + outcome.latency, chain_length=7
            )
            slowest = max(slowest, observed)
            if not outcome.l1_hit:
                any_miss = True
        trace.sent_bits.append(bit)
        trace.latencies.append(slowest)
        trace.decoded_bits.append(1 if any_miss else 0)
        # Restore the canonical resident set for the next round.
        hierarchy.flush_address(fresh_line, thread_id=0)
    return trace
