"""Baseline cache attacks and the Spectre v1 demonstration.

* :class:`FlushReloadChannel` — F+R(mem) and F+R(L1) (Tables V/VI).
* :class:`PrimeProbeChannel` — contention baseline (Section VII).
* :class:`EvictTimeAttack` — completeness baseline (Section X).
* :class:`SpectreV1` — transient-execution attack with pluggable
  disclosure channels, including the paper's LRU channels (Section VIII,
  Table VII).
"""

from repro.attacks.branch_predictor import TwoBitPredictor
from repro.attacks.evict_time import EvictTimeAttack
from repro.attacks.flush_reload import EncodeCost, FlushReloadChannel
from repro.attacks.prime_probe import PrimeProbeChannel
from repro.attacks.side_channel import (
    LRUSideChannelAttack,
    SideChannelResult,
    TableLookupVictim,
)
from repro.attacks.spectre import (
    ATTACKER_THREAD,
    CHAIN_SET,
    SpectreConfig,
    SpectreResult,
    SpectreV1,
    VICTIM_THREAD,
)

__all__ = [
    "ATTACKER_THREAD",
    "CHAIN_SET",
    "EncodeCost",
    "EvictTimeAttack",
    "FlushReloadChannel",
    "LRUSideChannelAttack",
    "PrimeProbeChannel",
    "SpectreConfig",
    "SpectreResult",
    "SideChannelResult",
    "SpectreV1",
    "TableLookupVictim",
    "TwoBitPredictor",
    "VICTIM_THREAD",
]
