"""Flush+Reload baselines (Yarom & Falkner; the paper's reference [1]).

The paper compares its LRU channels against two Flush+Reload variants
(Tables V and VI):

* **F+R (mem)** — the classic attack: ``clflush`` evicts the shared line
  all the way to memory; the sender's encode is a full memory miss.
* **F+R (L1)** — an L1-local variant: instead of ``clflush``, eight
  accesses to the target set evict the line from L1 only; the sender's
  encode is then an L1 miss served by L2.

Both require the sender to take cache *misses* to transmit — the
property that makes them slower to encode and easier to detect than the
LRU channels, which is the core comparison of Section VII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.hierarchy import CacheHierarchy
from repro.channels.addresses import lines_for_set
from repro.common.errors import ProtocolError
from repro.common.types import CacheLevel


@dataclass
class EncodeCost:
    """Cycles and misses spent by the sender to encode one bit."""

    cycles: float
    l1_misses: int = 0
    deeper_misses: int = 0


class FlushReloadChannel:
    """Flush+Reload over a shared line, against a simulated hierarchy.

    Args:
        hierarchy: Shared memory system.
        shared_address: The line shared by sender and receiver (e.g. in
            a shared library).
        variant: ``"mem"`` (clflush to memory) or ``"l1"`` (evict from
            L1 via conflicting accesses).
        sender_space / receiver_space: Address-space identities.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        shared_address: int,
        variant: str = "mem",
        sender_space: int = 1,
        receiver_space: int = 0,
    ):
        if variant not in ("mem", "l1"):
            raise ProtocolError(f"variant must be 'mem' or 'l1', got {variant!r}")
        self.hierarchy = hierarchy
        self.shared_address = shared_address
        self.variant = variant
        self.sender_space = sender_space
        self.receiver_space = receiver_space
        l1 = hierarchy.config.l1
        target_set = l1.set_index(shared_address)
        # Conflicting lines used by the L1-evict variant.
        self._eviction_set: List[int] = lines_for_set(
            l1, target_set, l1.ways, tag_base=1 << 12
        )

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def receiver_flush(self) -> EncodeCost:
        """Receiver's setup: remove the shared line before the bit slot."""
        if self.variant == "mem":
            outcome = self.hierarchy.flush_address(
                self.shared_address, thread_id=0
            )
            return EncodeCost(cycles=outcome.latency)
        # Two passes over the conflict set: a single pass does not
        # reliably evict under Tree-PLRU (the classic eviction-set
        # problem); real L1-evict attacks sweep the set repeatedly.
        cycles = 0.0
        for _ in range(2):
            for address in self._eviction_set:
                outcome = self.hierarchy.load(
                    address, thread_id=0, address_space=self.receiver_space
                )
                cycles += outcome.latency
            if not self.hierarchy.l1.probe(self.shared_address):
                break
        return EncodeCost(cycles=cycles)

    def sender_encode(self, bit: int) -> EncodeCost:
        """Sender's operation: access the shared line iff bit is 1.

        The access is a *miss* by construction (the receiver flushed or
        evicted the line), which is precisely the paper's contrast with
        the LRU channels where the sender's access is a hit.
        """
        if bit not in (0, 1):
            raise ProtocolError(f"bit must be 0 or 1, got {bit!r}")
        if bit == 0:
            return EncodeCost(cycles=4.0)  # loop bookkeeping only
        outcome = self.hierarchy.load(
            self.shared_address, thread_id=1, address_space=self.sender_space
        )
        l1_miss = outcome.hit_level != CacheLevel.L1
        deeper = outcome.hit_level == CacheLevel.MEMORY
        return EncodeCost(
            cycles=outcome.latency,
            l1_misses=int(l1_miss),
            deeper_misses=int(deeper),
        )

    def receiver_reload(self) -> bool:
        """Receiver's probe: reload the shared line; True means bit 1.

        A fast reload (L1/L2 hit for the mem variant; L1 hit for the l1
        variant) reveals that the sender touched the line.
        """
        outcome = self.hierarchy.load(
            self.shared_address, thread_id=0, address_space=self.receiver_space
        )
        if self.variant == "mem":
            return outcome.hit_level != CacheLevel.MEMORY
        return outcome.l1_hit

    def transfer_bit(self, bit: int) -> bool:
        """One full round: flush, encode, reload.  Returns decoded bit."""
        self.receiver_flush()
        self.sender_encode(bit)
        return self.receiver_reload()
