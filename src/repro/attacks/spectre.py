"""Spectre v1 with interchangeable disclosure channels (paper Section VIII).

The victim is the classic bounds-check gadget::

    if x < array1_size:
        y = probe_array[array1[x] * LINE]

The attacker trains the branch predictor with in-bounds calls, then
supplies an out-of-bounds ``x`` that makes the transient load read a
secret byte and touch a probe line indexed by it.  The *disclosure
channel* — how the attacker observes which line was touched — is
pluggable, exactly as in the paper:

* ``"flush_reload"`` — the classic F+R receiver (flush all probe lines,
  reload and time each).
* ``"lru_alg1"`` / ``"lru_alg2"`` — the paper's contribution: the
  attacker reads the *LRU state* of each set instead.  The victim's
  transient access can be a cache **hit**; no victim miss is needed,
  which shrinks the required speculation window (the paper's Table V
  argument) and the victim's miss-rate footprint (Table VII).

Modeling notes (see DESIGN.md):

* Secrets are 6-bit values (0..63): one probe line per L1 set, with set
  index encoding the value.  The paper uses 63 of the 64 sets and
  reserves one for the pointer-chase chain; we do the same (set 0).
* A transient access must *complete* within ``speculation_window``
  cycles of the mispredicted branch to leave a microarchitectural
  trace.  This realizes the paper's observation that the hit-based LRU
  encode needs a much smaller window than F+R's memory-miss encode.
* Appendix C's prefetcher-noise mitigation is implemented: each round
  visits sets in a fresh random order and results are averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.attacks.branch_predictor import TwoBitPredictor
from repro.channels.addresses import lines_for_set
from repro.common.errors import ProtocolError
from repro.common.rng import RngLike, make_rng
from repro.common.types import CacheLevel, MemoryAccess
from repro.sim.machine import Machine
from repro.timing.measurement import PointerChase

#: Set reserved for the receiver's pointer-chase chain (Section VIII).
CHAIN_SET = 0

#: The probe value the victim's *architectural* (training) path touches.
#: The attacker knows array1's in-bounds contents and excludes this
#: value when scoring candidates, as real Spectre PoCs do.
TRAINING_VALUE = 1

#: Threads: the victim is "the sender", the attacker "the receiver".
VICTIM_THREAD = 1
ATTACKER_THREAD = 0


@dataclass
class SpectreConfig:
    """Attack parameters.

    Attributes:
        speculation_window: Cycles of transient execution available
            after the mispredicted bounds check.  The default (400) is
            roomy enough for every disclosure channel; the window
            ablation shows F+R(mem) dying below ~210 cycles while the
            LRU channels survive down to ~20 (Table V's argument).
        train_calls: In-bounds victim calls per malicious call.
        rounds: Attack repetitions averaged per secret byte
            (Appendix C's noise strategy).
        d: Receiver split parameter for the LRU disclosure channels.
        lru_variant_d_default: kept for documentation; see ``d``.
    """

    speculation_window: float = 400.0
    train_calls: int = 4
    rounds: int = 5
    d: int = 8


@dataclass
class SpectreResult:
    """Recovered data plus per-candidate score diagnostics."""

    recovered: List[int] = field(default_factory=list)
    scores: List[Dict[int, float]] = field(default_factory=list)

    def accuracy(self, secret: Sequence[int]) -> float:
        """Fraction of secret values recovered exactly."""
        if not secret:
            return 0.0
        hits = sum(1 for s, r in zip(secret, self.recovered) if s == r)
        return hits / len(secret)


class SpectreV1:
    """The Spectre v1 victim/attacker pair on a simulated machine.

    Args:
        machine: Simulated platform (hierarchy + TSC).
        secret: Secret values in [0, 63], one per "byte" to exfiltrate.
        disclosure: ``"flush_reload"``, ``"flush_reload_l1"``,
            ``"lru_alg1"``, or ``"lru_alg2"``.
        config: Attack parameters.
        rng: Randomness for round orderings.
    """

    def __init__(
        self,
        machine: Machine,
        secret: Sequence[int],
        disclosure: str = "lru_alg1",
        config: SpectreConfig = SpectreConfig(),
        rng: RngLike = None,
    ):
        known = ("flush_reload", "flush_reload_l1", "lru_alg1", "lru_alg2")
        if disclosure not in known:
            raise ProtocolError(f"disclosure must be one of {known}")
        if any(not 0 <= s < 64 for s in secret):
            raise ProtocolError("secret values must be in [0, 64)")
        if any(s in (CHAIN_SET, TRAINING_VALUE) for s in secret):
            raise ProtocolError(
                f"secret values {CHAIN_SET} (chain set) and "
                f"{TRAINING_VALUE} (training value) are not recoverable"
            )
        self.machine = machine
        self.secret = list(secret)
        self.disclosure = disclosure
        self.config = config
        self.rng = make_rng(rng)

        l1 = machine.spec.hierarchy.l1
        self.num_sets = l1.num_sets
        self.line_size = l1.line_size
        #: Candidate secret values = usable sets (all but the chain set).
        self.candidate_sets = [s for s in range(self.num_sets) if s != CHAIN_SET]

        # The shared probe array: one line per set, consecutive lines.
        # Shared between victim and attacker for F+R and LRU-Alg1;
        # private to the victim for LRU-Alg2.
        self.probe_base = 1 << 22
        # Victim's private array1 (bounds-checked array) and its size.
        self.array1_base = 1 << 26
        self.array1_size = 8
        # Attacker's per-set receiver lines for the LRU channels.
        # tag_base chosen so attacker lines never alias the probe array
        # (tag 0x400), array1 (tag 0x4000), or the chase chain (0x40000).
        # Irregular spacing keeps the attacker's own sweeps from
        # training the stride prefetcher (Appendix C).
        self._receiver_lines: Dict[int, List[int]] = {
            s: lines_for_set(l1, s, l1.ways + 1, tag_base=96, irregular=True)
            for s in self.candidate_sets
        }
        self._predictor = TwoBitPredictor()
        self._chase = PointerChase(
            machine.hierarchy,
            machine.tsc,
            chain_set=CHAIN_SET,
            thread_id=ATTACKER_THREAD,
            address_space=0,
        )

    # ------------------------------------------------------------------
    # Victim model
    # ------------------------------------------------------------------

    def _probe_address(self, value: int) -> int:
        """Probe line for a secret value — one line per set."""
        return self.probe_base + value * self.line_size

    def victim_call(self, x: int) -> None:
        """The bounds-check gadget, with transient execution modeled.

        In-bounds calls execute architecturally and train the predictor.
        Out-of-bounds calls execute transiently iff predicted in-bounds,
        and their accesses must complete inside the speculation window.
        """
        in_bounds = x < self.array1_size
        predicted = self._predictor.predict(branch_id=1)
        self._predictor.update(branch_id=1, taken=in_bounds)

        if in_bounds:
            self.machine.hierarchy.load(
                self.array1_base + x, thread_id=VICTIM_THREAD, address_space=1
            )
            # In-bounds array1 contents are public (the attacker can read
            # them), so training pollution lands on a *known* probe value
            # the attacker filters out of its scores.
            self.machine.hierarchy.load(
                self._probe_address(TRAINING_VALUE),
                thread_id=VICTIM_THREAD,
                address_space=1,
            )
            return

        if not predicted:
            return  # predicted out-of-bounds: no transient execution

        # Transient path: read the secret, then touch its probe line.
        window = self.config.speculation_window
        secret_index = x - self.array1_size
        if not 0 <= secret_index < len(self.secret):
            return
        secret_value = self.secret[secret_index]
        secret_outcome = self.machine.hierarchy.access(
            MemoryAccess(
                address=self.array1_base + x,
                thread_id=VICTIM_THREAD,
                address_space=1,
                speculative=True,
            )
        )
        elapsed = secret_outcome.latency
        if elapsed >= window:
            return  # secret load did not resolve inside the window
        probe_outcome = self.machine.hierarchy.access(
            MemoryAccess(
                address=self._probe_address(secret_value),
                thread_id=VICTIM_THREAD,
                address_space=1,
                speculative=True,
            )
        )
        elapsed += probe_outcome.latency
        if elapsed >= window and probe_outcome.hit_level == CacheLevel.MEMORY:
            # The fill did not complete before the squash: undo it by
            # flushing the speculatively-installed line.  (Hit-path LRU
            # updates happen early and survive — they are exactly what
            # the LRU channel reads.)
            self.machine.hierarchy.l1.flush(self._probe_address(secret_value))
            self.machine.hierarchy.l2.flush(self._probe_address(secret_value))

    def _train_and_strike(self, secret_index: int) -> None:
        """Predictor training followed by the malicious call."""
        for i in range(self.config.train_calls):
            self.victim_call(i % self.array1_size)
        self.victim_call(self.array1_size + secret_index)

    # ------------------------------------------------------------------
    # Disclosure channels (attacker side)
    # ------------------------------------------------------------------

    def _fr_round(self, secret_index: int, variant: str) -> Dict[int, float]:
        """One Flush+Reload round; returns per-candidate scores."""
        hierarchy = self.machine.hierarchy
        order = list(self.candidate_sets)
        self.rng.shuffle(order)
        for value in order:
            address = self._probe_address(value)
            if variant == "mem":
                hierarchy.flush_address(address, thread_id=ATTACKER_THREAD)
            else:
                # Evict from L1 only, via the receiver's conflict lines.
                for line in self._receiver_lines[value][: hierarchy.config.l1.ways]:
                    hierarchy.load(
                        line, thread_id=ATTACKER_THREAD, address_space=0
                    )
        self._train_and_strike(secret_index)
        scores: Dict[int, float] = {}
        self.rng.shuffle(order)
        for value in order:
            outcome = hierarchy.load(
                self._probe_address(value),
                thread_id=ATTACKER_THREAD,
                address_space=0,
            )
            if variant == "mem":
                fast = outcome.hit_level != CacheLevel.MEMORY
            else:
                fast = outcome.l1_hit
            scores[value] = 1.0 if fast else 0.0
        return scores

    def _lru_round(self, secret_index: int, variant: str) -> Dict[int, float]:
        """One LRU-channel round over all candidate sets.

        Per set: Algorithm 1/2 initialization, victim strike, decode +
        timed probe.  Algorithm 1 shares the probe line with the victim
        (its line 0 *is* the victim's probe line for that set);
        Algorithm 2 uses only attacker-private lines.
        """
        hierarchy = self.machine.hierarchy
        ways = hierarchy.config.l1.ways
        d = min(self.config.d, ways)
        order = list(self.candidate_sets)
        self.rng.shuffle(order)

        # Initialization phase, per set.
        for value in order:
            lines = self._round_lines(value, variant)
            for address in lines[:d]:
                hierarchy.load(address, thread_id=ATTACKER_THREAD, address_space=0)

        self._train_and_strike(secret_index)

        # Decode phase + timed probe, per set.
        scores: Dict[int, float] = {}
        self.rng.shuffle(order)
        for value in order:
            lines = self._round_lines(value, variant)
            total = ways + 1 if variant == "alg1" else ways
            for address in lines[d:total]:
                hierarchy.load(address, thread_id=ATTACKER_THREAD, address_space=0)
            self._chase.prime_chain()
            latency = self._chase.measure(lines[0])
            hit = latency <= self._chase.hit_miss_threshold()
            # Alg1: victim's access kept line 0 alive -> hit means 1.
            # Alg2: victim's access evicted line 0 -> miss means 1.
            signal = hit if variant == "alg1" else not hit
            scores[value] = 1.0 if signal else 0.0
        return scores

    def _round_lines(self, value: int, variant: str) -> List[int]:
        """Receiver lines for one candidate set under an LRU variant."""
        if variant == "alg1":
            # Line 0 is the shared probe line; lines 1..N are private.
            return [self._probe_address(value)] + self._receiver_lines[value][1:]
        return self._receiver_lines[value]

    # ------------------------------------------------------------------
    # Full attack
    # ------------------------------------------------------------------

    def _round_scores(self, secret_index: int) -> Dict[int, float]:
        if self.disclosure == "flush_reload":
            return self._fr_round(secret_index, "mem")
        if self.disclosure == "flush_reload_l1":
            return self._fr_round(secret_index, "l1")
        if self.disclosure == "lru_alg1":
            return self._lru_round(secret_index, "alg1")
        return self._lru_round(secret_index, "alg2")

    def recover(self) -> SpectreResult:
        """Run the attack over every secret index; average over rounds."""
        result = SpectreResult()
        for secret_index in range(len(self.secret)):
            totals: Dict[int, float] = {
                v: 0.0 for v in self.candidate_sets if v != TRAINING_VALUE
            }
            for _ in range(self.config.rounds):
                for value, score in self._round_scores(secret_index).items():
                    if value in totals:
                        totals[value] += score
            best = max(totals.items(), key=lambda kv: kv[1])[0]
            result.recovered.append(best)
            result.scores.append(totals)
        return result
