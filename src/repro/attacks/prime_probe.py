"""Prime+Probe baseline (Osvik, Shamir & Tromer; paper reference [2]).

The receiver primes a whole set with its own N lines, lets the sender
run, then probes all N lines and times them: a slow probe means the
sender displaced one, i.e. accessed the set.  No shared memory is
needed, but the receiver must measure N accesses per set per sample —
the paper contrasts this with its Algorithm 2, which times a *single*
access (Section VII).
"""

from __future__ import annotations

from typing import List

from repro.cache.hierarchy import CacheHierarchy
from repro.channels.addresses import lines_for_set
from repro.common.errors import ProtocolError


class PrimeProbeChannel:
    """Prime+Probe on one L1 set of a simulated hierarchy.

    Args:
        hierarchy: Shared memory system.
        target_set: The monitored set.
        sender_space / receiver_space: Address-space identities.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        target_set: int,
        sender_space: int = 1,
        receiver_space: int = 0,
    ):
        self.hierarchy = hierarchy
        l1 = hierarchy.config.l1
        self.target_set = target_set
        self.receiver_space = receiver_space
        self.sender_space = sender_space
        self.prime_lines: List[int] = lines_for_set(
            l1, target_set, l1.ways, tag_base=1 << 13
        )
        self.sender_line: int = lines_for_set(l1, target_set, 1, tag_base=3 << 13)[0]

    def prime(self) -> float:
        """Fill the set with the receiver's lines; returns cycles spent."""
        cycles = 0.0
        for address in self.prime_lines:
            outcome = self.hierarchy.load(
                address, thread_id=0, address_space=self.receiver_space
            )
            cycles += outcome.latency
        return cycles

    def sender_encode(self, bit: int) -> float:
        """Sender touches its own line in the set iff bit is 1.

        Because the receiver just primed the set, the sender's access is
        necessarily an L1 *miss* — again the contrast with the LRU
        channel's hit-only encoding.
        """
        if bit not in (0, 1):
            raise ProtocolError(f"bit must be 0 or 1, got {bit!r}")
        if bit == 0:
            return 4.0
        outcome = self.hierarchy.load(
            self.sender_line, thread_id=1, address_space=self.sender_space
        )
        return outcome.latency

    def probe(self) -> bool:
        """Re-access all primed lines; True (bit 1) if any missed L1.

        Probing in reverse order is the classic trick to avoid the probe
        itself evicting yet-unprobed lines under LRU.
        """
        any_miss = False
        for address in reversed(self.prime_lines):
            outcome = self.hierarchy.load(
                address, thread_id=0, address_space=self.receiver_space
            )
            if not outcome.l1_hit:
                any_miss = True
        return any_miss

    def transfer_bit(self, bit: int) -> bool:
        """One full round: prime, encode, probe.  Returns decoded bit."""
        self.prime()
        self.sender_encode(bit)
        return self.probe()
