"""A minimal conditional-branch predictor for the Spectre model.

Spectre v1 relies on training a conditional branch (the victim's bounds
check) so that a later out-of-bounds call is *predicted* in-bounds and
executes transiently.  A two-bit saturating counter per branch — the
textbook bimodal predictor — captures exactly the train/mispredict
dynamic the attack needs.
"""

from __future__ import annotations

from typing import Dict


class TwoBitPredictor:
    """Per-branch two-bit saturating counters.

    Counter values: 0 strongly-not-taken, 1 weakly-not-taken,
    2 weakly-taken, 3 strongly-taken.  "Taken" here means the bounds
    check passes (the in-bounds path).
    """

    def __init__(self, initial: int = 1):
        if not 0 <= initial <= 3:
            raise ValueError(f"initial counter must be in [0,3], got {initial}")
        self._initial = initial
        self._counters: Dict[int, int] = {}

    def predict(self, branch_id: int) -> bool:
        """True when the branch is predicted taken (in-bounds)."""
        return self._counters.get(branch_id, self._initial) >= 2

    def update(self, branch_id: int, taken: bool) -> None:
        """Train the counter with the branch's actual outcome."""
        counter = self._counters.get(branch_id, self._initial)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._counters[branch_id] = counter

    def reset(self) -> None:
        self._counters.clear()
