"""LRU *side* channel: recovering a key from a table-lookup victim.

The paper distinguishes covert channels (cooperating sender) from side
channels, where "the sender is benign, but the process happens to
modify the LRU states based on some secret information" (Section III).
This module demonstrates the side-channel case with the canonical
victim of the cache-attack literature: a cipher whose first-round
table lookup indexes a T-table with ``plaintext XOR key``
(AES-style, references [2], [3], [16] of the paper).

The victim's lookup touches the cache set holding table entry
``(p ^ k) & 0x3F``.  With a warm table the victim's lookups are hits in
all 63 unmonitored sets (invisible to miss-based channels); in the one
monitored set the attacker's Algorithm-2 pressure means the victim's
access may hit or miss — and the LRU channel reads it either way, the
paper's core advantage.  An eviction of the attacker's line 0 after an
encryption with known plaintext ``p`` reveals
``(p ^ k) & 0x3F == target_set``, i.e. ``k = p ^ target_set`` up to
6 bits; plurality voting over observations recovers the key chunk.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.channels.addresses import lines_for_set
from repro.common.errors import ProtocolError
from repro.common.rng import RngLike, make_rng, spawn_rng

VICTIM_THREAD = 1
ATTACKER_THREAD = 0

#: The T-table spans 64 lines = 64 sets (one entry class per set).
TABLE_ENTRIES = 64


@dataclass
class TableLookupVictim:
    """A victim performing secret-indexed table lookups.

    Attributes:
        hierarchy: The shared memory system.
        key: The secret 6-bit value the attacker wants.
        table_base: Base address of the lookup table (line-aligned;
            entry ``i`` occupies line ``i`` and therefore set ``i`` for
            the paper's 64-set L1D).
    """

    hierarchy: CacheHierarchy
    key: int
    table_base: int = 1 << 23

    def __post_init__(self) -> None:
        if not 0 <= self.key < TABLE_ENTRIES:
            raise ProtocolError(f"key must be in [0, {TABLE_ENTRIES})")

    def warm_table(self) -> None:
        """Pre-load the whole table (the steady state of a busy server).

        With a warm table every victim lookup is a cache *hit*:
        miss-based channels see nothing, the LRU channel still works.
        """
        for entry in range(TABLE_ENTRIES):
            self.hierarchy.load(
                self.table_base + entry * 64,
                thread_id=VICTIM_THREAD,
                address_space=1,
                count=False,
            )

    def encrypt(self, plaintext: int) -> None:
        """One first-round lookup: touch table[(p ^ key) & 0x3F]."""
        index = (plaintext ^ self.key) % TABLE_ENTRIES
        self.hierarchy.load(
            self.table_base + index * 64,
            thread_id=VICTIM_THREAD,
            address_space=1,
        )


@dataclass
class SideChannelResult:
    """Outcome of the key-recovery attack."""

    recovered_key: Optional[int]
    votes: Counter = field(default_factory=Counter)
    observations: int = 0

    def confidence(self) -> float:
        """Top vote share; 1.0 means every observation agreed."""
        if not self.votes:
            return 0.0
        return self.votes.most_common(1)[0][1] / sum(self.votes.values())


class LRUSideChannelAttack:
    """Recover the victim's key chunk via the LRU state of one set.

    The attacker interleaves Algorithm 2's receiver sequence around
    victim encryptions with *known* (attacker-chosen or observed)
    plaintexts — the standard synchronous side-channel model.

    Args:
        hierarchy: Shared memory system (attacker co-resident with the
            victim, as in the paper's threat model).
        target_set: The set the attacker monitors.
        d: Receiver split parameter.
        rng: Plaintext generator seed.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        target_set: int = 5,
        d: int = 8,
        rng: RngLike = None,
    ):
        l1 = hierarchy.config.l1
        if l1.num_sets < TABLE_ENTRIES:
            raise ProtocolError(
                f"need >= {TABLE_ENTRIES} sets, have {l1.num_sets}"
            )
        self.hierarchy = hierarchy
        self.target_set = target_set
        self.d = min(d, l1.ways)
        self.rng = make_rng(rng)
        # The attacker's own lines in the target set (no shared memory
        # with the victim: this is Algorithm 2's setting).
        self.lines: List[int] = lines_for_set(
            l1, target_set, l1.ways, tag_base=1 << 9, irregular=True
        )

    def _observe_one(self, victim: TableLookupVictim, plaintext: int) -> bool:
        """One init/encrypt/decode round; True if any line was evicted.

        The victim's fill lands on whichever way PLRU points at, so the
        attacker probes *all* of its lines (a per-set sweep, as the
        receiver in the PL-cache experiment does) rather than only
        line 0.
        """
        for address in self.lines[: self.d]:
            self.hierarchy.load(
                address, thread_id=ATTACKER_THREAD, address_space=0
            )
        victim.encrypt(plaintext)
        for address in self.lines[self.d :]:
            self.hierarchy.load(
                address, thread_id=ATTACKER_THREAD, address_space=0
            )
        evicted = False
        for address in self.lines:
            outcome = self.hierarchy.load(
                address, thread_id=ATTACKER_THREAD, address_space=0
            )
            if not outcome.l1_hit:
                evicted = True
        return evicted

    def recover_key(
        self,
        victim: TableLookupVictim,
        encryptions: int = 256,
        chosen_plaintext: bool = True,
    ) -> SideChannelResult:
        """Watch ``encryptions`` lookups and vote on the key chunk.

        Every observed eviction under plaintext ``p`` votes for
        ``k = p XOR target_set``; the plurality wins.

        Args:
            chosen_plaintext: Cycle deterministically through all 64
                plaintexts (the classic chosen-plaintext model —
                guarantees coverage).  False draws plaintexts uniformly
                (known-plaintext model; coverage is probabilistic).
        """
        victim.warm_table()
        # Attacker steady state: its lines resident in the target set.
        for address in self.lines:
            self.hierarchy.load(
                address, thread_id=ATTACKER_THREAD, address_space=0,
                count=False,
            )
        result = SideChannelResult(recovered_key=None)
        for i in range(encryptions):
            if chosen_plaintext:
                plaintext = i % TABLE_ENTRIES
            else:
                plaintext = self.rng.randrange(TABLE_ENTRIES)
            evicted = self._observe_one(victim, plaintext)
            result.observations += 1
            if evicted:
                result.votes[plaintext ^ self.target_set] += 1
        if result.votes:
            result.recovered_key = result.votes.most_common(1)[0][0]
        return result
