"""Evict+Time baseline (Osvik, Shamir & Tromer; paper reference [2]).

The attacker times the *victim's own* operation, once with the cache
undisturbed and once after evicting a chosen set.  A slowdown reveals
that the victim used the evicted set.  Included for completeness of the
related-work comparison (Section X): like Prime+Probe it is
contention-based and needs no shared memory, but it measures the victim
end-to-end rather than a single attacker access.
"""

from __future__ import annotations

from typing import Callable, List

from repro.cache.hierarchy import CacheHierarchy
from repro.channels.addresses import lines_for_set

#: A victim computation: takes the hierarchy, returns its total cycles.
VictimFn = Callable[[CacheHierarchy], float]


class EvictTimeAttack:
    """Evict one set, re-time the victim, and compare.

    Args:
        hierarchy: Shared memory system.
        attacker_space: Address space of the attacker's eviction lines.
    """

    def __init__(self, hierarchy: CacheHierarchy, attacker_space: int = 1):
        self.hierarchy = hierarchy
        self.attacker_space = attacker_space

    def evict_set(self, target_set: int) -> None:
        """Fill ``target_set`` with attacker lines, evicting the victim's."""
        l1 = self.hierarchy.config.l1
        lines: List[int] = lines_for_set(
            l1, target_set, l1.ways, tag_base=5 << 13
        )
        for address in lines:
            self.hierarchy.load(
                address, thread_id=1, address_space=self.attacker_space
            )

    def time_victim(self, victim: VictimFn) -> float:
        """Run the victim computation and return its total cycles."""
        return victim(self.hierarchy)

    def probe_set(
        self, victim: VictimFn, target_set: int, trials: int = 3
    ) -> float:
        """Average victim slowdown caused by evicting ``target_set``.

        Returns the mean difference (evicted time − baseline time); a
        positive value means the victim uses the set.
        """
        deltas = []
        for _ in range(trials):
            baseline = self.time_victim(victim)
            self.evict_set(target_set)
            evicted = self.time_victim(victim)
            deltas.append(evicted - baseline)
        return sum(deltas) / len(deltas)

    def scan_sets(
        self, victim: VictimFn, sets: List[int], trials: int = 3
    ) -> dict:
        """Map set index -> mean slowdown, over a list of candidate sets."""
        return {s: self.probe_set(victim, s, trials) for s in sets}
