"""Robustness sweep — fault intensity vs bit-error rate (Section VIII).

The paper's error analysis attributes the channel's noise floor to the
environment: interrupts, other processes' cache traffic, prefetchers,
and timestamp granularity (Sections V-A and VIII).  This experiment
turns that analysis into a curve: one intensity knob scales every
calibrated fault model together (see
:func:`repro.faults.suite.standard_fault_suite`), and the channel is
scored with and without the Hamming(7,4)+interleaving pipe from
``channels/coding.py``.

Expected shape, mirroring Figure 4's noise floor: error grows
monotonically with intensity, and the coded transmission degrades more
gracefully — near-zero residual error while the raw error climbs
through the single-digit percents, at a fixed 7/4 bandwidth cost.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.coding import CodedPipe
from repro.channels.decoder import window_decode
from repro.channels.evaluation import random_message
from repro.channels.protocol import CovertChannelProtocol, ProtocolConfig
from repro.experiments.base import ExperimentResult, register
from repro.faults.suite import standard_fault_suite
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E5_2690


def _transmit(bits: Sequence[int], intensity: float, rng: int) -> List[int]:
    """Send ``bits`` once over a machine under ``intensity`` faults."""
    machine = Machine(
        INTEL_E5_2690, rng=rng, faults=standard_fault_suite(intensity)
    )
    channel = SharedMemoryLRUChannel.build(machine.spec.hierarchy.l1, 1, d=8)
    # ~4 samples per bit, as in the coded-transmission experiment: low
    # enough oversampling that disturbances are visible at Figure 4
    # error levels, and frame-synced decoding so the coded pipe faces
    # pure substitutions.
    config = ProtocolConfig(ts=4500.0, tr=1125.0)
    protocol = CovertChannelProtocol(machine, channel, config)
    return window_decode(protocol.run_hyper_threaded(list(bits)))


def measure_point(
    intensity: float, payload: Sequence[int], rng: int
) -> Tuple[float, float]:
    """(uncoded, coded) error rates for one fault intensity."""
    pipe = CodedPipe(depth=7)
    raw = _transmit(payload, intensity, rng)
    raw_errors = sum(1 for a, b in zip(payload, raw) if a != b)
    raw_errors += abs(len(payload) - len(raw))
    coded = _transmit(pipe.encode(payload), intensity, rng)
    decoded = pipe.decode(coded, len(payload))
    coded_errors = sum(1 for a, b in zip(payload, decoded) if a != b)
    return raw_errors / len(payload), coded_errors / len(payload)


@register("ext_robustness")
def run_ext_robustness(
    intensities: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 3.0),
    message_length: int = 128,
    rng: int = 21,
) -> ExperimentResult:
    """Fault-intensity sweep: raw vs ECC-coded error rate."""
    result = ExperimentResult(
        experiment_id="ext_robustness",
        title="Error rate vs environment fault intensity (Section VIII)",
        columns=[
            "intensity", "interrupts/Mcyc", "uncoded err", "coded err",
        ],
        paper_expectation=(
            "Figure 4's noise floor is environmental: error grows with "
            "system load and coding buys back the low-noise region. "
            "Expect a monotone uncoded curve with the coded curve "
            "below it until the channel saturates."
        ),
        notes=(
            "Intensity 1 is calibrated to the Figure 4 noise-floor "
            "convention (100 interrupt events/Mcycle); the suite also "
            "scales context-switch scrubs, prefetcher streams, TSC "
            "jitter/drift, and sample drop/duplication together."
        ),
    )
    payload = random_message(message_length, rng=rng)
    for intensity in intensities:
        raw_rate, coded_rate = measure_point(intensity, payload, rng)
        result.rows.append(
            [
                intensity,
                round(100.0 * intensity, 1),
                round(raw_rate, 4),
                round(coded_rate, 4),
            ]
        )
    return result
