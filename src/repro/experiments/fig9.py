"""Figure 9 — cost of the replacement-policy defense.

Top panel: L1D miss rate with FIFO and Random replacement, normalized
to Tree-PLRU, over the SPEC-like workload suite.  Bottom panel: CPI
normalized the same way.  The paper's headline: overall CPI changes by
less than 2 %, so swapping the L1 policy is a cheap mitigation.
"""

from __future__ import annotations

from repro.defenses.policy_swap import (
    compare_policies,
    geometric_mean_overhead,
)
from repro.experiments.base import ExperimentResult, register
from repro.workloads.spec_like import SPEC_LIKE_PROFILES


@register("fig9")
def run_fig9(length: int = 12_000, warmup: int = 2_000, rng: int = 5) -> ExperimentResult:
    """Regenerate Figure 9 (both panels, tabulated)."""
    comparison = compare_policies(
        policies=("tree-plru", "fifo", "random"),
        length=length,
        warmup=warmup,
        rng=rng,
    )
    result = ExperimentResult(
        experiment_id="fig9",
        title="L1D replacement-policy defense cost (normalized to Tree-PLRU)",
        columns=[
            "workload", "PLRU L1 miss",
            "FIFO miss norm", "Random miss norm",
            "FIFO CPI norm", "Random CPI norm",
        ],
        paper_expectation=(
            "FIFO/Random miss rates within a few percent of Tree-PLRU "
            "(sometimes better); normalized CPI within 2% everywhere."
        ),
        notes="SPEC CPU2006 replaced by locality-matched synthetic mixes.",
    )
    for profile in SPEC_LIKE_PROFILES:
        name = profile.name
        base = comparison._lookup(name, "tree-plru")
        result.rows.append(
            [
                name,
                f"{base.l1_miss_rate:.2%}",
                round(comparison.normalized_miss_rate(name, "fifo"), 3),
                round(comparison.normalized_miss_rate(name, "random"), 3),
                round(comparison.normalized_cpi(name, "fifo"), 4),
                round(comparison.normalized_cpi(name, "random"), 4),
            ]
        )
    result.rows.append(
        [
            "GEOMEAN",
            "-",
            "-",
            "-",
            round(geometric_mean_overhead(comparison, "fifo"), 4),
            round(geometric_mean_overhead(comparison, "random"), 4),
        ]
    )
    return result
