"""Table II — latency of cache accesses per microarchitecture.

The paper's Table II is a measured property of the hardware; in our
reproduction it is encoded in the machine specs and *verified* here by
actually pushing loads through each simulated hierarchy and reporting
where they hit and how long they took.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.sim.machine import Machine
from repro.sim.specs import ALL_SPECS

#: Paper's Table II values (cycles).
PAPER_TABLE2 = {
    "Intel Xeon E5-2690": ("4-5", "12"),
    "Intel Xeon E3-1245 v5": ("4-5", "12"),
    "AMD EPYC 7571": ("4-5", "17"),
}


@register("table2")
def run_table2() -> ExperimentResult:
    """Measure L1D and L2 hit latencies on each machine preset."""
    result = ExperimentResult(
        experiment_id="table2",
        title="Latency of cache access (cycles)",
        columns=["machine", "L1D ours", "L1D paper", "L2 ours", "L2 paper"],
        paper_expectation="L1D 4-5 cycles everywhere; L2 12 (Intel) / 17 (AMD).",
    )
    for spec in ALL_SPECS:
        machine = Machine(spec, rng=1)
        address = 9 * 64
        # First load misses to memory and fills L1+L2.
        machine.hierarchy.load(address, count=False)
        l1_latency = machine.hierarchy.load(address, count=False).latency
        # Evict from L1 only (fill the set with conflicting lines), then
        # measure an L2 hit.
        stride = spec.hierarchy.l1.num_sets * 64
        for i in range(1, spec.hierarchy.l1.ways + 1):
            machine.hierarchy.load(address + (1 << 24) + i * stride, count=False)
        outcome = machine.hierarchy.load(address, count=False)
        l2_latency = outcome.latency
        l1_paper, l2_paper = PAPER_TABLE2[spec.name]
        result.rows.append(
            [spec.name, l1_latency, l1_paper, l2_latency, l2_paper]
        )
    return result
