"""Figure 7 — AMD EPYC 7571 hyper-threaded traces with moving average.

Section VI: the AMD TSC readout is so coarse that raw observations are
unreadable; the receiver smooths with a moving average whose window is
the best-fit bit period, revealing a wave-like pattern when the sender
alternates 0/1.

Two panels, as in the paper:

* Algorithm 1 with the sender and receiver as two *threads in one
  address space* (pthreads) — required on AMD because the linear-address
  utag way predictor defeats cross-address-space shared-memory probing
  (Section VI-B).
* Algorithm 2 with two separate processes (no shared memory needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.channels.protocol import ChannelRun, CovertChannelProtocol, ProtocolConfig
from repro.common.stats import best_fit_period, mean, moving_average
from repro.experiments.base import ExperimentResult, register
from repro.sim.machine import Machine
from repro.sim.specs import AMD_EPYC_7571


@dataclass
class AMDTrace:
    """One panel of Figure 7."""

    algorithm: int
    run: ChannelRun
    fitted_period: int
    smoothed: List[float]
    wave_amplitude: float  # peak-to-trough of the smoothed wave


def amd_trace(
    algorithm: int,
    bits: int = 10,
    ts: float = 1.0e5,
    tr: float = 1000.0,
    rng: int = 17,
) -> AMDTrace:
    """Run the AMD alternating-bit experiment for one algorithm.

    Uses the paper's parameters directly: Ts = 10⁵ cycles, Tr = 10³,
    i.e. ~100 receiver samples per bit — the regime where single AMD
    samples are unreadable but the moving average resolves the wave.
    """
    machine = Machine(AMD_EPYC_7571, rng=rng)
    if algorithm == 1:
        channel = SharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=8
        )
        # pthreads: one address space (utag-compatible).
        config = ProtocolConfig(ts=ts, tr=tr, sender_space=0)
    else:
        channel = NoSharedMemoryLRUChannel.build(
            machine.spec.hierarchy.l1, 1, d=5
        )
        config = ProtocolConfig(ts=ts, tr=tr, sender_space=1)
    protocol = CovertChannelProtocol(machine, channel, config)
    message = [i % 2 for i in range(bits)]
    run = protocol.run_hyper_threaded(message)

    latencies = run.latencies()
    nominal = max(2, int(ts / tr))
    period = best_fit_period(
        latencies, min_period=max(2, nominal // 2), max_period=nominal * 2
    )
    smoothed = moving_average(latencies, window=period)
    amplitude = (max(smoothed) - min(smoothed)) if smoothed else 0.0
    return AMDTrace(
        algorithm=algorithm,
        run=run,
        fitted_period=period,
        smoothed=smoothed,
        wave_amplitude=amplitude,
    )


@register("fig7")
def run_fig7() -> ExperimentResult:
    """Regenerate Figure 7 (trace summaries)."""
    result = ExperimentResult(
        experiment_id="fig7",
        title="AMD EPYC 7571 hyper-threaded traces (moving average)",
        columns=[
            "algorithm", "samples", "fitted period",
            "raw latency spread", "smoothed wave amplitude",
        ],
        paper_expectation=(
            "Raw samples unreadable (coarse TSC); the moving average at "
            "the best-fit period shows a clear wave; effective rate "
            "~20-25 Kbps, an order of magnitude below Intel."
        ),
        notes="Paper-faithful Ts=1e5, Tr=1e3.",
    )
    for algorithm in (1, 2):
        trace = amd_trace(algorithm)
        lat = trace.run.latencies()
        spread = max(lat) - min(lat) if lat else 0.0
        result.rows.append(
            [
                f"Alg {algorithm}",
                len(lat),
                trace.fitted_period,
                round(spread, 1),
                round(trace.wave_amplitude, 2),
            ]
        )
    return result
