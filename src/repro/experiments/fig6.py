"""Figures 6, 8, and 15 — time-sliced sharing: % of 1s observed.

Section V-B: under OS time-slicing the sender and receiver only
interleave at context switches, so the receiver distinguishes the
sender's constant bit by the *fraction of 1s* across many samples —
near 0% when the sender sends 0 (Algorithm 1, d=8) and a clearly higher
fraction when it sends 1.

Scaling note (DESIGN.md substitution): the paper's x-axis reaches
Tr = 5·10⁸ cycles against Linux quanta of ~10⁷ cycles.  We scale both
down by 10³ (quantum 4·10⁴, Tr up to 5·10⁵), preserving the governing
ratio Tr/quantum, which is what determines how many context switches a
receiver period spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.decoder import percent_ones
from repro.channels.protocol import CovertChannelProtocol, ProtocolConfig
from repro.experiments.base import ExperimentResult, register
from repro.sim.machine import Machine
from repro.sim.specs import (
    AMD_EPYC_7571,
    INTEL_E3_1245V5,
    INTEL_E5_2690,
    MachineSpec,
)

#: Scaled-down scheduling quantum (paper-scale ~4e7, scaled by 1e-3).
QUANTUM = 4.0e4


@dataclass
class TimeSlicedPoint:
    """One data point of Figure 6/8/15."""

    sent_bit: int
    tr: float
    d: int
    percent_ones: float


def time_sliced_sweep(
    spec: MachineSpec,
    tr_values: Sequence[float] = (6.0e4, 1.0e5, 2.0e5),
    d_values: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    samples: int = 60,
    quantum: float = QUANTUM,
    rng: int = 3,
) -> List[TimeSlicedPoint]:
    """Sweep (bit, Tr, d) for Algorithm 1 under time-slicing."""
    points: List[TimeSlicedPoint] = []
    for sent_bit in (0, 1):
        for tr in tr_values:
            for d in d_values:
                machine = Machine(spec, rng=rng)
                channel = SharedMemoryLRUChannel.build(
                    spec.hierarchy.l1, 1, d=d
                )
                # On AMD the way predictor breaks Algorithm 1 across
                # address spaces (Section VI-B), so — as in the paper —
                # the AMD run uses pthreads sharing one space.
                sender_space = 0 if spec.hierarchy.way_predictor else 1
                protocol = CovertChannelProtocol(
                    machine,
                    channel,
                    ProtocolConfig(
                        ts=tr * 10, tr=tr, sender_space=sender_space
                    ),
                )
                # One benign background process: the realism that caps
                # the paper's sending-1 observation at ~30% of ones.
                run = protocol.run_time_sliced(
                    sent_bit,
                    samples=samples,
                    quantum=quantum,
                    noise_processes=1,
                )
                points.append(
                    TimeSlicedPoint(
                        sent_bit=sent_bit,
                        tr=tr,
                        d=d,
                        percent_ones=percent_ones(run),
                    )
                )
    return points


def distinguishability(points: List[TimeSlicedPoint]) -> Dict[Tuple[float, int], float]:
    """Per (Tr, d): |%1s sending 1 − %1s sending 0| — the usable signal."""
    table: Dict[Tuple[float, int, int], float] = {}
    for p in points:
        table[(p.tr, p.d, p.sent_bit)] = p.percent_ones
    return {
        (tr, d): abs(
            table.get((tr, d, 1), 0.0) - table.get((tr, d, 0), 0.0)
        )
        for (tr, d, bit) in table
        if bit == 0
    }


def _figure(
    spec: MachineSpec, experiment_id: str, fig_name: str, samples: int = 40
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"{fig_name}: time-sliced %1s, Algorithm 1 ({spec.name})",
        columns=["Tr", "d", "%1s sending 0", "%1s sending 1", "contrast"],
        paper_expectation=(
            "Sending 0 yields near-0% ones for large d; sending 1 a "
            "clearly higher fraction; d=7,8 give the best contrast; the "
            "contrast needs Tr comparable to several quanta."
        ),
        notes="Cycle counts scaled by 1e-3 vs the paper (see DESIGN.md).",
    )
    points = time_sliced_sweep(
        spec, d_values=(1, 2, 4, 6, 7, 8), samples=samples
    )
    by_key: Dict[Tuple[float, int], Dict[int, float]] = {}
    for p in points:
        by_key.setdefault((p.tr, p.d), {})[p.sent_bit] = p.percent_ones
    for (tr, d), values in sorted(by_key.items()):
        zero = values.get(0, 0.0)
        one = values.get(1, 0.0)
        result.rows.append(
            [tr, d, f"{zero:.0%}", f"{one:.0%}", f"{abs(one - zero):.0%}"]
        )
    return result


@register("fig6")
def run_fig6() -> ExperimentResult:
    """Regenerate Figure 6 (Intel Xeon E5-2690)."""
    return _figure(INTEL_E5_2690, "fig6", "Figure 6")


@register("fig8")
def run_fig8() -> ExperimentResult:
    """Regenerate Figure 8 (AMD EPYC 7571, same-address-space threads)."""
    result = _figure(AMD_EPYC_7571, "fig8", "Figure 8")
    result.paper_expectation = (
        "AMD contrast is smaller (70% vs 77% of 1s in the paper) due to "
        "the coarse TSC; larger Tr improves it."
    )
    return result


@register("fig15")
def run_fig15() -> ExperimentResult:
    """Regenerate Figure 15 (Intel Xeon E3-1245 v5)."""
    return _figure(INTEL_E3_1245V5, "fig15", "Figure 15")
