"""Third batch of extension experiments.

* ``ext_alg2_timesliced`` — reproduces the paper's *negative* result:
  "We also tried to demonstrate Algorithm 2 [under time-slicing] but
  failed to observe any signal" (Section V-B).
* ``ext_capacity`` — channel capacity (mutual information × symbol
  rate) across configurations, unifying rate and error rate into one
  number; defenses show up as capacity ≈ 0.
"""

from __future__ import annotations

import dataclasses

from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.channels.capacity import (
    BinaryChannelStats,
    capacity_bits_per_second,
)
from repro.channels.decoder import sample_bits, window_decode
from repro.channels.evaluation import random_message
from repro.channels.protocol import CovertChannelProtocol, ProtocolConfig
from repro.experiments.base import ExperimentResult, register
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E5_2690


@register("ext_alg2_timesliced")
def run_ext_alg2_timesliced(samples: int = 40, rng: int = 3) -> ExperimentResult:
    """Algorithm 2 under time-slicing: the paper's negative result."""
    result = ExperimentResult(
        experiment_id="ext_alg2_timesliced",
        title="Algorithm 2 under time-sliced sharing (negative result)",
        columns=["algorithm", "%1s sending 0", "%1s sending 1", "contrast"],
        paper_expectation=(
            "Section V-B: 'We also tried to demonstrate Algorithm 2 but "
            "failed to observe any signal' — other processes running "
            "during the long Tr pollute the target set.  Algorithm 1's "
            "contrast under identical conditions is shown for scale."
        ),
    )
    from repro.channels.decoder import percent_ones

    for algorithm, builder, d in (
        (1, SharedMemoryLRUChannel, 8),
        (2, NoSharedMemoryLRUChannel, 8),
    ):
        observed = {}
        for bit in (0, 1):
            machine = Machine(INTEL_E5_2690, rng=rng)
            channel = builder.build(machine.spec.hierarchy.l1, 1, d=d)
            protocol = CovertChannelProtocol(
                machine, channel, ProtocolConfig(ts=1.0e6, tr=1.0e5)
            )
            run = protocol.run_time_sliced(
                bit, samples=samples, quantum=4.0e4, noise_processes=1
            )
            observed[bit] = percent_ones(run)
        result.rows.append(
            [
                f"Alg {algorithm}",
                f"{observed[0]:.0%}",
                f"{observed[1]:.0%}",
                f"{abs(observed[1] - observed[0]):.0%}",
            ]
        )
    return result


@register("ext_capacity")
def run_ext_capacity(bits: int = 96, rng: int = 21) -> ExperimentResult:
    """Channel capacity across configurations and defenses."""
    result = ExperimentResult(
        experiment_id="ext_capacity",
        title="LRU channel capacity (mutual information x symbol rate)",
        columns=[
            "configuration", "flip P(1|0)", "flip P(0|1)",
            "I(X;Y) bits/sym", "capacity Kbps",
        ],
        paper_expectation=(
            "Healthy configurations approach 1 bit/symbol and hundreds "
            "of Kbps (Table IV's rates); the policy-swap defense drives "
            "mutual information to ~0."
        ),
    )
    message = random_message(bits, rng=rng)

    def measure(label, spec, builder, d, ts=6000.0, noise=100.0):
        machine = Machine(spec, rng=rng)
        channel = builder.build(spec.hierarchy.l1, 1, d=d)
        config = ProtocolConfig(
            ts=ts, tr=600.0, noise_events_per_mcycle=noise
        )
        protocol = CovertChannelProtocol(machine, channel, config)
        run = protocol.run_hyper_threaded(message)
        decoded = window_decode(run)
        usable = min(len(decoded), len(message))
        stats = BinaryChannelStats.from_bits(
            message[:usable], decoded[:usable]
        )
        p01, p10 = stats.crossover_probabilities()
        kbps = capacity_bits_per_second(stats, ts, spec.frequency_ghz) / 1000
        result.rows.append(
            [
                label,
                round(p01, 3),
                round(p10, 3),
                round(stats.mutual_information(), 3),
                round(kbps, 1),
            ]
        )

    measure("Alg 1, d=8", INTEL_E5_2690, SharedMemoryLRUChannel, 8)
    measure("Alg 2, d=5", INTEL_E5_2690, NoSharedMemoryLRUChannel, 5)
    measure("Alg 2, d=4 (bad parity)", INTEL_E5_2690, NoSharedMemoryLRUChannel, 4)

    # The policy-swap defense: random replacement in L1.
    base = INTEL_E5_2690.hierarchy
    random_l1 = dataclasses.replace(base.l1, policy="random")
    random_spec = dataclasses.replace(
        INTEL_E5_2690, hierarchy=dataclasses.replace(base, l1=random_l1)
    )
    measure("Alg 1 vs random-replacement L1", random_spec,
            SharedMemoryLRUChannel, 8)
    return result
