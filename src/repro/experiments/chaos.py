"""Chaos harness: a test-only fault plane *around* the simulator.

``repro.faults`` injects disturbances *inside* the simulation (interrupt
bursts, TSC jitter); this module injects them around it — into the
supervised executor's worker processes and durable artifacts — so the
recovery machinery in :mod:`repro.experiments.supervisor` can be proven
rather than trusted:

* **worker kills** — a worker decides, deterministically from the chaos
  seed and the (task, attempt) pair, to die mid-task with ``os._exit``:
  either before running the task (the result is simply lost) or after
  computing it but before reporting (the nastier case: work done, result
  lost, the re-run must still be bit-identical);
* **heartbeat stalls** — the worker's heartbeat thread goes quiet for a
  configured window while the task keeps running, exercising the
  supervisor's stale-heartbeat hard-kill path;
* **artifact corruption** — :func:`truncate_file` and
  :func:`bit_flip_file` damage checkpoints/traces the way torn writes
  and bad sectors do, exercising checksum detection and quarantine;
* **randomized signals** — :func:`schedule_signal` delivers SIGINT/
  SIGTERM to the supervising process at a seeded random point,
  exercising the graceful-drain path.

Everything is seeded: the same :class:`ChaosConfig` against the same
batch produces the same kills at the same points, so chaos tests are
deterministic and a failure reproduces from its seed.  Decisions hash
``(seed, task_id, attempt)`` with SHA-256 rather than drawing from a
shared stream, so they are independent of scheduling order across
workers.
"""

from __future__ import annotations

import hashlib
import os
import signal as signal_module
import threading
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

from repro.common.rng import make_rng

#: Exit status a chaos-killed worker dies with — distinctive in ps/wait
#: output so a chaos kill is never mistaken for a real crash under test.
CHAOS_EXIT_CODE = 86


@dataclass(frozen=True)
class ChaosDecision:
    """What chaos does to one (task, attempt) execution."""

    kill_before_run: bool = False
    kill_before_report: bool = False
    stall_heartbeat: bool = False


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded worker-fault plan, serializable across the fork boundary.

    Args:
        seed: Master chaos seed; every per-(task, attempt) decision is
            derived from it, so runs replay exactly.
        kill_before_run: Probability a worker exits hard before running
            the task it just received.
        kill_before_report: Probability a worker exits hard after
            running the task but before reporting the result.
        stall_heartbeat: Probability the worker's heartbeat goes quiet
            for ``stall_seconds`` while the task runs.
        stall_seconds: Length of an injected heartbeat stall.
        only_tasks: When non-empty, chaos only strikes these task ids —
            the way to build a guaranteed poison task
            (``kill_before_run=1.0, only_tasks=("victim",)``).
    """

    seed: int = 0
    kill_before_run: float = 0.0
    kill_before_report: float = 0.0
    stall_heartbeat: float = 0.0
    stall_seconds: float = 0.0
    only_tasks: Tuple[str, ...] = ()

    def __post_init__(self):
        for name in ("kill_before_run", "kill_before_report", "stall_heartbeat"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.stall_seconds < 0:
            raise ValueError(
                f"stall_seconds must be >= 0, got {self.stall_seconds}"
            )

    # -- serialization (the config crosses the process boundary) --------

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["only_tasks"] = list(self.only_tasks)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ChaosConfig":
        data = dict(data)
        data["only_tasks"] = tuple(data.get("only_tasks", ()))
        return cls(**data)

    # -- decisions ------------------------------------------------------

    def decide(self, task_id: str, attempt: int) -> ChaosDecision:
        """The (deterministic) fault plan for one task execution.

        Hashing ``(seed, task_id, attempt)`` gives every execution an
        independent, scheduling-order-free random stream; retries of a
        killed task draw fresh decisions, so a task under sub-certain
        kill probability eventually completes.
        """
        if self.only_tasks and task_id not in self.only_tasks:
            return ChaosDecision()
        digest = hashlib.sha256(
            f"{self.seed}:{task_id}:{attempt}".encode()
        ).digest()
        rng = make_rng(int.from_bytes(digest[:8], "big"))
        return ChaosDecision(
            kill_before_run=rng.random() < self.kill_before_run,
            kill_before_report=rng.random() < self.kill_before_report,
            stall_heartbeat=rng.random() < self.stall_heartbeat,
        )


@dataclass(frozen=True)
class ServiceChaosConfig:
    """Seeded fault plan for the experiment service (tests only).

    Extends the worker-level chaos plane to the faults only a long-lived
    service can exhibit: corrupted cache entries, clients that vanish
    mid-request, and crash-looping worker pools.  All decisions hash
    ``(seed, kind, identity)`` with SHA-256 — independent of request
    ordering and concurrency, so a chaos run replays exactly from its
    seed.

    Args:
        seed: Master chaos seed.
        corrupt_cache: Probability a freshly written cache entry gets
            one bit flipped on disk (and evicted from memory), forcing
            the next reader through checksum detection + quarantine.
        client_disconnect: Probability the load generator abandons a
            request — sends it, then closes the connection without
            reading the response — exercising the server's dead-writer
            path.
        worker: Optional :class:`ChaosConfig` forwarded to every pool's
            supervised executor (worker kills, heartbeat stalls).
    """

    seed: int = 0
    corrupt_cache: float = 0.0
    client_disconnect: float = 0.0
    worker: Optional[ChaosConfig] = None

    def __post_init__(self):
        for name in ("corrupt_cache", "client_disconnect"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def _draw(self, kind: str, identity: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{identity}".encode()
        ).digest()
        return make_rng(int.from_bytes(digest[:8], "big")).random()

    def decide_corrupt(self, cache_key: str) -> bool:
        """Should this just-written cache entry be bit-flipped?"""
        return self._draw("corrupt-cache", cache_key) < self.corrupt_cache

    def decide_disconnect(self, request_index: int) -> bool:
        """Should the load generator abandon request ``request_index``?"""
        return (
            self._draw("client-disconnect", str(request_index))
            < self.client_disconnect
        )

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "corrupt_cache": self.corrupt_cache,
            "client_disconnect": self.client_disconnect,
            "worker": None if self.worker is None else self.worker.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ServiceChaosConfig":
        data = dict(data)
        worker = data.get("worker")
        data["worker"] = (
            None if worker is None else ChaosConfig.from_dict(worker)
        )
        return cls(**data)


def chaos_exit() -> None:  # pragma: no cover - exercised in subprocesses
    """Die the way a crashed worker dies: immediately, skipping cleanup."""
    os._exit(CHAOS_EXIT_CODE)


# ----------------------------------------------------------------------
# Artifact corruption (parent-side, used by tests and the chaos suite)
# ----------------------------------------------------------------------


def truncate_file(path: str, keep_fraction: float = 0.5) -> int:
    """Truncate a file to a fraction of its size, as a torn write would.

    Returns the number of bytes kept.  ``keep_fraction=0`` leaves an
    empty file — the exact artifact a power loss between ``open`` and
    ``write`` used to publish before fsync'd atomic writes.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(
            f"keep_fraction must be in [0, 1), got {keep_fraction}"
        )
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def bit_flip_file(path: str, seed: int = 0) -> int:
    """Flip one seeded-random bit in the file; returns the byte offset.

    A single flipped bit is the hardest corruption to catch by eye and
    exactly what the checksum envelope exists for.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot bit-flip empty file {path!r}")
    rng = make_rng(seed)
    offset = rng.randrange(size)
    bit = 1 << rng.randrange(8)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ bit]))
    return offset


# ----------------------------------------------------------------------
# Randomized signal delivery (parent-side)
# ----------------------------------------------------------------------


def schedule_signal(
    delay: float,
    signum: int = signal_module.SIGINT,
    pid: Optional[int] = None,
) -> threading.Timer:
    """Deliver ``signum`` to ``pid`` (default: this process) after ``delay``.

    Returns the started :class:`threading.Timer`; tests cancel it in a
    ``finally`` so a signal never outlives its test.  Combined with a
    seeded random delay this is the "signal at a randomized point" leg
    of the chaos plane.
    """
    target = os.getpid() if pid is None else pid
    timer = threading.Timer(delay, os.kill, args=(target, signum))
    timer.daemon = True
    timer.start()
    return timer
