"""Figures 5 and 14 — receiver traces while the sender alternates 0/1.

The sanity-check traces of Section V-A: with the sender alternating
bits at Ts=6000 and the receiver sampling at Tr=600, the receiver's
observed latencies form clean ~10-sample blocks below/above the hit
threshold.  Figure 5 is Intel Xeon E5-2690; Figure 14 (Appendix B) is
the same experiment on the E3-1245 v5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.channels.decoder import sample_bits
from repro.channels.protocol import ChannelRun, CovertChannelProtocol, ProtocolConfig
from repro.experiments.base import ExperimentResult, register
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E3_1245V5, INTEL_E5_2690, MachineSpec


@dataclass
class AlternatingTrace:
    """One panel of Figure 5/14."""

    machine: str
    algorithm: int
    run: ChannelRun
    block_contrast: float  # mean |block latency - overall mean|, in cycles

    @property
    def latencies(self) -> List[float]:
        return self.run.latencies()


def alternating_trace(
    spec: MachineSpec,
    algorithm: int,
    bits: int = 20,
    ts: float = 6000.0,
    tr: float = 600.0,
    rng: int = 42,
) -> AlternatingTrace:
    """Run the alternating-bit experiment for one algorithm."""
    machine = Machine(spec, rng=rng)
    if algorithm == 1:
        channel = SharedMemoryLRUChannel.build(spec.hierarchy.l1, 1, d=8)
    else:
        channel = NoSharedMemoryLRUChannel.build(spec.hierarchy.l1, 1, d=5)
    protocol = CovertChannelProtocol(
        machine, channel, ProtocolConfig(ts=ts, tr=tr)
    )
    message = [i % 2 for i in range(bits)]
    run = protocol.run_hyper_threaded(message)

    # Contrast metric: group observations by the *actual* sent bit (via
    # the sender's bit-boundary timestamps) and compare mean latencies —
    # the separation between the two latency bands in the figure.
    zero_lat, one_lat = [], []
    boundaries = run.bit_boundaries
    for obs in run.observations:
        index = sum(1 for b in boundaries if b <= obs.timestamp) - 1
        if 0 <= index < len(run.sent_bits):
            (one_lat if run.sent_bits[index] else zero_lat).append(obs.latency)
    contrast = 0.0
    if zero_lat and one_lat:
        contrast = abs(
            sum(zero_lat) / len(zero_lat) - sum(one_lat) / len(one_lat)
        )
    return AlternatingTrace(
        machine=spec.name,
        algorithm=algorithm,
        run=run,
        block_contrast=contrast,
    )


def _figure(spec: MachineSpec, experiment_id: str, fig_name: str) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"{fig_name}: receiver trace, sender alternating 0/1 ({spec.name})",
        columns=[
            "algorithm", "samples", "threshold",
            "phase contrast (cyc)", "per-sample bit flips at period",
        ],
        paper_expectation=(
            "Latency alternates in clean blocks matching the sent bits; "
            "Alg 1: low latency = bit 1; Alg 2: high latency = bit 1."
        ),
    )
    for algorithm in (1, 2):
        trace = alternating_trace(spec, algorithm)
        bits = sample_bits(trace.run)
        transitions = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
        result.rows.append(
            [
                f"Alg {algorithm}",
                len(trace.latencies),
                trace.run.threshold,
                round(trace.block_contrast, 1),
                transitions,
            ]
        )
    return result


@register("fig5")
def run_fig5() -> ExperimentResult:
    """Regenerate Figure 5 (Intel Xeon E5-2690)."""
    return _figure(INTEL_E5_2690, "fig5", "Figure 5")


@register("fig14")
def run_fig14() -> ExperimentResult:
    """Regenerate Figure 14 (Intel Xeon E3-1245 v5)."""
    return _figure(INTEL_E3_1245V5, "fig14", "Figure 14")
