"""Resilient experiment runner: timeouts, retries, checkpoints, jobs.

``python -m repro run all`` regenerates every table and figure in one
go; a single wedged or crashing experiment should cost that one
experiment, not the whole batch.  The runner wraps each registered
experiment with:

* a **wall-clock timeout** — the experiment runs on a worker thread and
  is abandoned (the daemon thread is left to die with the process) if
  it exceeds the budget, surfacing as
  :class:`~repro.common.errors.ExperimentTimeout`.  The abandoned
  thread's result slot is *sealed* at the timeout verdict, so a late
  result is provably discarded (never merged into the checkpoint), and
  the leak is counted via ``runner.timeouts.leaked_threads``;
* **retry with seed rotation** — experiments whose run function takes
  an ``rng`` parameter are retried with a different seed each attempt,
  so a run that landed in a pathological noise realization gets a fresh
  draw (same idea as re-running a flaky hardware measurement);
* **graceful degradation** — an experiment that still fails after its
  retries becomes a structured :class:`ExperimentFailure` in the
  report; the remaining experiments run normally and the process exit
  code reflects the failures;
* **JSON checkpointing** — each completed result is persisted
  immediately, so an interrupted ``run all`` resumes where it stopped
  instead of recomputing finished experiments.  Entries are encoded
  once per completion and the already-encoded fragments are reused, so
  checkpointing a batch of n experiments costs O(n) encoding work, not
  O(n^2).  Checkpoints are versioned and checksummed: a torn or
  bit-flipped file is *detected* at load, quarantined to
  ``<name>.corrupt``, and loudly warned about — never silently
  swallowed — and the legacy (PR 3/4) unversioned format migrates to
  the checksummed one on first load;
* **supervised process parallelism** — ``run_many(..., jobs=N)`` fans
  independent experiments out over the supervised executor
  (:mod:`repro.experiments.supervisor`): long-lived workers with
  heartbeats and per-task deadlines, re-queue of tasks lost to worker
  death, poison-task quarantine after ``max_task_crashes`` consecutive
  crashes, and graceful SIGINT/SIGTERM drain that flushes the
  checkpoint before returning.  Every experiment derives its seeds
  from its own registered defaults (rotated deterministically on
  retry), so results are bit-identical to a sequential run even when
  workers crash and tasks re-run; completions merge into the
  checkpoint as they arrive, and per-experiment failure isolation is
  unchanged.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import threading
import time
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.atomicio import atomic_write_text, quarantine_file
from repro.common.deadline import Deadline
from repro.common.errors import CheckpointCorruptWarning, ExperimentTimeout
from repro.common.retry import retry_with_backoff
from repro.experiments.base import EXPERIMENT_REGISTRY, ExperimentResult
from repro.obs.manifest import RunManifest
from repro.obs.session import ObsSession, active, observe

#: Seed offset between retry attempts, applied to experiments whose run
#: function exposes an ``rng`` parameter.
_SEED_STRIDE = 1000

#: Current on-disk checkpoint format.  Version 2 wraps the PR 3/4
#: payload in a ``{"version", "checksum", "data"}`` envelope whose
#: checksum covers the exact bytes of the ``data`` value.
CHECKPOINT_VERSION = 2

#: Current trace-artifact format: the JSONL stream ends with a
#: ``trace-footer`` record carrying a checksum over every preceding
#: byte.  Readers accept footer-less (PR 4) traces unchanged.
TRACE_VERSION = 2


def auto_jobs() -> int:
    """Default batch worker count: one per CPU actually present.

    ``run_many`` honours any explicit ``jobs`` value (tests rely on
    oversubscribing a small host to exercise the supervisor), but the
    CLI default goes through here so ``--jobs`` never silently
    oversubscribes by default.
    """
    return os.cpu_count() or 1


def _sha256_label(text: str) -> str:
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


def _maybe_observe(session: Optional[ObsSession]):
    """``observe(session)``, or a no-op context when observability is off."""
    if session is None:
        return nullcontext()
    return observe(session)


class _AttemptBox:
    """Single-use, sealable result slot shared with a worker thread.

    The timeout path cannot kill a wedged thread — but it *can* make the
    thread's eventual result unreachable.  The parent seals the box the
    instant the timeout verdict is reached; a publish after the seal is
    rejected (returns False) and the value is dropped on the floor, so a
    late result can never race its way into the checkpoint or overwrite
    a retry's result.  All transitions happen under one lock, so there
    is no window where "timed out" and "result accepted" both hold.
    """

    __slots__ = ("_lock", "_sealed", "_outcome")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sealed = False
        self._outcome: Dict = {}

    def publish(self, key: str, value) -> bool:
        """Store the worker's outcome; False means the box was sealed."""
        with self._lock:
            if self._sealed:
                return False
            self._outcome[key] = value
            return True

    def seal(self) -> Dict:
        """Close the box forever and return whatever arrived in time."""
        with self._lock:
            self._sealed = True
            return dict(self._outcome)


@dataclass
class ObsCapture:
    """Observability record of one experiment's successful attempt.

    Attributes:
        experiment_id: Registered experiment id.
        manifest: Reproducibility record (seed, machines, engine, ...).
        metrics: ``MetricsRegistry.snapshot()`` of the winning attempt,
            or None for entries restored from an old checkpoint.
        events: Trace-bus records of the winning attempt (empty unless
            the runner was tracing).
    """

    experiment_id: str
    manifest: RunManifest
    metrics: Optional[Dict] = None
    events: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        """Checkpoint payload: manifest + metrics (events are trace-only)."""
        return {"manifest": self.manifest.to_dict(), "metrics": self.metrics}

    @classmethod
    def from_dict(cls, experiment_id: str, data: Dict) -> "ObsCapture":
        return cls(
            experiment_id=experiment_id,
            manifest=RunManifest.from_dict(data["manifest"]),
            metrics=data.get("metrics"),
        )


@dataclass
class ExperimentFailure:
    """One experiment that failed after exhausting its retries."""

    experiment_id: str
    error_type: str
    message: str
    attempts: int
    elapsed_seconds: float

    def render(self) -> str:
        return (
            f"[{self.experiment_id}] FAILED after {self.attempts} "
            f"attempt(s) in {self.elapsed_seconds:.1f}s: "
            f"{self.error_type}: {self.message}"
        )


@dataclass
class RunReport:
    """Outcome of one batch: completed results plus structured failures.

    ``interrupted`` means a SIGINT/SIGTERM drained the batch: completed
    results (and the checkpoint) are intact, ``unfinished`` lists the
    experiment ids that never ran, and a re-run with the same
    checkpoint completes exactly the remainder.
    """

    results: List[ExperimentResult] = field(default_factory=list)
    failures: List[ExperimentFailure] = field(default_factory=list)
    resumed: List[str] = field(default_factory=list)
    interrupted: bool = False
    unfinished: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.interrupted

    def summary(self) -> str:
        parts = [f"{len(self.results)} completed"]
        if self.resumed:
            parts.append(f"{len(self.resumed)} restored from checkpoint")
        parts.append(f"{len(self.failures)} failed")
        if self.interrupted:
            parts.append(
                f"interrupted with {len(self.unfinished)} unfinished "
                "(checkpoint flushed; re-run to resume)"
            )
        return ", ".join(parts)


def _pool_worker(spec: Tuple) -> Tuple[str, str, Dict, float, Optional[Dict]]:
    """Run one experiment in a worker process; returns a picklable record.

    This is the task body the supervised executor's workers run.
    ``spec`` is ``(experiment_id, timeout, retries, sanitize, fn,
    observe, trace_depth)`` where ``fn`` is None for globally registered
    experiments (the worker re-imports the registry — cheap under fork,
    required under spawn) or the pickled callable for custom registries.
    Results come back as ``to_dict`` payloads, the same round-trip
    format the checkpoint uses; the trailing element carries the
    worker's :class:`ObsCapture` (manifest/metrics/events) when
    observability was on.  Task-level errors are caught and returned as
    structured failure records — an exception escaping this function
    would kill the worker and be misread as a crash.
    """
    experiment_id, timeout, retries, sanitize, fn, observing, trace_depth = spec
    if fn is None:
        import repro.experiments  # noqa: F401 - populates the registry

        registry = None
    else:
        registry = {experiment_id: fn}
    runner = ExperimentRunner(
        timeout_seconds=timeout,
        retries=retries,
        sanitize=sanitize,
        registry=registry,
        observe=observing,
        trace_depth=max(trace_depth, 1),
    )
    runner._tracing = trace_depth > 0
    start = time.monotonic()
    try:
        result = runner.run_one(experiment_id)
    except Exception as error:  # noqa: BLE001 - isolated per experiment
        payload = {
            "experiment_id": experiment_id,
            "error_type": type(error).__name__,
            "message": str(error),
            "attempts": retries + 1,
            "elapsed_seconds": time.monotonic() - start,
        }
        return (
            experiment_id,
            "failure",
            payload,
            payload["elapsed_seconds"],
            None,
        )
    capture = runner.captures.get(experiment_id)
    obs_payload = None
    if capture is not None:
        obs_payload = capture.to_dict()
        obs_payload["events"] = capture.events
    return (
        experiment_id,
        "result",
        result.to_dict(),
        time.monotonic() - start,
        obs_payload,
    )


class ExperimentRunner:
    """Runs registered experiments with isolation between them.

    Args:
        timeout_seconds: Wall-clock budget per attempt; ``None``
            disables the timeout.
        retries: Extra attempts after the first failure (0 = fail
            fast).  Attempts rotate the experiment's ``rng`` seed when
            its run function accepts one.
        checkpoint_path: JSON file for completed results; when set,
            experiments already recorded there are restored instead of
            re-run, and every new completion is persisted immediately.
        registry: Experiment-id → callable mapping; defaults to the
            global registry (injection point for tests).
        sanitize: Run every experiment with the runtime sanitizer armed
            (see :mod:`repro.analysis.sanitize`): machines the
            experiment builds get invariant-checking proxies, and state
            corruption surfaces as a structured
            :class:`~repro.common.errors.InvariantViolation` failure
            for that experiment instead of a silently wrong table.
        observe: Open an observability session around every attempt
            (see :mod:`repro.obs`): the winning attempt's metrics
            snapshot and run manifest land in :attr:`captures` (and in
            the checkpoint).  Implied by ``trace_path``.
        trace_path: Write the batch as a JSONL trace artifact
            (:meth:`write_trace`): run header, then per experiment a
            manifest, result, metrics snapshot, and the trace-bus tail.
        trace_depth: Ring-buffer depth for the per-attempt trace bus
            (only meaningful with ``trace_path``).
        max_task_crashes: Consecutive worker crashes one experiment may
            cause under ``jobs > 1`` before it is quarantined as a
            structured failure instead of re-queued.
        heartbeat_interval: Worker heartbeat period under ``jobs > 1``.
        drain_timeout: After SIGINT/SIGTERM, how long in-flight
            experiments may finish before being killed.
        task_deadline_seconds: Hard per-task wall-clock backstop
            enforced by worker SIGKILL; default derives from
            ``timeout_seconds`` (attempts budget plus grace), ``None``
            with no timeout.
        chaos: Test-only :class:`~repro.experiments.chaos.ChaosConfig`
            injected into workers.
    """

    #: Grace added to the derived per-task deadline: the worker's own
    #: cooperative timeout fires first; the supervisor kill is for
    #: processes too wedged to honor it.
    TASK_DEADLINE_GRACE = 30.0

    def __init__(
        self,
        timeout_seconds: Optional[float] = None,
        retries: int = 1,
        checkpoint_path: Optional[str] = None,
        registry: Optional[Dict[str, Callable[..., ExperimentResult]]] = None,
        sanitize: bool = False,
        observe: bool = False,
        trace_path: Optional[str] = None,
        trace_depth: int = 65536,
        max_task_crashes: int = 3,
        heartbeat_interval: float = 1.0,
        drain_timeout: float = 10.0,
        task_deadline_seconds: Optional[float] = None,
        chaos=None,
    ):
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be > 0, got {timeout_seconds}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if trace_depth < 1:
            raise ValueError(f"trace_depth must be >= 1, got {trace_depth}")
        self.timeout_seconds = timeout_seconds
        self.retries = retries
        self.checkpoint_path = checkpoint_path
        self.registry = EXPERIMENT_REGISTRY if registry is None else registry
        self.sanitize = sanitize
        self.trace_path = trace_path
        self.trace_depth = trace_depth
        self.observe = observe or trace_path is not None
        self.max_task_crashes = max_task_crashes
        self.heartbeat_interval = heartbeat_interval
        self.drain_timeout = drain_timeout
        self.task_deadline_seconds = task_deadline_seconds
        self.chaos = chaos
        # Whether per-attempt sessions carry a trace bus (the worker
        # flips this on without a file path of its own).
        self._tracing = trace_path is not None
        #: Per-experiment observability records (manifest, metrics,
        #: trace events) of completed experiments, keyed by id.
        self.captures: Dict[str, ObsCapture] = {}
        #: Supervisor recovery counters of the last parallel batch
        #: (:class:`~repro.experiments.supervisor.ExecutorStats`), or
        #: None when the batch ran in-process.
        self.executor_stats = None
        #: Corrupt durable artifacts detected (and quarantined) by this
        #: runner — surfaces in the trace header.
        self.corrupt_artifacts_detected = 0
        #: Worker threads abandoned by a per-attempt timeout (they die
        #: with the process; their late results are sealed out).
        self.leaked_timeout_threads = 0
        #: Snapshot of the batch-level (parent-process) metrics of the
        #: last ``run_many`` call, when observability was on: executor
        #: recovery counters, checkpoint corruption detections.
        self.batch_metrics: Optional[Dict] = None
        # id -> JSON-encoded checkpoint entry; each entry is encoded
        # exactly once (at load or at completion) and reused verbatim
        # for every subsequent checkpoint write.
        self._encoded_entries: Dict[str, str] = {}
        self._encoded_obs: Dict[str, str] = {}
        self._checkpoint_dirty = False
        self._legacy_checkpoint = False

    # -- single experiment ---------------------------------------------

    def run_one(
        self,
        experiment_id: str,
        deadline: Optional[Deadline] = None,
    ) -> ExperimentResult:
        """Run one experiment through the timeout/retry harness.

        Args:
            experiment_id: Registered experiment id.
            deadline: Optional end-to-end budget propagated from the
                caller (a service request, a CLI flag).  Each attempt's
                timeout is shrunk to the remaining budget, and the retry
                loop stops early (raising the last error) once the
                deadline is blown — the attempt/retry budgets compose
                with it instead of stacking past it.

        Raises whatever the final attempt raised (or
        :class:`ExperimentTimeout`) once retries are exhausted.
        """
        fn = self.registry[experiment_id]
        # Resolve the signature once; retries reuse the parameter
        # instead of re-running inspect.signature per attempt.
        rng_parameter = self._rng_parameter(fn)

        def attempt(index: int) -> ExperimentResult:
            kwargs = {}
            if rng_parameter is not None and index > 0:
                kwargs["rng"] = self._rotated_seed(rng_parameter, index)
            if not self.observe:
                return self._run_attempt(experiment_id, fn, kwargs, deadline)
            # A fresh session per attempt: counts never bleed between
            # retries, and only the winning attempt's capture survives.
            session = ObsSession(
                trace_depth=self.trace_depth if self._tracing else 0
            )
            with observe(session):
                with session.span(
                    "experiment", experiment_id=experiment_id, attempt=index
                ):
                    result = self._run_attempt(
                        experiment_id, fn, kwargs, deadline
                    )
            if index > 0:
                session.metrics.counter("runner.retries").inc(index)
            self._capture(experiment_id, session, rng_parameter, index)
            return result

        return retry_with_backoff(
            attempt,
            attempts=self.retries + 1,
            base_delay=0.0,
            deadline=deadline,
        )

    def _run_attempt(
        self,
        experiment_id: str,
        fn: Callable,
        kwargs: Dict,
        deadline: Optional[Deadline] = None,
    ) -> ExperimentResult:
        if self.sanitize:
            from repro.analysis.sanitize import scoped_sanitize

            with scoped_sanitize():
                return self._call_with_timeout(
                    experiment_id, fn, kwargs, deadline
                )
        return self._call_with_timeout(experiment_id, fn, kwargs, deadline)

    def _capture(
        self,
        experiment_id: str,
        session: ObsSession,
        rng_parameter: Optional[inspect.Parameter],
        index: int,
    ) -> None:
        """Record the winning attempt's manifest, metrics, and events."""
        from repro.sim.fastpath import default_engine

        self.captures[experiment_id] = ObsCapture(
            experiment_id=experiment_id,
            manifest=RunManifest.with_provenance(
                experiment_id=experiment_id,
                seed=self._attempt_seed(rng_parameter, index),
                attempts=index + 1,
                machines=session.machines(),
                fault_models=session.fault_models(),
                engine=default_engine(),
                sanitize=self.sanitize,
            ),
            metrics=session.metrics.snapshot(),
            events=session.bus.records() if session.bus is not None else [],
        )

    @staticmethod
    def _rng_parameter(fn: Callable) -> Optional[inspect.Parameter]:
        """The run function's ``rng`` parameter, if it has one."""
        try:
            return inspect.signature(fn).parameters.get("rng")
        except (TypeError, ValueError):
            return None

    @staticmethod
    def _rotated_seed(parameter: inspect.Parameter, attempt: int) -> int:
        base = parameter.default
        if not isinstance(base, int):
            base = 0
        return base + attempt * _SEED_STRIDE

    @staticmethod
    def _attempt_seed(
        parameter: Optional[inspect.Parameter], attempt: int
    ) -> Optional[int]:
        """The seed attempt ``attempt`` actually ran with (for manifests)."""
        if parameter is None:
            return None
        if attempt == 0:
            default = parameter.default
            return default if isinstance(default, int) else None
        return ExperimentRunner._rotated_seed(parameter, attempt)

    def _call_with_timeout(
        self,
        experiment_id: str,
        fn: Callable,
        kwargs: Dict,
        deadline: Optional[Deadline] = None,
    ) -> ExperimentResult:
        timeout = self.timeout_seconds
        if deadline is not None:
            if deadline.expired:
                raise ExperimentTimeout(
                    f"experiment {experiment_id!r} not started: "
                    "end-to-end deadline already expired"
                )
            # A deadline always implies *some* per-attempt bound, even
            # when the runner itself has no timeout configured.
            timeout = deadline.bound(timeout)
        if timeout is None:
            return fn(**kwargs)
        box = _AttemptBox()

        def worker():
            try:
                result = fn(**kwargs)
            except BaseException as error:  # noqa: BLE001 - reported below
                box.publish("error", error)
            else:
                box.publish("result", result)

        thread = threading.Thread(
            target=worker, name=f"experiment-{experiment_id}", daemon=True
        )
        thread.start()
        thread.join(timeout)
        # Seal *before* inspecting: from this instant any result the
        # worker produces is provably discarded, closing the race where
        # an attempt finishes between the join timeout and the verdict.
        outcome = box.seal()
        if not outcome:
            # The worker cannot be killed; as a daemon it dies with the
            # process, and the batch moves on without it — but the leak
            # is counted, not silent.
            self.leaked_timeout_threads += 1
            session = active()
            if session is not None:
                session.metrics.counter(
                    "runner.timeouts.leaked_threads"
                ).inc()
            raise ExperimentTimeout(
                f"experiment {experiment_id!r} exceeded "
                f"{timeout:.1f}s wall-clock budget"
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["result"]

    # -- batches --------------------------------------------------------

    def run_many(
        self,
        ids: Sequence[str],
        on_result: Optional[Callable[[ExperimentResult, float], None]] = None,
        on_failure: Optional[Callable[[ExperimentFailure], None]] = None,
        jobs: int = 1,
    ) -> RunReport:
        """Run a batch, isolating failures and checkpointing progress.

        Args:
            ids: Experiment ids, in execution order.  Results and
                failures are reported in this order regardless of
                ``jobs``.
            on_result: Callback fired after each completion (restored
                checkpoint entries fire it with 0.0 elapsed seconds).
            on_failure: Callback fired after each terminal failure.
            jobs: Number of worker processes.  1 (the default) runs in
                this process; higher values fan pending experiments out
                over the supervised executor
                (:mod:`repro.experiments.supervisor`), which survives
                worker crashes, hangs, and signals.  Seeds are derived
                from each experiment's own registered defaults, so
                parallel results are identical to sequential ones even
                when a task re-runs after a crash.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        cpu_count = os.cpu_count() or 1
        oversubscribed = jobs > cpu_count
        if oversubscribed:
            # Honoured anyway (tests deliberately oversubscribe tiny
            # hosts to exercise the supervisor), but flagged: extra
            # workers only time-slice the same cores.
            warnings.warn(
                f"jobs={jobs} exceeds os.cpu_count()={cpu_count}; "
                f"extra workers will time-slice, not speed up the batch",
                RuntimeWarning,
                stacklevel=2,
            )
        report = RunReport()
        batch_session = ObsSession(trace_depth=0) if self.observe else None
        with _maybe_observe(batch_session):
            if oversubscribed and batch_session is not None:
                batch_session.metrics.counter(
                    "runner.jobs.oversubscribed"
                ).inc()
            completed = self._load_checkpoint()
            if self._legacy_checkpoint and completed:
                # One-step migration: rewrite the legacy (unversioned)
                # checkpoint in the checksummed envelope immediately.
                self._checkpoint_dirty = True
                self._save_checkpoint(completed)
            pending: List[str] = []
            for experiment_id in ids:
                if experiment_id in completed:
                    result = completed[experiment_id]
                    report.results.append(result)
                    report.resumed.append(experiment_id)
                    if on_result is not None:
                        on_result(result, 0.0)
                else:
                    pending.append(experiment_id)
            if jobs == 1 or len(pending) <= 1:
                self._run_sequential(
                    pending, report, completed, on_result, on_failure
                )
            else:
                self._run_parallel(
                    pending, report, completed, on_result, on_failure, jobs
                )
        if batch_session is not None:
            self.batch_metrics = batch_session.metrics.snapshot()
        return report

    def run_trials(
        self,
        algorithm: str,
        trials: int,
        message_length: int = 64,
        block_size: int = 256,
        seed: int = 2020,
        hierarchy=None,
        on_result: Optional[Callable[[ExperimentResult, float], None]] = None,
        on_failure: Optional[Callable[[ExperimentFailure], None]] = None,
    ) -> RunReport:
        """Run N independent channel trials through the batch engine.

        Trials are executed in lockstep blocks of ``block_size`` by
        :class:`~repro.sim.batch.BatchEngine`; each block becomes one
        :class:`ExperimentResult` (one row per trial: bit errors and
        error rate) flowing through the same checkpoint, callback,
        capture, and trace plumbing as ``run_many``.  Per-trial RNG
        streams are keyed by the *absolute* trial index, so block
        boundaries never change any trial's result — which is what makes
        the per-block checkpoint ids (``alg1@trials0-256``) safe to
        restore under a different ``trials`` total.  A checkpoint is
        only reusable for the same ``block_size``/``message_length``/
        ``seed``; block ids do not encode those, so use a fresh
        checkpoint file per configuration.

        Args:
            algorithm: ``"alg1"`` or ``"alg2"`` (see
                :data:`~repro.sim.batch.BATCH_CHANNELS`).
            trials: Total independent transfers to run.
            message_length: Bits per trial.
            block_size: Lockstep batch width per block (memory scales
                with it; results do not depend on it).
            seed: Master seed for the per-trial streams.
            hierarchy: Optional cache shape override.
            on_result / on_failure: Per-block callbacks, as in
                ``run_many``.
        """
        from repro.sim.batch import BATCH_CHANNELS, BatchEngine

        if algorithm not in BATCH_CHANNELS:
            raise ValueError(
                f"unknown batch algorithm {algorithm!r}; "
                f"choose from {sorted(BATCH_CHANNELS)}"
            )
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if message_length < 1:
            raise ValueError(
                f"message_length must be >= 1, got {message_length}"
            )
        engine = BatchEngine(
            algorithm=algorithm, hierarchy=hierarchy, seed=seed
        )
        blocks = [
            (lo, min(trials, lo + block_size))
            for lo in range(0, trials, block_size)
        ]
        report = RunReport()
        completed = self._load_checkpoint()
        if self._legacy_checkpoint and completed:
            self._checkpoint_dirty = True
            self._save_checkpoint(completed)
        for lo, hi in blocks:
            block_id = f"{algorithm}@trials{lo}-{hi}"
            restored = completed.get(block_id)
            if restored is not None:
                report.results.append(restored)
                report.resumed.append(block_id)
                if on_result is not None:
                    on_result(restored, 0.0)
                continue
            start = time.monotonic()
            try:
                result = self._run_trial_block(
                    engine, block_id, lo, hi, message_length, seed
                )
            except Exception as error:  # noqa: BLE001 - degraded, not fatal
                failure = ExperimentFailure(
                    experiment_id=block_id,
                    error_type=type(error).__name__,
                    message=str(error),
                    attempts=1,
                    elapsed_seconds=time.monotonic() - start,
                )
                report.failures.append(failure)
                if on_failure is not None:
                    on_failure(failure)
                continue
            report.results.append(result)
            completed[block_id] = result
            self._record_completion(block_id, result)
            self._save_checkpoint(completed)
            if on_result is not None:
                on_result(result, time.monotonic() - start)
        return report

    def _run_trial_block(
        self,
        engine,
        block_id: str,
        lo: int,
        hi: int,
        message_length: int,
        seed: int,
    ) -> ExperimentResult:
        """One lockstep block: transfer, per-trial rows, obs capture."""
        session = (
            ObsSession(trace_depth=self.trace_depth if self._tracing else 0)
            if self.observe
            else None
        )
        with _maybe_observe(session):
            if session is not None:
                with session.span(
                    "trial-block", experiment_id=block_id, attempt=0
                ):
                    transfer = engine.run_transfer(
                        hi - lo, message_length, trial_offset=lo
                    )
            else:
                transfer = engine.run_transfer(
                    hi - lo, message_length, trial_offset=lo
                )
        errors = (transfer.sent != transfer.decoded).sum(axis=1)
        rates = transfer.error_rates()
        notes = (
            f"engine=batch seed={seed} "
            f"threshold={transfer.threshold:.2f} cycles"
        )
        if transfer.fallback_steps:
            notes += (
                f"; open-table fallback served "
                f"{transfer.fallback_steps} trial-steps"
            )
        result = ExperimentResult(
            experiment_id=block_id,
            title=(
                f"batch {engine.algorithm} trials {lo}..{hi - 1} "
                f"({message_length} bits/trial)"
            ),
            columns=["trial", "bit_errors", "error_rate"],
            rows=[
                [lo + index, int(errors[index]), float(rates[index])]
                for index in range(hi - lo)
            ],
            notes=notes,
        )
        if session is not None:
            from repro.sim.fastpath import default_engine

            self.captures[block_id] = ObsCapture(
                experiment_id=block_id,
                manifest=RunManifest.with_provenance(
                    experiment_id=block_id,
                    seed=seed,
                    attempts=1,
                    machines=session.machines(),
                    fault_models=session.fault_models(),
                    engine=default_engine(),
                    sanitize=self.sanitize,
                ),
                metrics=session.metrics.snapshot(),
                events=(
                    session.bus.records() if session.bus is not None else []
                ),
            )
        return result

    def _run_sequential(
        self,
        pending: Sequence[str],
        report: RunReport,
        completed: Dict[str, ExperimentResult],
        on_result,
        on_failure,
    ) -> None:
        for experiment_id in pending:
            start = time.monotonic()
            try:
                result = self.run_one(experiment_id)
            except Exception as error:  # noqa: BLE001 - degraded, not fatal
                failure = ExperimentFailure(
                    experiment_id=experiment_id,
                    error_type=type(error).__name__,
                    message=str(error),
                    attempts=self.retries + 1,
                    elapsed_seconds=time.monotonic() - start,
                )
                report.failures.append(failure)
                if on_failure is not None:
                    on_failure(failure)
                continue
            report.results.append(result)
            completed[experiment_id] = result
            self._record_completion(experiment_id, result)
            self._save_checkpoint(completed)
            if on_result is not None:
                on_result(result, time.monotonic() - start)

    def _task_deadline(self) -> Optional[float]:
        """The supervisor's hard per-task kill budget.

        Explicit ``task_deadline_seconds`` wins; otherwise derive from
        the cooperative per-attempt timeout (which the worker enforces
        itself) — all attempts plus grace — or no deadline at all.
        """
        if self.task_deadline_seconds is not None:
            return self.task_deadline_seconds
        if self.timeout_seconds is None:
            return None
        budget = self.timeout_seconds * (self.retries + 1)
        return budget + self.TASK_DEADLINE_GRACE

    def _run_parallel(
        self,
        pending: Sequence[str],
        report: RunReport,
        completed: Dict[str, ExperimentResult],
        on_result,
        on_failure,
        jobs: int,
    ) -> None:
        """Fan pending experiments out over the supervised executor.

        Callbacks and checkpoint merges happen in this (parent) process
        as completions arrive; the final report lists results in
        submission order so output is stable across schedules.  Worker
        crashes re-queue their task (the re-run is bit-identical) and
        poison tasks arrive as structured ``WorkerCrashed`` failures.
        """
        from repro.experiments.supervisor import SupervisedExecutor

        global_registry = self.registry is EXPERIMENT_REGISTRY
        tasks = [
            (
                experiment_id,
                (
                    experiment_id,
                    self.timeout_seconds,
                    self.retries,
                    self.sanitize,
                    None if global_registry else self.registry[experiment_id],
                    self.observe,
                    self.trace_depth if self._tracing else 0,
                ),
            )
            for experiment_id in pending
        ]
        results_by_id: Dict[str, ExperimentResult] = {}
        failures_by_id: Dict[str, ExperimentFailure] = {}

        def on_record(record) -> None:
            experiment_id, kind, payload, elapsed, obs_payload = record
            if kind == "result":
                result = ExperimentResult.from_dict(payload)
                results_by_id[experiment_id] = result
                completed[experiment_id] = result
                if obs_payload is not None:
                    capture = ObsCapture.from_dict(experiment_id, obs_payload)
                    capture.events = obs_payload.get("events", [])
                    self.captures[experiment_id] = capture
                self._record_completion(experiment_id, result)
                self._save_checkpoint(completed)
                if on_result is not None:
                    on_result(result, elapsed)
            else:
                failure = ExperimentFailure(**payload)
                failures_by_id[experiment_id] = failure
                if on_failure is not None:
                    on_failure(failure)

        executor = SupervisedExecutor(
            worker_fn=_pool_worker,
            jobs=min(jobs, len(tasks)),
            heartbeat_interval=self.heartbeat_interval,
            task_deadline=self._task_deadline(),
            max_task_crashes=self.max_task_crashes,
            drain_timeout=self.drain_timeout,
            chaos=self.chaos,
        )
        outcome = executor.run(tasks, on_record)
        self.executor_stats = outcome.stats
        report.interrupted = outcome.interrupted
        report.unfinished = list(outcome.unfinished)
        # A drain interrupts the executor loop between completions; the
        # per-completion saves already flushed everything that finished,
        # but make the final state explicit (and cheap: clean skips).
        self._save_checkpoint(completed)
        for experiment_id in pending:
            if experiment_id in results_by_id:
                report.results.append(results_by_id[experiment_id])
            elif experiment_id in failures_by_id:
                report.failures.append(failures_by_id[experiment_id])

    # -- checkpointing --------------------------------------------------

    def _load_checkpoint(self) -> Dict[str, ExperimentResult]:
        self._encoded_entries = {}
        self._encoded_obs = {}
        self._checkpoint_dirty = False
        self._legacy_checkpoint = False
        if self.checkpoint_path is None:
            return {}
        try:
            with open(self.checkpoint_path) as handle:
                raw = handle.read()
        except FileNotFoundError:
            return {}
        except (OSError, UnicodeDecodeError) as error:
            # UnicodeDecodeError: a bit flip can corrupt the UTF-8
            # encoding itself, before JSON parsing even starts.
            return self._quarantine_checkpoint(f"unreadable: {error}")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as error:
            return self._quarantine_checkpoint(f"not valid JSON ({error})")
        if not isinstance(data, dict):
            return self._quarantine_checkpoint("top-level value is not a dict")
        if "version" in data:
            entries = self._verify_envelope(raw, data)
            if entries is None:
                return {}
        else:
            # Legacy PR 3/4 format: no envelope, payload at top level.
            # Accept it and migrate to the checksummed format on the
            # next save (run_many forces one immediately).
            entries = data
            self._legacy_checkpoint = True
        restored = {}
        try:
            for experiment_id, entry in entries.get("results", {}).items():
                restored[experiment_id] = ExperimentResult.from_dict(entry)
                # Encode restored entries once, straight from the raw dict.
                self._encoded_entries[experiment_id] = json.dumps(entry)
            for experiment_id, entry in entries.get("obs", {}).items():
                if experiment_id in restored:
                    self.captures[experiment_id] = ObsCapture.from_dict(
                        experiment_id, entry
                    )
                    self._encoded_obs[experiment_id] = json.dumps(entry)
        except (KeyError, TypeError, AttributeError) as error:
            self.captures.clear()
            self._encoded_entries = {}
            self._encoded_obs = {}
            return self._quarantine_checkpoint(
                f"entries do not decode ({type(error).__name__}: {error})"
            )
        return restored

    def _verify_envelope(self, raw: str, data: Dict) -> Optional[Dict]:
        """Validate a versioned checkpoint envelope; None means corrupt.

        The checksum covers the exact bytes of the ``data`` value as
        written by :meth:`_save_checkpoint`, so any torn tail, flipped
        bit, or hand edit inside the payload is caught without
        re-canonicalizing the JSON.
        """
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            self._quarantine_checkpoint(
                f"unsupported checkpoint version {version!r} "
                f"(this build writes {CHECKPOINT_VERSION})"
            )
            return None
        body = raw.rstrip()
        marker = '"data": '
        index = body.find(marker)
        if not body.endswith("}") or index == -1:
            self._quarantine_checkpoint("envelope layout is malformed")
            return None
        payload = body[index + len(marker):-1]
        if _sha256_label(payload) != data.get("checksum"):
            self._quarantine_checkpoint("checksum mismatch")
            return None
        entries = data.get("data")
        if not isinstance(entries, dict):
            self._quarantine_checkpoint("data section is not a dict")
            return None
        return entries

    def _quarantine_checkpoint(self, reason: str) -> Dict:
        """Move a corrupt checkpoint aside and warn — never silently eat it."""
        corrupt_path = quarantine_file(self.checkpoint_path)
        self.corrupt_artifacts_detected += 1
        session = active()
        if session is not None:
            session.metrics.counter("checkpoint.corrupt.detected").inc()
        where = (
            f"quarantined to {corrupt_path}"
            if corrupt_path
            else "could not be quarantined (left in place; it will be "
            "overwritten)"
        )
        warnings.warn(
            f"checkpoint {self.checkpoint_path} failed integrity checks "
            f"({reason}); {where}; completed experiments will be "
            "recomputed",
            CheckpointCorruptWarning,
            stacklevel=3,
        )
        return {}

    def _record_completion(
        self, experiment_id: str, result: ExperimentResult
    ) -> None:
        """Encode one finished result (and its capture) for checkpoint reuse."""
        if self.checkpoint_path is not None:
            self._encoded_entries[experiment_id] = json.dumps(result.to_dict())
            capture = self.captures.get(experiment_id)
            if capture is not None:
                self._encoded_obs[experiment_id] = json.dumps(capture.to_dict())
            self._checkpoint_dirty = True

    def _save_checkpoint(self, completed: Dict[str, ExperimentResult]) -> None:
        if self.checkpoint_path is None or not self._checkpoint_dirty:
            # Nothing new since the last write (e.g. a pure resume):
            # skip the write entirely.
            return
        # Assemble from the per-entry fragments; only brand-new entries
        # were encoded since the last write, so a batch of n completions
        # costs O(n) total encoding work instead of O(n^2).
        fragments = []
        obs_fragments = []
        for experiment_id, result in completed.items():
            encoded = self._encoded_entries.get(experiment_id)
            if encoded is None:
                encoded = json.dumps(result.to_dict())
                self._encoded_entries[experiment_id] = encoded
            fragments.append(f"{json.dumps(experiment_id)}: {encoded}")
            encoded_obs = self._encoded_obs.get(experiment_id)
            if encoded_obs is not None:
                obs_fragments.append(
                    f"{json.dumps(experiment_id)}: {encoded_obs}"
                )
        payload = (
            '{"results": {'
            + ", ".join(fragments)
            + '}, "obs": {'
            + ", ".join(obs_fragments)
            + "}}"
        )
        # Envelope: version + checksum over the payload's exact bytes.
        # The write is atomic *and durable* (fsync before rename) so a
        # power loss never publishes an empty or torn file.
        text = (
            f'{{"version": {CHECKPOINT_VERSION}, '
            f'"checksum": "{_sha256_label(payload)}", '
            f'"data": {payload}}}'
        )
        atomic_write_text(self.checkpoint_path, text)
        self._checkpoint_dirty = False
        self._legacy_checkpoint = False

    # -- trace artifact -------------------------------------------------

    def write_trace(
        self, report: RunReport, ids: Sequence[str], jobs: int = 1
    ) -> Optional[str]:
        """Write the batch's JSONL trace artifact to ``trace_path``.

        One ``run`` header (provenance + invocation), then per completed
        experiment a ``manifest``, ``result``, and ``metrics`` record,
        then the per-experiment trace-bus records (each stamped with its
        ``experiment_id``).  Returns the path written, or None when the
        runner has no ``trace_path``.
        """
        if self.trace_path is None:
            return None
        from repro.obs.manifest import git_revision
        from repro.sim.fastpath import default_engine
        import platform

        import repro

        lines: List[str] = []
        header = {
            "type": "run",
            "trace_version": TRACE_VERSION,
            "experiment_ids": list(ids),
            "package_version": repro.__version__,
            "git_rev": git_revision(),
            "python_version": platform.python_version(),
            "engine": default_engine(),
            "jobs": jobs,
            "sanitize": self.sanitize,
            "summary": report.summary(),
        }
        if self.executor_stats is not None:
            header["executor"] = self.executor_stats.to_dict()
        if self.corrupt_artifacts_detected:
            header["corrupt_artifacts_detected"] = (
                self.corrupt_artifacts_detected
            )
        lines.append(json.dumps(header))
        for result in report.results:
            capture = self.captures.get(result.experiment_id)
            if capture is not None:
                manifest_record = {"type": "manifest"}
                manifest_record.update(capture.manifest.to_dict())
                lines.append(json.dumps(manifest_record))
            lines.append(
                json.dumps(
                    {
                        "type": "result",
                        "experiment_id": result.experiment_id,
                        "result": result.to_dict(),
                    }
                )
            )
            if capture is not None and capture.metrics is not None:
                lines.append(
                    json.dumps(
                        {
                            "type": "metrics",
                            "experiment_id": result.experiment_id,
                            "metrics": capture.metrics,
                        }
                    )
                )
        for result in report.results:
            capture = self.captures.get(result.experiment_id)
            if capture is None:
                continue
            for record in capture.events:
                stamped = dict(record)
                stamped["experiment_id"] = result.experiment_id
                lines.append(json.dumps(stamped))
        for failure in report.failures:
            lines.append(
                json.dumps(
                    {
                        "type": "failure",
                        "experiment_id": failure.experiment_id,
                        "error_type": failure.error_type,
                        "message": failure.message,
                        "attempts": failure.attempts,
                    }
                )
            )
        body = "\n".join(lines) + "\n"
        footer = json.dumps(
            {
                "type": "trace-footer",
                "trace_version": TRACE_VERSION,
                "records": len(lines),
                "checksum": _sha256_label(body),
            }
        )
        atomic_write_text(self.trace_path, body + footer + "\n")
        return self.trace_path
