"""Resilient experiment runner: timeouts, retries, checkpoints.

``python -m repro run all`` regenerates every table and figure in one
go; a single wedged or crashing experiment should cost that one
experiment, not the whole batch.  The runner wraps each registered
experiment with:

* a **wall-clock timeout** — the experiment runs on a worker thread and
  is abandoned (the daemon thread is left to die with the process) if
  it exceeds the budget, surfacing as
  :class:`~repro.common.errors.ExperimentTimeout`;
* **retry with seed rotation** — experiments whose run function takes
  an ``rng`` parameter are retried with a different seed each attempt,
  so a run that landed in a pathological noise realization gets a fresh
  draw (same idea as re-running a flaky hardware measurement);
* **graceful degradation** — an experiment that still fails after its
  retries becomes a structured :class:`ExperimentFailure` in the
  report; the remaining experiments run normally and the process exit
  code reflects the failures;
* **JSON checkpointing** — each completed result is persisted
  immediately, so an interrupted ``run all`` resumes where it stopped
  instead of recomputing finished experiments.
"""

from __future__ import annotations

import inspect
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import ExperimentTimeout
from repro.common.retry import retry_with_backoff
from repro.experiments.base import EXPERIMENT_REGISTRY, ExperimentResult

#: Seed offset between retry attempts, applied to experiments whose run
#: function exposes an ``rng`` parameter.
_SEED_STRIDE = 1000


@dataclass
class ExperimentFailure:
    """One experiment that failed after exhausting its retries."""

    experiment_id: str
    error_type: str
    message: str
    attempts: int
    elapsed_seconds: float

    def render(self) -> str:
        return (
            f"[{self.experiment_id}] FAILED after {self.attempts} "
            f"attempt(s) in {self.elapsed_seconds:.1f}s: "
            f"{self.error_type}: {self.message}"
        )


@dataclass
class RunReport:
    """Outcome of one batch: completed results plus structured failures."""

    results: List[ExperimentResult] = field(default_factory=list)
    failures: List[ExperimentFailure] = field(default_factory=list)
    resumed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        parts = [f"{len(self.results)} completed"]
        if self.resumed:
            parts.append(f"{len(self.resumed)} restored from checkpoint")
        parts.append(f"{len(self.failures)} failed")
        return ", ".join(parts)


class ExperimentRunner:
    """Runs registered experiments with isolation between them.

    Args:
        timeout_seconds: Wall-clock budget per attempt; ``None``
            disables the timeout.
        retries: Extra attempts after the first failure (0 = fail
            fast).  Attempts rotate the experiment's ``rng`` seed when
            its run function accepts one.
        checkpoint_path: JSON file for completed results; when set,
            experiments already recorded there are restored instead of
            re-run, and every new completion is persisted immediately.
        registry: Experiment-id → callable mapping; defaults to the
            global registry (injection point for tests).
        sanitize: Run every experiment with the runtime sanitizer armed
            (see :mod:`repro.analysis.sanitize`): machines the
            experiment builds get invariant-checking proxies, and state
            corruption surfaces as a structured
            :class:`~repro.common.errors.InvariantViolation` failure
            for that experiment instead of a silently wrong table.
    """

    def __init__(
        self,
        timeout_seconds: Optional[float] = None,
        retries: int = 1,
        checkpoint_path: Optional[str] = None,
        registry: Optional[Dict[str, Callable[..., ExperimentResult]]] = None,
        sanitize: bool = False,
    ):
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be > 0, got {timeout_seconds}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.timeout_seconds = timeout_seconds
        self.retries = retries
        self.checkpoint_path = checkpoint_path
        self.registry = EXPERIMENT_REGISTRY if registry is None else registry
        self.sanitize = sanitize

    # -- single experiment ---------------------------------------------

    def run_one(self, experiment_id: str) -> ExperimentResult:
        """Run one experiment through the timeout/retry harness.

        Raises whatever the final attempt raised (or
        :class:`ExperimentTimeout`) once retries are exhausted.
        """
        fn = self.registry[experiment_id]
        rotate_seed = self._accepts_rng(fn)

        def attempt(index: int) -> ExperimentResult:
            kwargs = {}
            if rotate_seed and index > 0:
                kwargs["rng"] = self._rotated_seed(fn, index)
            if self.sanitize:
                from repro.analysis.sanitize import scoped_sanitize

                with scoped_sanitize():
                    return self._call_with_timeout(experiment_id, fn, kwargs)
            return self._call_with_timeout(experiment_id, fn, kwargs)

        return retry_with_backoff(
            attempt, attempts=self.retries + 1, base_delay=0.0
        )

    @staticmethod
    def _accepts_rng(fn: Callable) -> bool:
        try:
            return "rng" in inspect.signature(fn).parameters
        except (TypeError, ValueError):
            return False

    @staticmethod
    def _rotated_seed(fn: Callable, attempt: int) -> int:
        parameter = inspect.signature(fn).parameters["rng"]
        base = parameter.default
        if not isinstance(base, int):
            base = 0
        return base + attempt * _SEED_STRIDE

    def _call_with_timeout(
        self, experiment_id: str, fn: Callable, kwargs: Dict
    ) -> ExperimentResult:
        if self.timeout_seconds is None:
            return fn(**kwargs)
        outcome: Dict = {}

        def worker():
            try:
                outcome["result"] = fn(**kwargs)
            except BaseException as error:  # noqa: BLE001 - reported below
                outcome["error"] = error

        thread = threading.Thread(
            target=worker, name=f"experiment-{experiment_id}", daemon=True
        )
        thread.start()
        thread.join(self.timeout_seconds)
        if thread.is_alive():
            # The worker cannot be killed; as a daemon it dies with the
            # process, and the batch moves on without it.
            raise ExperimentTimeout(
                f"experiment {experiment_id!r} exceeded "
                f"{self.timeout_seconds:.1f}s wall-clock budget"
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["result"]

    # -- batches --------------------------------------------------------

    def run_many(
        self,
        ids: Sequence[str],
        on_result: Optional[Callable[[ExperimentResult, float], None]] = None,
        on_failure: Optional[Callable[[ExperimentFailure], None]] = None,
    ) -> RunReport:
        """Run a batch, isolating failures and checkpointing progress.

        Args:
            ids: Experiment ids, in execution order.
            on_result: Callback fired after each completion (restored
                checkpoint entries fire it with 0.0 elapsed seconds).
            on_failure: Callback fired after each terminal failure.
        """
        report = RunReport()
        completed = self._load_checkpoint()
        for experiment_id in ids:
            if experiment_id in completed:
                result = completed[experiment_id]
                report.results.append(result)
                report.resumed.append(experiment_id)
                if on_result is not None:
                    on_result(result, 0.0)
                continue
            start = time.monotonic()
            try:
                result = self.run_one(experiment_id)
            except Exception as error:  # noqa: BLE001 - degraded, not fatal
                failure = ExperimentFailure(
                    experiment_id=experiment_id,
                    error_type=type(error).__name__,
                    message=str(error),
                    attempts=self.retries + 1,
                    elapsed_seconds=time.monotonic() - start,
                )
                report.failures.append(failure)
                if on_failure is not None:
                    on_failure(failure)
                continue
            report.results.append(result)
            completed[experiment_id] = result
            self._save_checkpoint(completed)
            if on_result is not None:
                on_result(result, time.monotonic() - start)
        return report

    # -- checkpointing --------------------------------------------------

    def _load_checkpoint(self) -> Dict[str, ExperimentResult]:
        if self.checkpoint_path is None:
            return {}
        try:
            with open(self.checkpoint_path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return {}
        except (json.JSONDecodeError, OSError):
            # A torn or unreadable checkpoint only costs recomputation.
            return {}
        return {
            experiment_id: ExperimentResult.from_dict(entry)
            for experiment_id, entry in data.get("results", {}).items()
        }

    def _save_checkpoint(self, completed: Dict[str, ExperimentResult]) -> None:
        if self.checkpoint_path is None:
            return
        payload = {
            "results": {
                experiment_id: result.to_dict()
                for experiment_id, result in completed.items()
            }
        }
        tmp_path = f"{self.checkpoint_path}.tmp"
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        os.replace(tmp_path, self.checkpoint_path)
