"""Extension experiments beyond the paper's figures.

These realize directions the paper sketches but does not evaluate:

* ``ext_llc`` — the cross-core LLC replacement-state channel
  (footnote 1 / the Section X comparison), swept over LLC policies.
* ``ext_side_channel`` — the side-channel case of Section III: key
  recovery from a benign table-lookup victim.
* ``ext_randomized_index`` — the randomization defense family of
  Section IX-B (CEASER-style), measured against Algorithm 2.
* ``ext_multiset`` — Section IV's "several sets can be used in
  parallel" remark, quantified as lanes-vs-rounds throughput.
"""

from __future__ import annotations

from repro.attacks.side_channel import LRUSideChannelAttack, TableLookupVictim
from repro.cache.config import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.multicore import MultiCoreConfig, MultiCoreSystem
from repro.cache.randomized_index import RandomizedIndexCache
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.channels.evaluation import evaluate_hyper_threaded, random_message
from repro.channels.llc import LLCChannel
from repro.channels.multiset import ParallelLRUChannel
from repro.channels.protocol import ProtocolConfig
from repro.common.rng import make_rng
from repro.experiments.base import ExperimentResult, register
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E5_2690


@register("ext_llc")
def run_ext_llc(bits: int = 48, rng: int = 5) -> ExperimentResult:
    """Cross-core LLC channel accuracy per LLC replacement policy."""
    result = ExperimentResult(
        experiment_id="ext_llc",
        title="Cross-core LLC replacement-state channel (Algorithm 2 port)",
        columns=[
            "LLC policy", "accuracy", "sender L1/L2 misses", "LLC misses",
        ],
        paper_expectation=(
            "Footnote 1: LLC-state channels exist but the sender must "
            "miss its private levels to reach them (less stealthy than "
            "the L1 channel).  LRU-family LLCs leak cleanly; SRRIP and "
            "random replacement degrade the channel to chance level - "
            "the policy-swap defense of Section IX-A, demonstrated one "
            "level down."
        ),
    )
    message_rng = make_rng(7)
    message = [message_rng.randrange(2) for _ in range(bits)]
    for policy in ("lru", "tree-plru", "srrip", "random"):
        llc = CacheConfig(
            name="LLC", size=2 * 1024 * 1024, ways=16, line_size=64,
            policy=policy, hit_latency=40.0,
        )
        system = MultiCoreSystem(MultiCoreConfig(llc=llc), rng=rng)
        channel = LLCChannel(system, target_set=3, rng=rng)
        run = channel.transfer(message)
        result.rows.append(
            [
                policy,
                round(run.accuracy(), 3),
                run.sender_private_misses,
                run.sender_llc_misses,
            ]
        )
    return result


@register("ext_side_channel")
def run_ext_side_channel(rng: int = 11) -> ExperimentResult:
    """Key recovery from a benign table-lookup victim via LRU state."""
    result = ExperimentResult(
        experiment_id="ext_side_channel",
        title="LRU side channel: first-round table-lookup key recovery",
        columns=["true key", "recovered", "confidence", "encryptions"],
        paper_expectation=(
            "Section III's side-channel framing: a benign victim whose "
            "lookups depend on a secret leaks it through LRU state; the "
            "attacker recovers 6-bit key chunks by plurality vote."
        ),
    )
    keys = [0, 13, 33, 42, 63]
    for key in keys:
        hierarchy = CacheHierarchy(INTEL_E5_2690.hierarchy, rng=4)
        victim = TableLookupVictim(hierarchy, key=key)
        attack = LRUSideChannelAttack(hierarchy, target_set=5, rng=rng)
        recovery = attack.recover_key(victim, encryptions=256)
        result.rows.append(
            [
                key,
                recovery.recovered_key,
                round(recovery.confidence(), 2),
                recovery.observations,
            ]
        )
    return result


@register("ext_randomized_index")
def run_ext_randomized_index(rng: int = 42) -> ExperimentResult:
    """CEASER-style index randomization vs Algorithm 2."""
    result = ExperimentResult(
        experiment_id="ext_randomized_index",
        title="Randomized set indexing (CEASER-style) vs the LRU channel",
        columns=["L1 variant", "Alg 2 error rate", "channel usable"],
        paper_expectation=(
            "Section IX-B: designs that randomize the address->set "
            "mapping prevent the receiver (and sender) from targeting a "
            "set, which both LRU algorithms require."
        ),
    )
    config = INTEL_E5_2690.hierarchy
    message = random_message(48, rng=7)
    for label, l1_cache in (
        ("baseline Tree-PLRU", None),
        ("randomized index", RandomizedIndexCache(config.l1, rng=9)),
    ):
        machine = Machine(INTEL_E5_2690, rng=rng, l1_cache=l1_cache)
        channel = NoSharedMemoryLRUChannel.build(config.l1, 1, d=5)
        evaluation = evaluate_hyper_threaded(
            machine, channel, ProtocolConfig(ts=6000, tr=600),
            message, repeats=2,
        )
        result.rows.append(
            [
                label,
                round(evaluation.error_rate, 3),
                "yes" if evaluation.error_rate < 0.2 else "no",
            ]
        )
    return result


@register("ext_multiset")
def run_ext_multiset(rng: int = 4) -> ExperimentResult:
    """Throughput scaling with parallel target sets (Section IV)."""
    result = ExperimentResult(
        experiment_id="ext_multiset",
        title="Multi-set parallel LRU channel throughput",
        columns=["lanes", "rounds for 32 bytes", "bit accuracy"],
        paper_expectation=(
            "Section IV: 'several sets can be used in parallel to "
            "increase the transmission rate' — rounds shrink linearly "
            "with lane count at unchanged accuracy (the paper's Spectre "
            "attack uses 63 lanes)."
        ),
    )
    payload = bytes(range(32))
    for lanes in (1, 8, 32, 63):
        hierarchy = CacheHierarchy(INTEL_E5_2690.hierarchy, rng=rng)
        channel = ParallelLRUChannel(hierarchy, lanes=lanes, first_set=1, d=8)
        transfer = channel.send_bytes(payload)
        result.rows.append(
            [
                lanes,
                len(transfer.sent_symbols),
                round(transfer.bit_accuracy(), 4),
            ]
        )
    return result
