"""Shared experiment scaffolding.

Every table/figure module exposes a ``run_*`` function returning an
:class:`ExperimentResult`; the runner and the benchmark suite consume
that uniform shape.  Each result carries the paper's reported values (or
qualitative expectations) next to ours so EXPERIMENTS.md can be
regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """Uniform container for one reproduced table or figure.

    Attributes:
        experiment_id: Paper label, e.g. ``"table1"`` or ``"fig4"``.
        title: Human-readable description.
        columns: Column headers for the data rows.
        rows: The regenerated data, one list per row.
        paper_expectation: What the paper reports, as comparison notes.
        notes: Deviations/substitutions relevant to this experiment.
    """

    experiment_id: str
    title: str
    columns: List[str] = field(default_factory=list)
    rows: List[List] = field(default_factory=list)
    paper_expectation: str = ""
    notes: str = ""

    def render(self) -> str:
        """Format as a fixed-width text table."""
        lines = [f"[{self.experiment_id}] {self.title}"]
        if self.columns:
            widths = [
                max(
                    len(str(self.columns[i])),
                    max((len(_fmt(row[i])) for row in self.rows), default=0),
                )
                for i in range(len(self.columns))
            ]
            header = "  ".join(
                str(c).ljust(w) for c, w in zip(self.columns, widths)
            )
            lines.append(header)
            lines.append("-" * len(header))
            for row in self.rows:
                lines.append(
                    "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths))
                )
        if self.paper_expectation:
            lines.append(f"paper: {self.paper_expectation}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


    def to_csv(self) -> str:
        """Render the data rows as CSV (for plotting pipelines)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def save_csv(self, path: str) -> None:
        """Write :meth:`to_csv` output to a file.

        Opened with ``newline=""`` per the csv module's contract so the
        writer's own ``\\r\\n`` terminators are not doubled to
        ``\\r\\r\\n`` on Windows.
        """
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())

    def to_dict(self) -> Dict:
        """Plain-data form for JSON checkpoints."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "paper_expectation": self.paper_expectation,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentResult":
        """Rebuild a result saved by :meth:`to_dict`."""
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            columns=list(data.get("columns", [])),
            rows=[list(row) for row in data.get("rows", [])],
            paper_expectation=data.get("paper_expectation", ""),
            notes=data.get("notes", ""),
        )


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


#: Registry of experiment id -> zero-arg callable returning a result.
EXPERIMENT_REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator adding a run function to the global registry."""

    def wrap(fn: Callable[..., ExperimentResult]):
        EXPERIMENT_REGISTRY[experiment_id] = fn
        return fn

    return wrap


def run_all(ids: Sequence[str] = ()) -> List[ExperimentResult]:
    """Run every registered experiment (or the given subset)."""
    # Import for side effects: each module registers itself.
    from repro.experiments import ALL_EXPERIMENT_MODULES  # noqa: F401

    chosen = list(ids) if ids else sorted(EXPERIMENT_REGISTRY)
    return [EXPERIMENT_REGISTRY[i]() for i in chosen]
