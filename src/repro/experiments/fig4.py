"""Figure 4 — error rate vs transmission rate (Intel Xeon E5-2690).

Environment noise (interrupts/other tasks) arrives per unit time, so
faster transmission means fewer samples per bit and a higher error rate
— the figure's central trend.  The sweep injects noise events at a fixed
per-cycle rate (``noise_events_per_mcycle``) to model that floor.

The channel-quality sweep of Section V-A: for both algorithms, receiver
periods Tr ∈ {600, 1000, 3000} and initialization depths d ∈ 1..8,
sweep the sender period Ts (which sets the transmission rate) and score
the edit-distance error rate of a random repeated message.

Runtime note: the paper sends a 128-bit string ≥30 times per point; we
default to a smaller payload per point so the full grid finishes in
seconds, and expose the parameters for full-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.channels.algorithm1 import SharedMemoryLRUChannel
from repro.channels.algorithm2 import NoSharedMemoryLRUChannel
from repro.channels.evaluation import evaluate_hyper_threaded, random_message
from repro.channels.protocol import ProtocolConfig
from repro.experiments.base import ExperimentResult, register
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E5_2690


@dataclass
class SweepPoint:
    """One point of Figure 4."""

    algorithm: int
    tr: float
    ts: float
    d: int
    error_rate: float
    rate_kbps: float


def sweep(
    algorithm: int,
    tr_values: Sequence[float] = (600.0, 1000.0, 3000.0),
    ts_values: Sequence[float] = (4500.0, 6000.0, 12000.0, 30000.0),
    d_values: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    message_length: int = 48,
    repeats: int = 2,
    rng: int = 21,
) -> List[SweepPoint]:
    """Run the full (Tr, Ts, d) grid for one algorithm."""
    points: List[SweepPoint] = []
    message = random_message(message_length, rng=rng)
    for tr in tr_values:
        for ts in ts_values:
            if ts < 2 * tr:
                continue  # under-sampled configs carry no information
            for d in d_values:
                machine = Machine(INTEL_E5_2690, rng=rng)
                if algorithm == 1:
                    channel = SharedMemoryLRUChannel.build(
                        machine.spec.hierarchy.l1, 1, d=d
                    )
                else:
                    channel = NoSharedMemoryLRUChannel.build(
                        machine.spec.hierarchy.l1, 1, d=d
                    )
                config = ProtocolConfig(
                    ts=ts, tr=tr, noise_events_per_mcycle=100.0
                )
                evaluation = evaluate_hyper_threaded(
                    machine, channel, config, message, repeats=repeats
                )
                points.append(
                    SweepPoint(
                        algorithm=algorithm,
                        tr=tr,
                        ts=ts,
                        d=d,
                        error_rate=evaluation.error_rate,
                        rate_kbps=evaluation.transmission_rate_kbps,
                    )
                )
    return points


def summarize(points: List[SweepPoint]) -> Dict[Tuple[float, float], float]:
    """Mean error rate per (Tr, Ts), averaged over d."""
    groups: Dict[Tuple[float, float], List[float]] = {}
    for p in points:
        groups.setdefault((p.tr, p.ts), []).append(p.error_rate)
    return {k: sum(v) / len(v) for k, v in groups.items()}


@register("fig4")
def run_fig4(
    message_length: int = 32, repeats: int = 2, rng: int = 21
) -> ExperimentResult:
    """Regenerate Figure 4 (reduced grid for bench runtime)."""
    result = ExperimentResult(
        experiment_id="fig4",
        title="Error rate vs transmission rate (Intel E5-2690)",
        columns=["algorithm", "Tr", "Ts", "rate kbps", "mean err", "best-d err", "worst-d err"],
        paper_expectation=(
            "Error grows as Ts shrinks (rate grows); Alg 1 insensitive "
            "to d; Alg 2 has large errors for even d (Tree-PLRU subtree "
            "parity) and more noise overall."
        ),
    )
    for algorithm in (1, 2):
        points = sweep(
            algorithm,
            tr_values=(600.0, 1000.0),
            ts_values=(4500.0, 6000.0, 12000.0),
            d_values=(1, 2, 3, 4, 5, 6, 7, 8),
            message_length=message_length,
            repeats=repeats,
            rng=rng,
        )
        seen: Dict[Tuple[float, float], List[SweepPoint]] = {}
        for p in points:
            seen.setdefault((p.tr, p.ts), []).append(p)
        for (tr, ts), group in sorted(seen.items()):
            errs = [p.error_rate for p in group]
            result.rows.append(
                [
                    f"Alg {algorithm}",
                    tr,
                    ts,
                    round(group[0].rate_kbps, 1),
                    round(sum(errs) / len(errs), 3),
                    round(min(errs), 3),
                    round(max(errs), 3),
                ]
            )
    return result
