"""Table I — probability of line 0 being evicted under (P)LRU.

The paper's own in-house-simulator experiment, reproduced exactly: for
each policy (LRU, Tree-PLRU, Bit-PLRU), access sequence (Sequence 1 =
Algorithm 1's 0..8 in order; Sequence 2 = Algorithm 2's 0..7 with random
insertions of line x), initial condition (random vs sequential), and
loop-iteration count, measure how often line 0 has been evicted.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cache.cache_set import CacheSet
from repro.common.rng import RngLike, make_rng, spawn_rng
from repro.experiments.base import ExperimentResult, register
from repro.replacement import make_policy

WAYS = 8
#: "Line" identifiers: 0..7 are the base lines, 8 is the extra line
#: (Sequence 1) and X the random-insertion line (Sequence 2).
LINE_X = 100
LINE_8 = 8


class _SetModel:
    """A single 8-way set tracking which logical line occupies which way."""

    def __init__(self, policy_name: str, rng):
        policy = make_policy(
            policy_name, WAYS, **({"rng": rng} if policy_name == "random" else {})
        )
        self.set = CacheSet(WAYS, policy)
        self._tags: Dict[int, int] = {}

    def access(self, line: int) -> None:
        """Access a logical line: hit updates state, miss replaces."""
        way = self.set.lookup(line)
        if way is not None:
            self.set.touch(way, is_fill=False)
            return
        victim = self.set.choose_victim()
        self.set.install(victim, tag=line, address=line)
        self.set.touch(victim, is_fill=True)

    def contains(self, line: int) -> bool:
        return self.set.lookup(line) is not None


def _warmup(model: _SetModel, condition: str, rng) -> None:
    """Establish the paper's 'random' or 'sequential' initial condition."""
    if condition == "random":
        # Random access order over lines 0-7 plus occasional others.
        lines = list(range(8)) + [LINE_X]
        for _ in range(32):
            model.access(rng.choice(lines))
        # Ensure line 0 is resident so eviction is meaningful.
        model.access(0)
    else:
        # Sequential: lines 0-7 in order with 50%-probability insertions
        # of line x (the paper's Sequence-2-style warmup).  Two passes:
        # enough to establish sequential ordering without fully
        # pre-converging every policy to its limit cycle (which would
        # erase the iteration-count dependence Table I measures).
        for _ in range(2):
            for line in range(8):
                model.access(line)
                if rng.random() < 0.5:
                    model.access(LINE_X)


def _run_sequence(model: _SetModel, sequence: int, rng) -> None:
    """One loop iteration of Sequence 1 or Sequence 2."""
    if sequence == 1:
        for line in range(9):  # 0..8 in order
            model.access(line)
    else:
        # 0..7 with 50%-probability insertions of x; the paper assumes
        # "line x will be accessed at least once", so force one
        # insertion if the coin flips all came up tails.
        inserted = False
        for line in range(8):
            model.access(line)
            if line < 7 and rng.random() < 0.5:
                model.access(LINE_X)
                inserted = True
        if not inserted:
            model.access(LINE_X)


def eviction_probability(
    policy: str,
    sequence: int,
    condition: str,
    iterations: int,
    trials: int = 2000,
    rng: RngLike = None,
) -> float:
    """P(line 0 evicted after ``iterations`` loop passes)."""
    master = make_rng(rng)
    evicted = 0
    for _ in range(trials):
        trial_rng = spawn_rng(master, "trial")
        model = _SetModel(policy, spawn_rng(trial_rng, "policy"))
        _warmup(model, condition, trial_rng)
        for _ in range(iterations):
            _run_sequence(model, sequence, trial_rng)
        if not model.contains(0):
            evicted += 1
    return evicted / trials


#: The paper's Table I cells, for side-by-side comparison in the output.
PAPER_TABLE1: Dict[Tuple[str, int, str, int], float] = {
    ("lru", 1, "random", 1): 1.00, ("lru", 2, "random", 1): 1.00,
    ("tree-plru", 1, "random", 1): 0.504, ("tree-plru", 2, "random", 1): 0.627,
    ("bit-plru", 1, "random", 1): 0.385, ("bit-plru", 2, "random", 1): 0.555,
    ("tree-plru", 1, "random", 2): 0.828, ("tree-plru", 2, "random", 2): 0.656,
    ("bit-plru", 1, "random", 2): 0.556, ("bit-plru", 2, "random", 2): 0.697,
    ("tree-plru", 1, "random", 3): 0.992, ("tree-plru", 2, "random", 3): 0.642,
    ("bit-plru", 1, "random", 3): 0.673, ("bit-plru", 2, "random", 3): 0.801,
    ("tree-plru", 1, "random", 8): 1.00, ("tree-plru", 2, "random", 8): 0.62,
    ("bit-plru", 1, "random", 8): 1.00, ("bit-plru", 2, "random", 8): 0.99,
    ("tree-plru", 1, "sequential", 1): 0.909, ("tree-plru", 2, "sequential", 1): 0.756,
    ("bit-plru", 1, "sequential", 1): 0.604, ("bit-plru", 2, "sequential", 1): 0.610,
    ("tree-plru", 1, "sequential", 2): 1.00, ("tree-plru", 2, "sequential", 2): 0.659,
    ("bit-plru", 1, "sequential", 2): 0.630, ("bit-plru", 2, "sequential", 2): 0.641,
    ("tree-plru", 1, "sequential", 3): 1.00, ("tree-plru", 2, "sequential", 3): 0.640,
    ("bit-plru", 1, "sequential", 3): 0.673, ("bit-plru", 2, "sequential", 3): 0.703,
    ("tree-plru", 1, "sequential", 8): 1.00, ("tree-plru", 2, "sequential", 8): 0.62,
    ("bit-plru", 1, "sequential", 8): 1.00, ("bit-plru", 2, "sequential", 8): 0.99,
}


@register("table1")
def run_table1(trials: int = 2000, rng: RngLike = 1) -> ExperimentResult:
    """Regenerate Table I."""
    result = ExperimentResult(
        experiment_id="table1",
        title="Probability of line 0 being evicted with PLRU",
        columns=[
            "init", "iters", "policy", "sequence", "ours", "paper",
        ],
        paper_expectation=(
            "LRU always evicts line 0; sequential init gives higher "
            "eviction probability than random; Tree-PLRU Seq-1 reaches "
            "100% by ~3 iterations; Seq-2 plateaus near 62% (Tree) / "
            "99% (Bit)."
        ),
    )
    for condition in ("random", "sequential"):
        for iterations in (1, 2, 3, 8):
            for policy in ("lru", "tree-plru", "bit-plru"):
                for sequence in (1, 2):
                    ours = eviction_probability(
                        policy, sequence, condition, iterations,
                        trials=trials, rng=rng,
                    )
                    paper = PAPER_TABLE1.get(
                        (policy, sequence, condition, iterations),
                        1.00 if policy == "lru" else None,
                    )
                    result.rows.append(
                        [
                            condition,
                            iterations,
                            policy,
                            f"Seq {sequence}",
                            round(ours, 3),
                            paper if paper is not None else "-",
                        ]
                    )
    return result
