"""Table VII — cache miss rates during a Spectre v1 attack.

Runs the full Spectre attack with each disclosure channel and reports
the aggregate (victim + attacker) miss rates, as the paper measures
with ``perf`` over the whole attack process.  The reproduced contrast:
the F+R(mem) attack hammers the deepest level (its flushes force misses
all the way down), while the L1-level channels keep deeper-level miss
rates negligible.
"""

from __future__ import annotations

from repro.attacks.spectre import SpectreConfig, SpectreV1
from repro.experiments.base import ExperimentResult, register
from repro.sim.machine import Machine
from repro.sim.specs import INTEL_E3_1245V5, INTEL_E5_2690

SECRET = [7, 42, 13, 60, 2, 33]


@register("table7")
def run_table7(rng: int = 9) -> ExperimentResult:
    """Regenerate Table VII on both Intel presets."""
    result = ExperimentResult(
        experiment_id="table7",
        title="Cache miss rate of Spectre V1 attack (victim + attacker)",
        columns=["machine", "disclosure", "L1D miss", "L2 miss", "recovered"],
        paper_expectation=(
            "All variants show a few percent L1D misses; F+R(mem) adds "
            "~8% L2 / ~90%+ LLC misses, the L1 channels stay ~1% deeper "
            "down.  Every variant recovers the secret."
        ),
        notes="Two-level hierarchy: the paper's LLC contrast appears in L2.",
    )
    for spec in (INTEL_E5_2690, INTEL_E3_1245V5):
        for disclosure in (
            "flush_reload", "flush_reload_l1", "lru_alg1", "lru_alg2"
        ):
            machine = Machine(spec, rng=rng)
            attack = SpectreV1(
                machine,
                SECRET,
                disclosure=disclosure,
                config=SpectreConfig(rounds=3),
                rng=rng,
            )
            recovered = attack.recover()
            l1_rate = machine.l1.counters.miss_rate(None)
            l2_rate = machine.l2.counters.miss_rate(None)
            result.rows.append(
                [
                    spec.name,
                    disclosure,
                    f"{l1_rate:.2%}",
                    f"{l2_rate:.2%}",
                    f"{recovered.accuracy(SECRET):.0%}",
                ]
            )
    return result
